//! # lvp — Learning to Validate the Predictions of Black Box Classifiers
//!
//! A from-scratch Rust reproduction of Schelter, Rukat & Biessmann,
//! *"Learning to Validate the Predictions of Black Box Classifiers on Unseen
//! Data"*, SIGMOD 2020.
//!
//! The workspace implements the full system described by the paper:
//!
//! * a typed columnar [`dataframe`] with per-cell nullability,
//! * feature pipelines ([`featurize`]) — standardization, one-hot encoding
//!   and hashed n-grams — fitted on training data only,
//! * several classifier families trained from scratch ([`models`]):
//!   logistic regression, feed-forward networks, gradient-boosted trees,
//!   convolutional networks, plus AutoML-style searchers and a simulated
//!   cloud prediction service,
//! * programmatic error generators ([`corruptions`]) for typical dataset
//!   shifts (missing values, outliers, swapped columns, scaling, adversarial
//!   text, image noise/rotation, …),
//! * and the paper's contribution ([`core`]): a learned **performance
//!   predictor** that estimates a black box model's score on unseen,
//!   unlabeled serving data, a threshold-based **performance validator**, and
//!   the REL / BBSE / BBSEh baselines it is evaluated against.
//!
//! ## Quickstart
//!
//! ```no_run
//! use lvp::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! // 1. Generate data and train a black box model on the source split.
//! let df = lvp::datasets::income(2_000, &mut rng);
//! let (source, serving) = df.split_frac(0.5, &mut rng);
//! let (train, test) = source.split_frac(0.8, &mut rng);
//! let model: std::sync::Arc<dyn BlackBoxModel> =
//!     std::sync::Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
//!
//! // 2. Specify the error types we may see in production.
//! let errors = lvp::corruptions::standard_tabular_suite(test.schema());
//!
//! // 3. Learn a performance predictor (Algorithm 1).
//! let predictor = PerformancePredictor::fit(
//!     model, &test, &errors, &PredictorConfig::default(), &mut rng,
//! ).unwrap();
//!
//! // 4. Estimate the score on unseen serving data (Algorithm 2).
//! let estimate = predictor.predict(&serving).unwrap();
//! println!("estimated accuracy on serving batch: {estimate:.3}");
//! ```

pub use lvp_core as core;
pub use lvp_corruptions as corruptions;
pub use lvp_dataframe as dataframe;
pub use lvp_datasets as datasets;
pub use lvp_featurize as featurize;
pub use lvp_linalg as linalg;
pub use lvp_models as models;
pub use lvp_server as server;
pub use lvp_stats as stats;
pub use lvp_telemetry as telemetry;

/// Convenience re-exports covering the common end-to-end workflow.
pub mod prelude {
    pub use lvp_core::{
        Baseline, BatchMonitor, BatchReport, BbseDetector, BbseHardDetector, Metric, MonitorPolicy,
        PerformancePredictor, PerformanceValidator, PredictorConfig, RelationalShiftDetector,
        ValidatorConfig,
    };
    pub use lvp_corruptions::ErrorGen;
    pub use lvp_dataframe::{ColumnType, DataFrame, Schema};
    pub use lvp_linalg::{CsrMatrix, DenseMatrix};
    pub use lvp_models::{
        BlackBoxModel, ModelError, ModelErrorKind, ResilienceConfig, ResilientModel, VirtualClock,
    };
}
