//! `lvpd` — the multi-tenant monitoring daemon.
//!
//! Serves a registry of deployed [`BatchMonitor`](lvp_core::BatchMonitor)s
//! keyed by `(tenant, model, version)` over line-delimited JSON (see
//! `lvp_server::protocol`):
//!
//! ```text
//! lvpd --addr 127.0.0.1:7878 --state registry.json
//! ```
//!
//! Clients speak one JSON object per line in each direction, e.g.:
//!
//! ```text
//! > {"verb":"observe","tenant":"acme","model":"fraud","version":"v1","estimate":0.83}
//! < {"status":"ok","report":{...},"batches_seen":1,"pending_chunks":0}
//! ```
//!
//! When `--state` is given and the file exists, the registry is restored
//! from it at startup; the `save` verb writes it back (bit-identically,
//! open streaming windows included). The daemon exits cleanly when any
//! client sends `{"verb":"shutdown"}`.

use lvp_server::{Daemon, DaemonConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "lvpd — multi-tenant monitoring daemon

USAGE:
    lvpd [--addr HOST:PORT] [--state FILE] [--queue-capacity N]
         [--history-limit N] [--tick NANOS]

OPTIONS:
    --addr HOST:PORT     listen address (default 127.0.0.1:7878; port 0
                         picks an ephemeral port, printed on startup)
    --state FILE         registry snapshot to restore at startup when it
                         exists (written back by the `save` verb)
    --queue-capacity N   per-tenant in-flight chunk budget (default 64)
    --history-limit N    per-monitor report retention (default 256)
    --tick NANOS         virtual nanoseconds per request, driving breaker
                         cooldowns (default 1000000)
";

fn parse_args(argv: &[String]) -> Result<(String, Option<String>, DaemonConfig), String> {
    let value_of = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
    };
    let mut config = DaemonConfig::default();
    if let Some(v) = value_of("--queue-capacity") {
        config.queue_capacity = v
            .parse()
            .map_err(|_| format!("--queue-capacity: '{v}' is not a count"))?;
    }
    if let Some(v) = value_of("--history-limit") {
        config.history_limit = Some(
            v.parse()
                .map_err(|_| format!("--history-limit: '{v}' is not a count"))?,
        );
    }
    if let Some(v) = value_of("--tick") {
        config.clock_tick_nanos = v
            .parse()
            .map_err(|_| format!("--tick: '{v}' is not a nanosecond count"))?;
    }
    let addr = value_of("--addr").unwrap_or("127.0.0.1:7878").to_string();
    let state = value_of("--state").map(str::to_string);
    Ok((addr, state, config))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (addr, state, config) = match parse_args(&argv) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("lvpd: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let daemon = match &state {
        Some(path) if std::path::Path::new(path).exists() => {
            match Daemon::with_state_file(config, path) {
                Ok(daemon) => {
                    eprintln!("lvpd: restored registry from {path}");
                    daemon
                }
                Err(message) => {
                    eprintln!("lvpd: cannot restore {path}: {message}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => Daemon::new(config),
    };

    let server = match Server::spawn(Arc::new(daemon), addr.as_str()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lvpd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Machine-readable so scripts starting us with port 0 can find us.
    println!("lvpd listening on {}", server.local_addr());
    server.join();
    eprintln!("lvpd: shut down cleanly");
    ExitCode::SUCCESS
}
