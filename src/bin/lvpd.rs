//! `lvpd` — the multi-tenant monitoring daemon.
//!
//! Serves a registry of deployed [`BatchMonitor`](lvp_core::BatchMonitor)s
//! keyed by `(tenant, model, version)` over line-delimited JSON (see
//! `lvp_server::protocol`):
//!
//! ```text
//! lvpd --addr 127.0.0.1:7878 --state registry.json --journal observe.journal
//! ```
//!
//! Clients speak one JSON object per line in each direction, e.g.:
//!
//! ```text
//! > {"verb":"observe","tenant":"acme","model":"fraud","version":"v1","estimate":0.83}
//! < {"status":"ok","report":{...},"batches_seen":1,"pending_chunks":0}
//! ```
//!
//! ## Durability
//!
//! With `--state` and `--journal` the daemon runs crash-safe: startup
//! loads the last snapshot and replays the write-ahead journal tail over
//! it (truncating any torn or corrupted tail to the last durable record),
//! every accepted mutation is journaled *before* it is applied, the
//! `save` verb compacts the journal, and shutdown writes a final
//! snapshot. `--state` alone restores at startup and saves on shutdown
//! but cannot survive a crash between saves; `--journal` alone replays
//! the full journal from an empty registry. The daemon exits cleanly when
//! any client sends `{"verb":"shutdown"}`.

use lvp_server::{Daemon, DaemonConfig, DurabilityConfig, FsyncPolicy, Server};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "lvpd — multi-tenant monitoring daemon

USAGE:
    lvpd [--addr HOST:PORT] [--state FILE] [--journal FILE]
         [--fsync always|never|every:N] [--max-request-bytes N]
         [--queue-capacity N] [--history-limit N] [--tick NANOS]

OPTIONS:
    --addr HOST:PORT        listen address (default 127.0.0.1:7878; port 0
                            picks an ephemeral port, printed on startup)
    --state FILE            registry snapshot: restored at startup when it
                            exists, compacted by the `save` verb, written
                            on shutdown
    --journal FILE          write-ahead journal: every accepted mutation
                            is appended here before it is applied, and
                            replayed over the snapshot at startup
    --fsync POLICY          journal fsync policy: always (default, every
                            record durable before it is acknowledged),
                            every:N (batch N appends per fsync), never
                            (leave flushing to the OS)
    --max-request-bytes N   reject request lines longer than N bytes
                            instead of buffering them (default 16777216)
    --queue-capacity N      per-tenant in-flight chunk budget (default 64)
    --history-limit N       per-monitor report retention (default 256)
    --tick NANOS            virtual nanoseconds per request, driving
                            breaker cooldowns (default 1000000)
";

fn parse_args(argv: &[String]) -> Result<(String, DurabilityConfig, DaemonConfig), String> {
    let value_of = |flag: &str| {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
    };
    let mut config = DaemonConfig::default();
    if let Some(v) = value_of("--queue-capacity") {
        config.queue_capacity = v
            .parse()
            .map_err(|_| format!("--queue-capacity: '{v}' is not a count"))?;
    }
    if let Some(v) = value_of("--history-limit") {
        config.history_limit = Some(
            v.parse()
                .map_err(|_| format!("--history-limit: '{v}' is not a count"))?,
        );
    }
    if let Some(v) = value_of("--tick") {
        config.clock_tick_nanos = v
            .parse()
            .map_err(|_| format!("--tick: '{v}' is not a nanosecond count"))?;
    }
    if let Some(v) = value_of("--max-request-bytes") {
        config.max_request_bytes = v
            .parse()
            .map_err(|_| format!("--max-request-bytes: '{v}' is not a byte count"))?;
    }
    let durability = DurabilityConfig {
        snapshot_path: value_of("--state").map(PathBuf::from),
        journal_path: value_of("--journal").map(PathBuf::from),
        fsync: match value_of("--fsync") {
            Some(v) => FsyncPolicy::parse(v).map_err(|e| format!("--fsync: {e}"))?,
            None => FsyncPolicy::default(),
        },
    };
    let addr = value_of("--addr").unwrap_or("127.0.0.1:7878").to_string();
    Ok((addr, durability, config))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (addr, durability, config) = match parse_args(&argv) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("lvpd: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let durable = durability.snapshot_path.is_some() || durability.journal_path.is_some();
    let daemon = if durable {
        match Daemon::recover(config, durability) {
            Ok((daemon, report)) => {
                eprintln!("lvpd: {}", report.summary());
                daemon
            }
            Err(message) => {
                eprintln!("lvpd: cannot recover durable state: {message}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Daemon::new(config)
    };

    let server = match Server::spawn(Arc::new(daemon), addr.as_str()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lvpd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Machine-readable so scripts starting us with port 0 can find us.
    println!("lvpd listening on {}", server.local_addr());
    server.join();
    eprintln!("lvpd: shut down cleanly");
    ExitCode::SUCCESS
}
