//! `lvp` — command-line interface to the performance prediction workflow.
//!
//! Lets a user run the paper's full loop on their own CSV data without
//! writing Rust:
//!
//! ```text
//! lvp datagen --dataset income --n 2000 --out income.csv
//! lvp estimate --train income.csv --serving serving.csv --label label --model xgb
//! lvp validate --train income.csv --serving serving.csv --label label --threshold 0.05
//! ```
//!
//! `estimate` trains a black box model plus performance predictor on the
//! training file and prints the estimated score for the serving file;
//! `validate` additionally answers whether the score is within the given
//! relative threshold of the held-out test score. The serving file's label
//! column is never required — if present it is only used to also print the
//! true score for comparison.

use lvp::prelude::*;
use lvp_core::{PerformancePredictor, PerformanceValidator};
use lvp_dataframe::{read_csv_file, write_csv_string, CsvOptions};
use lvp_models::{train_model_quick, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

struct Args(Vec<String>);

impl Args {
    fn value_of(&self, flag: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn required(&self, flag: &str) -> Result<&str, String> {
        self.value_of(flag)
            .ok_or_else(|| format!("missing required argument {flag} <value>"))
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args(argv);
    let result = match command.as_str() {
        "datagen" => cmd_datagen(&args),
        "estimate" => cmd_estimate(&args, false),
        "validate" => cmd_estimate(&args, true),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
lvp — learn to validate black box model predictions on unseen data

USAGE:
  lvp datagen  --dataset <income|heart|bank|tweets> --n <rows> --out <file.csv> [--seed <u64>]
  lvp estimate --train <file.csv> --serving <file.csv> --label <column>
               [--model <lr|dnn|xgb>] [--text-columns a,b] [--seed <u64>]
  lvp validate --train <file.csv> --serving <file.csv> --label <column>
               --threshold <0..1> [--model <lr|dnn|xgb>] [--text-columns a,b] [--seed <u64>]";

fn seed_of(args: &Args) -> u64 {
    args.value_of("--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn cmd_datagen(args: &Args) -> Result<(), String> {
    let dataset = args.required("--dataset")?;
    let n: usize = args
        .required("--n")?
        .parse()
        .map_err(|_| "--n must be a positive integer".to_string())?;
    let out = PathBuf::from(args.required("--out")?);
    let mut rng = StdRng::seed_from_u64(seed_of(args));
    let df = match dataset {
        "income" => lvp::datasets::income(n, &mut rng),
        "heart" => lvp::datasets::heart(n, &mut rng),
        "bank" => lvp::datasets::bank(n, &mut rng),
        "tweets" => lvp::datasets::tweets(n, &mut rng),
        other => return Err(format!("dataset '{other}' is not CSV-exportable")),
    };
    let csv = write_csv_string(&df).map_err(|e| e.to_string())?;
    std::fs::write(&out, csv).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "wrote {} rows of '{dataset}' to {}",
        df.n_rows(),
        out.display()
    );
    Ok(())
}

fn model_kind(args: &Args) -> Result<ModelKind, String> {
    match args.value_of("--model").unwrap_or("xgb") {
        "lr" => Ok(ModelKind::Lr),
        "dnn" => Ok(ModelKind::Dnn),
        "xgb" => Ok(ModelKind::Xgb),
        other => Err(format!("unknown model '{other}' (expected lr|dnn|xgb)")),
    }
}

fn csv_options(args: &Args) -> CsvOptions {
    CsvOptions {
        text_columns: args
            .value_of("--text-columns")
            .map(|v| v.split(',').map(str::to_string).collect())
            .unwrap_or_default(),
    }
}

fn cmd_estimate(args: &Args, validate: bool) -> Result<(), String> {
    let train_path = PathBuf::from(args.required("--train")?);
    let serving_path = PathBuf::from(args.required("--serving")?);
    let label = args.required("--label")?;
    let options = csv_options(args);
    let kind = model_kind(args)?;
    let mut rng = StdRng::seed_from_u64(seed_of(args));

    let source = read_csv_file(&train_path, label, &options).map_err(|e| e.to_string())?;
    let serving = read_csv_file(&serving_path, label, &options).map_err(|e| e.to_string())?;
    if serving.schema() != source.schema() {
        return Err("training and serving files must share the same feature columns".into());
    }

    eprintln!(
        "training {} model on {} rows...",
        kind.name(),
        source.n_rows()
    );
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(kind, &train, &mut rng).map_err(|e| e.to_string())?);
    let test_acc = lvp::models::model_accuracy(model.as_ref(), &test);
    eprintln!("held-out test accuracy: {test_acc:.4}");

    let gens = lvp::corruptions::standard_tabular_suite(test.schema());
    if validate {
        let threshold: f64 = args
            .required("--threshold")?
            .parse()
            .map_err(|_| "--threshold must be a number in (0, 1)".to_string())?;
        eprintln!("fitting performance validator (t = {threshold})...");
        let validator = PerformanceValidator::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &ValidatorConfig::fast(threshold),
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        let outcome = validator.validate(&serving).map_err(|e| e.to_string())?;
        println!(
            "verdict: {} (confidence the score is within {:.0}% of {:.4}: {:.3})",
            if outcome.within_threshold {
                "TRUST"
            } else {
                "ALARM"
            },
            threshold * 100.0,
            validator.test_score(),
            outcome.confidence
        );
    } else {
        eprintln!("fitting performance predictor...");
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
        let estimate = predictor.predict(&serving).map_err(|e| e.to_string())?;
        println!("estimated accuracy on serving batch: {estimate:.4}");
    }
    // If the serving file carried labels, print the true score for the
    // user's own comparison (the predictor never used them).
    let truth = lvp::models::model_accuracy(model.as_ref(), &serving);
    eprintln!("(serving file has labels; true accuracy for comparison: {truth:.4})");
    Ok(())
}
