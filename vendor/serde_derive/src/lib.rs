//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls for the value-tree serde
//! stand-in in `vendor/serde`. Parses the derive input token stream by
//! hand (no `syn`/`quote` available offline) — which is tractable because
//! only field and variant *names* are needed; field types are resolved by
//! trait inference in the generated code.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields,
//! - enums with unit variants (serialized as `"Variant"` strings),
//! - enums with struct variants (externally tagged: `{"Variant": {...}}`).
//!
//! Tuple structs, tuple variants, and generic types produce a
//! `compile_error!` naming the limitation.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

/// `(variant_name, Some(fields) | None)`; `None` fields = unit variant.
type Variant = (String, Option<Vec<String>>);

enum Shape {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<String> },
    /// Enum of unit and/or struct variants.
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(shape) => shape,
        Err(msg) => {
            return format!("::core::compile_error!({msg:?});")
                .parse()
                .expect("compile_error tokens")
        }
    };
    let code = match (&shape, mode) {
        (Shape::Struct { name, fields }, Mode::Serialize) => struct_serialize(name, fields),
        (Shape::Struct { name, fields }, Mode::Deserialize) => struct_deserialize(name, fields),
        (Shape::Enum { name, variants }, Mode::Serialize) => enum_serialize(name, variants),
        (Shape::Enum { name, variants }, Mode::Deserialize) => enum_deserialize(name, variants),
    };
    code.parse().expect("generated impl tokens")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(idx) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                idx += 2; // `#` + `[...]`
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                idx += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(idx) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        idx += 1; // `pub(crate)` etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(idx) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected `struct` or `enum`".to_string()),
    };
    idx += 1;
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive: expected a type name".to_string()),
    };
    idx += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde derive: generic type `{name}` is not supported by the vendored serde"
            ));
        }
    }

    let body = match tokens.get(idx) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "serde derive: `{name}` must have a braced body (tuple/unit shapes unsupported)"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Shape::Struct {
            name,
            fields: named_fields(body)?,
        }),
        "enum" => Ok(Shape::Enum {
            name,
            variants: enum_variants(body)?,
        }),
        other => Err(format!("serde derive: unsupported item kind `{other}`")),
    }
}

/// Extracts field names from a named-field body: idents followed by a
/// lone `:` at angle-bracket depth 0. (Path separators `::` tokenize as a
/// *joint* colon, so they never match; commas inside generics are guarded
/// by the depth counter.)
fn named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut angle_depth = 0i32;
    for pair in tokens.windows(2) {
        if let TokenTree::Punct(p) = &pair[0] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                _ => {}
            }
            continue;
        }
        if angle_depth != 0 {
            continue;
        }
        if let (TokenTree::Ident(id), TokenTree::Punct(colon)) = (&pair[0], &pair[1]) {
            if colon.as_char() == ':' && colon.spacing() == Spacing::Alone {
                fields.push(id.to_string());
            }
        }
    }
    if fields.is_empty() && !tokens.is_empty() {
        return Err("serde derive: only named fields are supported".to_string());
    }
    Ok(fields)
}

/// Extracts `(variant_name, Some(fields) | None)` pairs from an enum body.
fn enum_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut idx = 0;
    while idx < tokens.len() {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(idx) {
            if p.as_char() == '#' {
                idx += 2;
            } else {
                break;
            }
        }
        let name = match tokens.get(idx) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde derive: unexpected token `{other}` in enum body"
                ))
            }
            None => break,
        };
        idx += 1;
        let fields = match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                idx += 1;
                Some(named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde derive: tuple variant `{name}` is not supported by the vendored serde"
                ));
            }
            _ => None,
        };
        variants.push((name, fields));
        // Skip to past the next comma (covers discriminants, trailing commas).
        while idx < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[idx] {
                if p.as_char() == ',' {
                    idx += 1;
                    break;
                }
            }
            idx += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn field_to_entry(field: &str, access: &str) -> String {
    format!("(::std::string::String::from({field:?}), ::serde::Serialize::to_value({access})),")
}

fn field_from_obj(field: &str, obj: &str) -> String {
    format!(
        "{field}: match {obj}.get({field:?}) {{ \
            ::std::option::Option::Some(v) => <_ as ::serde::Deserialize>::from_value(v)?, \
            ::std::option::Option::None => ::serde::missing_field({field:?})?, \
        }},"
    )
}

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| field_to_entry(f, &format!("&self.{f}")))
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{ \
            fn to_value(&self) -> ::serde::Value {{ \
                ::serde::Value::Obj(::std::vec![{entries}]) \
            }} \
        }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let field_inits: String = fields.iter().map(|f| field_from_obj(f, "value")).collect();
    format!(
        "impl ::serde::Deserialize for {name} {{ \
            fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                if !::std::matches!(value, ::serde::Value::Obj(_)) {{ \
                    return ::std::result::Result::Err(::serde::Error::msg( \
                        \"expected object for `{name}`\")); \
                }} \
                ::std::result::Result::Ok({name} {{ {field_inits} }}) \
            }} \
        }}"
    )
}

fn enum_serialize(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(variant, fields)| match fields {
            None => format!(
                "{name}::{variant} => \
                 ::serde::Value::Str(::std::string::String::from({variant:?})),"
            ),
            Some(fields) => {
                let bindings = fields.join(", ");
                let entries: String = fields.iter().map(|f| field_to_entry(f, f)).collect();
                format!(
                    "{name}::{variant} {{ {bindings} }} => ::serde::Value::Obj(::std::vec![( \
                        ::std::string::String::from({variant:?}), \
                        ::serde::Value::Obj(::std::vec![{entries}]) \
                    )]),"
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{ \
            fn to_value(&self) -> ::serde::Value {{ \
                match self {{ {arms} }} \
            }} \
        }}"
    )
}

fn enum_deserialize(name: &str, variants: &[(String, Option<Vec<String>>)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, fields)| fields.is_none())
        .map(|(variant, _)| {
            format!("{variant:?} => return ::std::result::Result::Ok({name}::{variant}),")
        })
        .collect();
    let struct_arms: String = variants
        .iter()
        .filter_map(|(variant, fields)| fields.as_ref().map(|f| (variant, f)))
        .map(|(variant, fields)| {
            let field_inits: String = fields.iter().map(|f| field_from_obj(f, "inner")).collect();
            format!(
                "{variant:?} => return ::std::result::Result::Ok( \
                    {name}::{variant} {{ {field_inits} }}),"
            )
        })
        .collect();

    let unit_block = if unit_arms.is_empty() {
        String::new()
    } else {
        format!(
            "if let ::std::option::Option::Some(tag) = value.as_str() {{ \
                match tag {{ {unit_arms} _ => {{}} }} \
            }}"
        )
    };
    let struct_block = if struct_arms.is_empty() {
        String::new()
    } else {
        format!(
            "if let ::std::option::Option::Some((tag, inner)) = value.as_single_entry() {{ \
                match tag {{ {struct_arms} _ => {{}} }} \
            }}"
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
            fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
                {unit_block} \
                {struct_block} \
                ::std::result::Result::Err(::serde::Error::msg( \
                    \"unknown variant for enum `{name}`\")) \
            }} \
        }}"
    )
}
