//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, `arg in strategy`
//! bindings over numeric ranges and `prop::collection::vec`, and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros.
//!
//! Unlike upstream proptest there is no shrinking: each test runs
//! `cases` deterministic random cases (seeded from the test name), and a
//! failure reports the case index and seed so it can be replayed by
//! rerunning the test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed test case (raised by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values for one generated argument.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `Just(value)` — always yields clones of `value`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Yields vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::weighted`).

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Yields `Some(element)` with probability `prob`, `None` otherwise.
    pub fn weighted<S: Strategy>(prob: f64, element: S) -> WeightedStrategy<S> {
        WeightedStrategy { prob, element }
    }

    #[derive(Debug, Clone)]
    pub struct WeightedStrategy<S> {
        prob: f64,
        element: S,
    }

    impl<S: Strategy> Strategy for WeightedStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            rng.gen_bool(self.prob).then(|| self.element.sample(rng))
        }
    }
}

/// Drives one `proptest!`-generated test: `cases` deterministic random
/// cases seeded from the test name.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> Self {
        Self { config }
    }

    /// FNV-1a over the test name — a stable per-test base seed.
    fn base_seed(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` once per seed; panics with the case index and seed on
    /// the first failure.
    pub fn run<F>(&mut self, name: &str, mut case: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = Self::base_seed(name);
        for i in 0..self.config.cases {
            let seed = base.wrapping_add(i as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(err) = case(&mut rng) {
                panic!(
                    "proptest case {i}/{} failed for `{name}` (seed {seed}): {err}",
                    self.config.cases
                );
            }
        }
    }
}

pub mod prelude {
    //! Commonly used items, mirroring `proptest::prelude`.

    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRunner};

    pub mod prop {
        //! The `prop::` namespace (`prop::collection::vec`).
        pub use crate::{collection, option};
    }
}

/// Defines `#[test]` functions over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($config);
            runner.run(stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strategy), __proptest_rng);)+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind first: negating `$cond` directly trips clippy's
        // neg_cmp_op_on_partial_ord lint when the condition is a float
        // comparison at the use site.
        let ok: bool = $cond;
        if !ok {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let ok: bool = $cond;
        if !ok {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(0f64..1.0, 3..10)) {
            prop_assert!(v.len() >= 3 && v.len() < 10);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn multiple_args_sample_independently(a in 0u64..100, b in 0u64..100, c in 0.0f64..1.0) {
            prop_assert!(a < 100);
            prop_assert!(b < 100);
            prop_assert!(c < 1.0, "c was {}", c);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_seed() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run("always_fails", |_| {
            Err(TestCaseError::fail("expected failure"))
        });
    }

    #[test]
    fn runner_is_deterministic() {
        let mut first = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run("det", |rng| {
            first.push(rand::Rng::gen::<u64>(rng));
            Ok(())
        });
        let mut second = Vec::new();
        let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
        runner.run("det", |rng| {
            second.push(rand::Rng::gen::<u64>(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }
}
