//! Offline vendored stand-in for `serde_json`: renders the vendored
//! serde's [`Value`] tree to JSON text and parses JSON text back.
//!
//! Numbers are emitted with Rust's shortest round-trip `f64` formatting,
//! so `f64` values survive `to_string` → `from_str` bit-exactly (the
//! property the persistence tests rely on). Non-finite numbers serialize
//! as `null`, as upstream serde_json does for `f64`.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                let _ = write!(out, "{n}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Obj(entries) => write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
            let (key, item) = &entries[i];
            write_string(out, key);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, item, indent, depth + 1);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::msg(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at offset {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chars = std::str::from_utf8(&self.bytes[self.pos..])
            .map_err(|_| Error::msg("invalid utf-8 in string"))?
            .char_indices();
        while let Some((offset, c)) = chars.next() {
            match c {
                '"' => {
                    self.pos += offset + 1;
                    return Ok(out);
                }
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let (_, h) = chars
                                    .next()
                                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                code = code * 16
                                    + h.to_digit(16)
                                        .ok_or_else(|| Error::msg("invalid \\u escape"))?;
                            }
                            // Surrogate pairs are out of scope for this
                            // stand-in; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error::msg(format!("invalid escape `\\{other}`"))),
                    }
                }
                c => out.push(c),
            }
        }
        Err(Error::msg("unterminated string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_exactly() {
        let values = vec![
            0.1f64,
            -3.25e-7,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            0.0,
            -123456.789,
        ];
        let json = to_string(&values).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, values);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nbreak \"quoted\" back\\slash\ttab".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Num(1.0)),
            (
                "b".to_string(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
