//! Offline vendored stand-in for the `rayon` crate.
//!
//! Provides the data-parallel subset this workspace uses — `par_chunks`,
//! `par_chunks_mut`, `par_iter_mut`, `into_par_iter` (vectors and ranges),
//! `zip`, `enumerate`, `map`, `for_each`, ordered `collect`, plus
//! [`ThreadPoolBuilder`] / [`ThreadPool::install`] — implemented with
//! `std::thread::scope` instead of a work-stealing pool.
//!
//! Execution model: each adaptor is eager. Work items are split into one
//! contiguous block per worker thread; block results are concatenated in
//! input order, so `collect` always preserves ordering regardless of the
//! thread count. Nested parallel calls run sequentially on the worker
//! thread that encounters them (no oversubscription), mirroring how a
//! work-stealing pool degrades.
//!
//! Thread count resolution order: [`ThreadPool::install`] override, then
//! the `RAYON_NUM_THREADS` environment variable, then
//! `std::thread::available_parallelism`.

use std::cell::Cell;
use std::sync::OnceLock;

mod iter;
pub use iter::*;

pub mod prelude {
    //! The traits that put `par_*` methods on slices, vectors and ranges.
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

thread_local! {
    /// Set while inside a worker thread: nested parallelism runs inline.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Number of threads parallel operations will use in this context.
pub fn current_num_threads() -> usize {
    POOL_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(env_default_threads)
}

/// Runs `items` through `f`, in parallel when profitable, preserving
/// input order in the result. The backbone of every adaptor in this crate.
pub(crate) fn run_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_num_threads();
    let inline = IN_WORKER.with(|w| w.get());
    if threads <= 1 || items.len() <= 1 || inline {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = threads.min(n);
    let chunk_len = n.div_ceil(workers);

    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let mut items = items;
    // Split from the back so each block keeps its original order.
    while items.len() > chunk_len {
        let tail = items.split_off(items.len() - chunk_len);
        blocks.push(tail);
    }
    blocks.push(items);
    blocks.reverse();

    let f = &f;
    let mut results: Vec<Vec<R>> = Vec::with_capacity(blocks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    block.into_iter().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            results.push(handle.join().expect("rayon worker thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Runs `f` over `items` purely for effects, in parallel when profitable.
pub(crate) fn run_for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    run_map(items, f);
}

/// Executes `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let inline = IN_WORKER.with(|w| w.get());
    if current_num_threads() <= 1 || inline {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            IN_WORKER.with(|w| w.set(true));
            b()
        });
        let ra = a();
        (ra, hb.join().expect("rayon worker thread panicked"))
    })
}

/// Error from [`ThreadPoolBuilder::build`]; this stand-in never fails.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool's thread count (0 = use the environment default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(env_default_threads),
        })
    }
}

/// A scoped thread-count context. Parallel operations invoked inside
/// [`ThreadPool::install`] use this pool's thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count as the ambient default.
    pub fn install<R, F: FnOnce() -> R>(&self, op: F) -> R {
        let previous = POOL_OVERRIDE.with(|o| o.replace(Some(self.num_threads)));
        let result = op();
        POOL_OVERRIDE.with(|o| o.set(previous));
        result
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_par_iter_matches_sequential() {
        let out: Vec<usize> = (0..97usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..98).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_zip_writes_all_chunks() {
        let mut dst = vec![0.0f64; 64];
        let src: Vec<f64> = (0..64).map(|i| i as f64).collect();
        dst.par_chunks_mut(8)
            .zip(src.par_chunks(8))
            .for_each(|(d, s)| {
                for (a, b) in d.iter_mut().zip(s) {
                    *a = *b * 3.0;
                }
            });
        for (i, v) in dst.iter().enumerate() {
            assert_eq!(*v, i as f64 * 3.0);
        }
    }

    #[test]
    fn par_chunks_mut_enumerate_sees_ordered_indices() {
        let mut data = vec![0usize; 40];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i;
            }
        });
        for (pos, v) in data.iter().enumerate() {
            assert_eq!(*v, pos / 7);
        }
    }

    #[test]
    fn par_iter_mut_touches_every_element() {
        let mut v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        v.par_iter_mut().for_each(|x| *x += 1.0);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as f64 + 1.0);
        }
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let single = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> =
            single.install(|| (0..50usize).into_par_iter().map(|x| x * x).collect());
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
