//! Parallel iterator adaptors.
//!
//! Everything is eager: a "parallel iterator" here is a materialized list
//! of work items; `map`/`for_each`/`collect` hand that list to
//! [`crate::run_map`], which splits it into one contiguous block per
//! worker thread and concatenates results in input order.

use crate::{run_for_each, run_map};
use std::ops::Range;

/// An eager parallel iterator over `Item`s.
pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Materializes the remaining work items in order.
    fn into_items(self) -> Vec<Self::Item>;

    /// Applies `f` to every item in parallel (lazily — runs at
    /// `collect`/`for_each` time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_for_each(self.into_items(), f);
    }

    /// Collects all items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.into_items().into_iter().collect()
    }

    /// Sums all items in parallel (pairwise within blocks).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        self.into_items().into_iter().sum()
    }

    /// Number of items remaining.
    fn count(self) -> usize {
        self.into_items().len()
    }
}

/// Parallel iterators with a known, stable order (all of ours).
pub trait IndexedParallelIterator: ParallelIterator {
    /// Pairs items positionally with `other`'s items.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self::Item, B::Item> {
        Zip {
            items: self
                .into_items()
                .into_iter()
                .zip(other.into_items())
                .collect(),
        }
    }

    /// Attaches each item's input position.
    fn enumerate(self) -> Enumerate<Self::Item> {
        Enumerate {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }
}

/// Lazy map adaptor; the parallel apply happens on consumption.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn into_items(self) -> Vec<R> {
        run_map(self.base.into_items(), self.f)
    }

    fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync + Send,
    {
        let f = self.f;
        run_for_each(self.base.into_items(), move |item| g(f(item)));
    }
}

impl<B, R, F> IndexedParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
}

/// Positional pairing of two parallel iterators.
pub struct Zip<A: Send, B: Send> {
    items: Vec<(A, B)>,
}

impl<A: Send, B: Send> ParallelIterator for Zip<A, B> {
    type Item = (A, B);

    fn into_items(self) -> Vec<(A, B)> {
        self.items
    }
}

impl<A: Send, B: Send> IndexedParallelIterator for Zip<A, B> {}

/// Items tagged with their input position.
pub struct Enumerate<I: Send> {
    items: Vec<(usize, I)>,
}

impl<I: Send> ParallelIterator for Enumerate<I> {
    type Item = (usize, I);

    fn into_items(self) -> Vec<(usize, I)> {
        self.items
    }
}

impl<I: Send> IndexedParallelIterator for Enumerate<I> {}

/// Owning parallel iterator over a vector or range.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;

    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IndexedParallelIterator for ParIter<T> {}

/// Parallel iterator over immutable chunks of a slice.
pub struct ParChunks<'a, T: Sync> {
    chunks: Vec<&'a [T]>,
}

impl<'a, T: Sync> ParallelIterator for ParChunks<'a, T> {
    type Item = &'a [T];

    fn into_items(self) -> Vec<&'a [T]> {
        self.chunks
    }
}

impl<'a, T: Sync> IndexedParallelIterator for ParChunks<'a, T> {}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn into_items(self) -> Vec<&'a mut [T]> {
        self.chunks
    }
}

impl<'a, T: Send> IndexedParallelIterator for ParChunksMut<'a, T> {}

/// Parallel iterator over mutable references to a collection's elements.
pub struct ParIterMut<'a, T: Send> {
    items: Vec<&'a mut T>,
}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn into_items(self) -> Vec<&'a mut T> {
        self.items
    }
}

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {}

/// Conversion into a parallel iterator (by value).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<$t>;

            fn into_par_iter(self) -> ParIter<$t> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

range_into_par_iter!(usize, u32, u64, i32, i64);

/// Adds `par_iter_mut` to collections (`Vec`, slices).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;

    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut {
            items: self.iter_mut().collect(),
        }
    }
}

/// Adds `par_chunks` to slices.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParChunks<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunks {
            chunks: self.chunks(chunk_size).collect(),
        }
    }
}

/// Adds `par_chunks_mut` to slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}
