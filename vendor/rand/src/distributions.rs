//! Distributions: the [`Distribution`] trait, the [`Standard`]
//! distribution, and uniform range sampling used by `Rng::gen_range`.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Samples one value using `rng` as the entropy source.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: unit interval for floats, full
/// range for integers, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Converts 53 random bits into a `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts 24 random bits into a `f32` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng.next_u32())
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod uniform {
    //! Uniform sampling over `Range` / `RangeInclusive`, powering
    //! `Rng::gen_range`.

    use super::unit_f64;
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// Samples from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Range argument accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "gen_range called with empty range");
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "gen_range called with empty inclusive range");
            T::sample_uniform(rng, lo, hi, true)
        }
    }

    /// Multiplies a random `u64` into `[0, span)` without modulo bias
    /// (fixed-point multiply, Lemire's technique minus the rejection step;
    /// residual bias is ≤ span / 2^64).
    #[inline]
    fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! uniform_uint {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let lo64 = lo as u64;
                    let hi64 = hi as u64;
                    let span = hi64 - lo64;
                    if inclusive && span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = if inclusive { span + 1 } else { span };
                    (lo64 + bounded_u64(rng, span)) as $t
                }
            }
        )*};
    }

    uniform_uint!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    lo: Self,
                    hi: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                    if inclusive && span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = if inclusive { span + 1 } else { span };
                    ((lo as i64).wrapping_add(bounded_u64(rng, span) as i64)) as $t
                }
            }
        )*};
    }

    uniform_int!(i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            _inclusive: bool,
        ) -> Self {
            let u = unit_f64(rng.next_u64());
            let v = lo + (hi - lo) * u;
            // Guard against rounding up to an excluded upper bound.
            if v < hi {
                v
            } else {
                lo.max(hi - (hi - lo) * f64::EPSILON)
            }
        }
    }

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            lo: Self,
            hi: Self,
            inclusive: bool,
        ) -> Self {
            f64::sample_uniform(rng, lo as f64, hi as f64, inclusive) as f32
        }
    }
}
