//! Slice helpers: [`SliceRandom`] with Fisher–Yates [`SliceRandom::shuffle`].

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, one `gen_range` per
    /// element from the back).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&self[i])
        }
    }
}
