//! Concrete generators: [`StdRng`] (xoshiro256**) and the splitmix64
//! seed expander.

use crate::{RngCore, SeedableRng};

/// splitmix64 — used to expand `u64` seeds into full generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(state: u64) -> Self {
        Self { state }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The workspace's standard deterministic generator: xoshiro256**.
///
/// Small state, fast, passes BigCrush; deterministic for a fixed seed,
/// which is the property every caller in this workspace relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9e37_79b9_7f4a_7c15,
                0x6a09_e667_f3bc_c909,
                0xbb67_ae85_84ca_a73b,
                0x3c6e_f372_fe94_f82b,
            ];
        }
        Self { s }
    }
}
