//! Offline vendored stand-in for the `rand` crate.
//!
//! This workspace builds in environments without network access to a
//! crates.io mirror, so the external `rand` dependency is replaced by this
//! minimal, API-compatible subset (see `vendor/README.md`). It implements
//! exactly the surface the workspace uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::StdRng`] (xoshiro256** seeded via splitmix64),
//! - `gen`, `gen_range` (half-open and inclusive ranges over the common
//!   integer and float types), `gen_bool`, `sample`,
//! - [`seq::SliceRandom::shuffle`] (Fisher–Yates),
//! - [`distributions::Distribution`] and [`distributions::Standard`].
//!
//! The generator is deterministic for a given seed, which is all the
//! workspace requires; it makes no attempt to be bit-compatible with the
//! upstream crate's stream for the same seed.

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Samples a value from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed by expanding it with
    /// splitmix64 — the common entry point throughout this workspace.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod prelude {
    //! Convenience re-export of the commonly used traits and types.
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&i));
            let n = rng.gen_range(-5..-1i64);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_mut_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        fn draw(r: &mut impl crate::Rng) -> f64 {
            r.gen_range(0.0..1.0)
        }
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
