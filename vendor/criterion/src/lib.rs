//! Offline vendored stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the subset of
//! the criterion API this workspace's benches use: [`Criterion`],
//! [`Bencher::iter`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Each benchmark runs a calibration pass to pick an iteration count per
//! sample (~50 ms of work, capped), then takes `sample_size` samples and
//! reports min / median / max per-iteration time to stdout in a
//! criterion-like format.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state; collects and reports benchmark timings.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full, samples, &mut f);
        self
    }

    /// Benchmarks `f` against a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(&full, samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (reporting happens eagerly; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times back to back.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // Calibration: find an iteration count giving roughly 50 ms per
    // sample, capped so slow benchmarks still finish promptly.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {iters} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        samples.len(),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("demo");
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &v| {
            b.iter(|| v + 1)
        });
        group.finish();
    }

    #[test]
    fn format_time_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
