//! Offline vendored stand-in for the `rand_distr` crate.
//!
//! Implements the subset this workspace uses: [`Normal`], [`LogNormal`],
//! and [`StandardNormal`] (for `f32` and `f64`), plus a re-export of the
//! [`Distribution`] trait. Sampling uses the Box–Muller transform, which
//! consumes exactly two `u64` draws per sample — deterministic for a
//! fixed generator state.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error type returned by [`Normal::new`] / [`LogNormal::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// Mean or standard deviation was NaN / infinite.
    BadParameters,
    /// Standard deviation was negative.
    StdDevTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadParameters => write!(f, "normal distribution parameters not finite"),
            NormalError::StdDevTooSmall => write!(f, "standard deviation must be non-negative"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Samples one standard-normal deviate via Box–Muller (two uniform draws).
#[inline]
fn standard_normal_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Map to (0, 1]: never take ln(0).
    let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        standard_normal_f64(rng)
    }
}

impl Distribution<f32> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        standard_normal_f64(rng) as f32
    }
}

/// The normal distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates N(mean, std_dev²); errors on non-finite parameters or a
    /// negative standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(NormalError::BadParameters);
        }
        if std_dev < 0.0 {
            return Err(NormalError::StdDevTooSmall);
        }
        Ok(Self { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal_f64(rng)
    }
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
///
/// Generic over the output float like upstream (`LogNormal<f64>` in type
/// annotations), but only `f64` is implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<F = f64> {
    norm: Normal,
    _float: std::marker::PhantomData<F>,
}

impl LogNormal<f64> {
    /// Creates a log-normal whose logarithm is N(mu, sigma²).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
            _float: std::marker::PhantomData,
        })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Normal::new(3.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(12);
        let dist = LogNormal::new(1.0, 0.5).unwrap();
        for _ in 0..1000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn standard_normal_samples_f32_and_f64() {
        let mut rng = StdRng::seed_from_u64(13);
        let a: f32 = rng.sample(StandardNormal);
        let b: f64 = rng.sample(StandardNormal);
        assert!(a.is_finite() && b.is_finite());
    }
}
