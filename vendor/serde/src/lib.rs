//! Offline vendored stand-in for `serde`.
//!
//! Instead of upstream serde's visitor architecture, this stand-in uses a
//! simple self-describing value tree ([`Value`]): [`Serialize`] renders a
//! type into a [`Value`], [`Deserialize`] rebuilds a type from one, and
//! `serde_json` maps [`Value`] to and from JSON text. The derive macros in
//! `serde_derive` generate the same external data format upstream serde
//! would for the shapes this workspace uses: structs with named fields,
//! unit enum variants (as strings), and struct enum variants (externally
//! tagged, `{"Variant": {...}}`).

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree; the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and data-format crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Insertion-ordered map — preserves struct field declaration order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// For externally tagged enum variants: a single-entry object.
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Obj(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn msg(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Deserializes a struct field that is absent from the input object.
/// `Option` fields default to `None` (as upstream serde does); any other
/// type reports a missing-field error.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, Error> {
    T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
}

fn expected(what: &'static str, got: &Value) -> Error {
    Error::msg(format!("expected {what}, found {}", got.type_name()))
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

serialize_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for a stable output order, like serde_json's map guarantees
        // when round-tripping through BTreeMap.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(expected("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|n| n as f32)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Num(n) if n.fract() == 0.0 => {
                        let min = <$t>::MIN as f64;
                        let max = <$t>::MAX as f64;
                        if *n >= min && *n <= max {
                            Ok(*n as $t)
                        } else {
                            Err(Error::msg(format!(
                                "integer {n} out of range for {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(expected("integer", other)),
                }
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(expected("array", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(expected("object", other)),
        }
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(expected("object", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_handles_null_and_missing() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Num(2.5)).unwrap(),
            Some(2.5)
        );
        assert_eq!(missing_field::<Option<f64>>("x").unwrap(), None);
        assert!(missing_field::<u32>("x").is_err());
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
        assert!(u32::from_value(&Value::Num(-1.0)).is_err());
        assert_eq!(u32::from_value(&Value::Num(7.0)).unwrap(), 7);
        assert!(u32::from_value(&Value::Num(7.5)).is_err());
    }

    #[test]
    fn vec_round_trips() {
        let v = vec![1.5f64, -2.0, 0.0];
        let val = v.to_value();
        assert_eq!(Vec::<f64>::from_value(&val).unwrap(), v);
    }

    #[test]
    fn btreemap_round_trips() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.0f64);
        m.insert("b".to_string(), 2.0);
        let val = m.to_value();
        assert_eq!(BTreeMap::<String, f64>::from_value(&val).unwrap(), m);
    }
}
