//! End-to-end integration tests for the performance prediction workflow
//! (Algorithm 1 + 2) across model families and datasets.

use lvp_core::{Metric, PerformancePredictor, PredictorConfig};
use lvp_corruptions::{standard_tabular_suite, ErrorGen, Mixture};
use lvp_models::{model_accuracy, train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn quick_predictor_config() -> PredictorConfig {
    PredictorConfig {
        runs_per_generator: 20,
        clean_copies: 5,
        forest_grid: vec![lvp_models::forest::ForestConfig {
            n_trees: 25,
            ..lvp_models::forest::ForestConfig::default()
        }],
        ..PredictorConfig::default()
    }
}

/// Trains a model + predictor and measures the predictor's MAE over
/// mixture-corrupted serving batches.
fn predictor_mae(kind: ModelKind, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let df = lvp::datasets::income(1_200, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(kind, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &quick_predictor_config(),
        &mut rng,
    )
    .unwrap();

    let mixture = Mixture::from_boxes(standard_tabular_suite(serving.schema()));
    let mut errors = Vec::new();
    for _ in 0..8 {
        let batch = mixture.corrupt(&serving.sample_n(250, &mut rng), &mut rng);
        let est = predictor.predict(&batch).unwrap();
        let truth = model_accuracy(model.as_ref(), &batch);
        errors.push((est - truth).abs());
    }
    errors.iter().sum::<f64>() / errors.len() as f64
}

#[test]
fn lr_predictor_tracks_true_accuracy() {
    let mae = predictor_mae(ModelKind::Lr, 1);
    assert!(mae < 0.12, "lr predictor MAE {mae}");
}

#[test]
fn xgb_predictor_tracks_true_accuracy() {
    let mae = predictor_mae(ModelKind::Xgb, 2);
    assert!(mae < 0.12, "xgb predictor MAE {mae}");
}

#[test]
fn dnn_predictor_tracks_true_accuracy() {
    let mae = predictor_mae(ModelKind::Dnn, 3);
    assert!(mae < 0.12, "dnn predictor MAE {mae}");
}

#[test]
fn predictor_supports_auc_metric() {
    let mut rng = StdRng::seed_from_u64(4);
    let df = lvp::datasets::heart(800, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let config = PredictorConfig {
        metric: Metric::Auc,
        ..quick_predictor_config()
    };
    let predictor =
        PerformancePredictor::fit(Arc::clone(&model), &test, &gens, &config, &mut rng).unwrap();
    let est = predictor.predict(&serving).unwrap();
    let truth = Metric::Auc
        .score_model(model.as_ref(), &serving)
        .expect("lr on heart is binary");
    assert!(
        (est - truth).abs() < 0.15,
        "AUC estimate {est} vs true {truth}"
    );
}

#[test]
fn predictor_works_on_text_data() {
    let mut rng = StdRng::seed_from_u64(5);
    let df = lvp::datasets::tweets(900, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
    let gens = lvp::corruptions::text_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &quick_predictor_config(),
        &mut rng,
    )
    .unwrap();
    // An adversarial wave must lower the estimate relative to clean data.
    let attack = lvp_corruptions::AdversarialLeetspeak::all_text(serving.schema());
    let mut attacked = serving.clone();
    for _ in 0..3 {
        attacked = attack.corrupt(&attacked, &mut rng);
    }
    let clean_est = predictor.predict(&serving).unwrap();
    let attacked_est = predictor.predict(&attacked).unwrap();
    let attacked_truth = model_accuracy(model.as_ref(), &attacked);
    assert!(
        attacked_est <= clean_est + 0.02,
        "attack estimate {attacked_est} vs clean {clean_est}"
    );
    assert!(
        (attacked_est - attacked_truth).abs() < 0.2,
        "estimate {attacked_est} vs truth {attacked_truth}"
    );
}

#[test]
fn predictor_works_with_entropy_based_missing_values() {
    let mut rng = StdRng::seed_from_u64(6);
    let df = lvp::datasets::income(800, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Xgb, &train, &mut rng).unwrap());
    let gens: Vec<Box<dyn ErrorGen>> = vec![Box::new(
        lvp_corruptions::EntropyMissingValues::all_tabular(test.schema()),
    )];
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &quick_predictor_config(),
        &mut rng,
    )
    .unwrap();
    let est = predictor.predict(&serving).unwrap();
    assert!((0.0..=1.0).contains(&est));
}
