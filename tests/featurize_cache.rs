//! The identity-keyed encoding cache: cached featurization must be
//! bit-identical to the cold path on arbitrarily corrupted copy-on-write
//! copies, and must re-encode exactly the columns a copy touched.

use lvp_core::{prediction_statistics, BatchSketch};
use lvp_corruptions::{extended_tabular_suite, standard_tabular_suite};
use lvp_dataframe::{CellValue, ColumnType, DataFrameBuilder, Field, Schema};
use lvp_featurize::{EncodingCache, FeaturePipeline, PipelineConfig};
use lvp_models::train_logistic_regression;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a small mixed numeric/categorical frame from generated cells.
fn build_frame(nums: &[f64], cats: &[u8]) -> lvp_dataframe::DataFrame {
    let n = nums.len().min(cats.len());
    let schema = Schema::new(vec![
        Field::new("x", ColumnType::Numeric),
        Field::new("c", ColumnType::Categorical),
    ])
    .unwrap();
    let mut b = DataFrameBuilder::new(schema, vec!["n".into(), "y".into()]);
    for i in 0..n {
        b.push_row(
            vec![
                CellValue::Num(nums[i]),
                CellValue::Cat(format!("c{}", cats[i] % 5)),
            ],
            (i % 2) as u32,
        )
        .unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every error generator, featurizing the corrupted CoW copy
    /// through a warm cache is bit-identical to the cold row-major
    /// transform of the same copy.
    #[test]
    fn cached_transform_of_corrupted_copies_matches_cold_transform(
        nums in prop::collection::vec(-1000f64..1000.0, 4..60),
        cats in prop::collection::vec(0u8..255, 4..60),
        seed in 0u64..1000,
    ) {
        let df = build_frame(&nums, &cats);
        let pipeline = FeaturePipeline::fit(&df, &PipelineConfig::default());
        let mut cache = EncodingCache::new();
        // Warm the cache on the clean frame; corrupted copies share every
        // untouched column with it.
        prop_assert_eq!(
            pipeline.transform_cached(&df, &mut cache),
            pipeline.transform(&df)
        );
        let mut gens = standard_tabular_suite(df.schema());
        gens.extend(extended_tabular_suite(df.schema()));
        for gen in gens {
            let corrupted = gen.corrupt(&df.clone(), &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(
                pipeline.transform_cached(&corrupted, &mut cache),
                pipeline.transform(&corrupted),
                "{}", gen.name()
            );
        }
    }

    /// On every corrupted CoW copy, featurizing the model's outputs
    /// through the streaming sketch stays within the sketches' proven
    /// value-error bound of the exact sort-based featurization — so a
    /// monitor running off sketches sees the same drift signal the
    /// materialized path would, for any corruption the generators produce.
    #[test]
    fn sketched_features_track_exact_features_on_corrupted_copies(
        nums in prop::collection::vec(-1000f64..1000.0, 8..60),
        cats in prop::collection::vec(0u8..255, 8..60),
        seed in 0u64..1000,
    ) {
        let df = build_frame(&nums, &cats);
        let mut rng = StdRng::seed_from_u64(seed);
        let model = train_logistic_regression(&df, &mut rng).unwrap();
        let mut gens = standard_tabular_suite(df.schema());
        gens.extend(extended_tabular_suite(df.schema()));
        for gen in gens {
            let corrupted = gen.corrupt(&df.clone(), &mut StdRng::seed_from_u64(seed));
            let proba = model.predict_proba(&corrupted);
            let exact = prediction_statistics(&proba);
            let sketch = BatchSketch::from_outputs(&proba);
            let sketched = sketch.prediction_statistics();
            prop_assert_eq!(exact.len(), sketched.len(), "{}", gen.name());
            let bound = sketch.value_error_bound() + 1e-12;
            for (i, (e, s)) in exact.iter().zip(&sketched).enumerate() {
                prop_assert!(
                    (e - s).abs() <= bound,
                    "{} dim {}: exact {} sketched {} bound {}",
                    gen.name(), i, e, s, bound
                );
            }
        }
    }
}

/// Per corrupted copy, the cache re-encodes exactly the touched columns:
/// hits == #columns − #touched_columns.
#[test]
fn cache_hits_equal_columns_minus_touched_per_copy() {
    let mut rng = StdRng::seed_from_u64(17);
    let df = lvp::datasets::income(120, &mut rng);
    let n_cols = df.n_cols() as u64;
    let pipeline = FeaturePipeline::fit(&df, &PipelineConfig::default());
    let mut cache = EncodingCache::new();

    // Cold pass: every column misses.
    pipeline.transform_cached(&df, &mut cache);
    assert_eq!(cache.misses(), n_cols);
    assert_eq!(cache.hits(), 0);

    // Corrupt an increasing prefix of columns per copy: each copy must hit
    // exactly on the untouched remainder.
    for touched in 0..=df.n_cols() {
        let mut copy = df.clone();
        for col in 0..touched {
            copy.column_mut(col).set_null(0);
        }
        cache.reset_stats();
        pipeline.transform_cached(&copy, &mut cache);
        assert_eq!(
            cache.hits(),
            n_cols - touched as u64,
            "copy touching {touched} columns"
        );
        assert_eq!(cache.misses(), touched as u64);
    }
}
