//! Determinism: every pipeline stage must be reproducible under a fixed
//! seed — a requirement for debuggable experiments.

use lvp_core::{PerformancePredictor, PredictorConfig};
use lvp_corruptions::{standard_tabular_suite, ErrorGen};
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn datasets_are_deterministic() {
    for kind in lvp::datasets::DatasetKind::ALL {
        let a = lvp::datasets::generate(kind, 80, &mut StdRng::seed_from_u64(5));
        let b = lvp::datasets::generate(kind, 80, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b, "{}", kind.name());
    }
}

#[test]
fn corruption_is_deterministic() {
    let df = lvp::datasets::income(100, &mut StdRng::seed_from_u64(1));
    for gen in standard_tabular_suite(df.schema()) {
        let a = gen.corrupt(&df, &mut StdRng::seed_from_u64(9));
        let b = gen.corrupt(&df, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b, "{}", gen.name());
    }
}

#[test]
fn model_training_is_deterministic() {
    let df = lvp::datasets::heart(300, &mut StdRng::seed_from_u64(2));
    let m1 = train_model_quick(ModelKind::Lr, &df, &mut StdRng::seed_from_u64(3)).unwrap();
    let m2 = train_model_quick(ModelKind::Lr, &df, &mut StdRng::seed_from_u64(3)).unwrap();
    let p1 = m1.predict_proba(&df);
    let p2 = m2.predict_proba(&df);
    assert_eq!(p1, p2);
}

#[test]
fn predictor_estimates_are_deterministic() {
    let df = lvp::datasets::income(400, &mut StdRng::seed_from_u64(4));
    let (source, serving) = df.split_frac(0.5, &mut StdRng::seed_from_u64(5));
    let (train, test) = source.split_frac(0.7, &mut StdRng::seed_from_u64(6));

    let estimate = |seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit(
            model,
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut rng,
        )
        .unwrap();
        predictor.predict(&serving).unwrap()
    };

    assert_eq!(estimate(11), estimate(11));
}
