//! Determinism: every pipeline stage must be reproducible under a fixed
//! seed — a requirement for debuggable experiments.

use lvp_core::{
    generate_training_examples_seeded, Metric, PerformancePredictor, PredictorConfig,
    TrainingExample,
};
use lvp_corruptions::standard_tabular_suite;
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn datasets_are_deterministic() {
    for kind in lvp::datasets::DatasetKind::ALL {
        let a = lvp::datasets::generate(kind, 80, &mut StdRng::seed_from_u64(5));
        let b = lvp::datasets::generate(kind, 80, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b, "{}", kind.name());
    }
}

#[test]
fn corruption_is_deterministic() {
    let df = lvp::datasets::income(100, &mut StdRng::seed_from_u64(1));
    for gen in standard_tabular_suite(df.schema()) {
        let a = gen.corrupt(&df, &mut StdRng::seed_from_u64(9));
        let b = gen.corrupt(&df, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b, "{}", gen.name());
    }
}

#[test]
fn model_training_is_deterministic() {
    let df = lvp::datasets::heart(300, &mut StdRng::seed_from_u64(2));
    let m1 = train_model_quick(ModelKind::Lr, &df, &mut StdRng::seed_from_u64(3)).unwrap();
    let m2 = train_model_quick(ModelKind::Lr, &df, &mut StdRng::seed_from_u64(3)).unwrap();
    let p1 = m1.predict_proba(&df);
    let p2 = m2.predict_proba(&df);
    assert_eq!(p1, p2);
}

#[test]
fn predictor_estimates_are_deterministic() {
    let df = lvp::datasets::income(400, &mut StdRng::seed_from_u64(4));
    let (source, serving) = df.split_frac(0.5, &mut StdRng::seed_from_u64(5));
    let (train, test) = source.split_frac(0.7, &mut StdRng::seed_from_u64(6));

    let estimate = |seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor =
            PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng)
                .unwrap();
        predictor.predict(&serving).unwrap()
    };

    assert_eq!(estimate(11), estimate(11));
}

/// Fixture for the batch-engine determinism tests: a trained model, the
/// test frame and the generator suite.
fn engine_fixture() -> (Arc<dyn BlackBoxModel>, lvp_dataframe::DataFrame) {
    let df = lvp::datasets::income(300, &mut StdRng::seed_from_u64(21));
    let (train, test) = df.split_frac(0.6, &mut StdRng::seed_from_u64(22));
    let model: Arc<dyn BlackBoxModel> = Arc::from(
        train_model_quick(ModelKind::Lr, &train, &mut StdRng::seed_from_u64(23)).unwrap(),
    );
    (model, test)
}

fn generate(
    model: &dyn BlackBoxModel,
    test: &lvp_dataframe::DataFrame,
    master_seed: u64,
    parallel: bool,
) -> Vec<TrainingExample> {
    let gens = standard_tabular_suite(test.schema());
    generate_training_examples_seeded(
        model,
        test,
        &gens,
        8,
        4,
        Metric::Accuracy,
        master_seed,
        parallel,
    )
    .expect("accuracy metric fits any class count")
}

#[test]
fn parallel_generation_is_bit_identical_to_sequential() {
    let (model, test) = engine_fixture();
    let sequential = generate(model.as_ref(), &test, 77, false);
    let parallel = generate(model.as_ref(), &test, 77, true);
    assert_eq!(sequential, parallel);
    // And a different master seed genuinely changes the stream.
    assert_ne!(sequential, generate(model.as_ref(), &test, 78, false));
}

#[test]
fn generation_is_identical_across_thread_counts() {
    let (model, test) = engine_fixture();
    let run_with = |threads: usize| -> Vec<TrainingExample> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| generate(model.as_ref(), &test, 55, true))
    };
    let one = run_with(1);
    let four = run_with(4);
    assert_eq!(one, four);
}

/// The tree-backed pipeline end to end — histogram-trained GBDT black box,
/// Algorithm 1 generation, histogram-trained meta-forest, blocked tree
/// inference throughout — must be bit-identical across thread counts.
#[test]
fn xgb_predictor_pipeline_is_bit_identical_across_thread_counts() {
    let df = lvp::datasets::income(400, &mut StdRng::seed_from_u64(31));
    let (source, serving) = df.split_frac(0.5, &mut StdRng::seed_from_u64(32));
    let (train, test) = source.split_frac(0.7, &mut StdRng::seed_from_u64(33));

    let run_with = |threads: usize| -> u64 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let mut rng = StdRng::seed_from_u64(34);
                let model: Arc<dyn BlackBoxModel> =
                    Arc::from(train_model_quick(ModelKind::Xgb, &train, &mut rng).unwrap());
                let gens = standard_tabular_suite(test.schema());
                let predictor = PerformancePredictor::fit(
                    model,
                    &test,
                    &gens,
                    &PredictorConfig::fast(),
                    &mut rng,
                )
                .unwrap();
                predictor.predict(&serving).unwrap().to_bits()
            })
    };

    let one = run_with(1);
    let four = run_with(4);
    assert_eq!(one, four);
    assert_eq!(four, run_with(4));
}

/// Attaching telemetry must be a pure observer: the instrumented fit path
/// (engine phase timers, model call counters, cache publishing) never
/// touches an RNG, so the fitted predictor's estimates are bit-identical
/// with and without a registry attached.
#[test]
fn telemetry_does_not_perturb_predictor_estimates() {
    let df = lvp::datasets::income(350, &mut StdRng::seed_from_u64(61));
    let (source, serving) = df.split_frac(0.5, &mut StdRng::seed_from_u64(62));
    let (train, test) = source.split_frac(0.7, &mut StdRng::seed_from_u64(63));

    let estimate = |instrument: bool| -> f64 {
        let registry = lvp_telemetry::Registry::new();
        let mut model =
            train_model_quick(ModelKind::Lr, &train, &mut StdRng::seed_from_u64(64)).unwrap();
        if instrument {
            model.attach_telemetry(&registry);
        }
        let model: Arc<dyn BlackBoxModel> = Arc::from(model);
        let gens = standard_tabular_suite(test.schema());
        let predictor = PerformancePredictor::fit_instrumented(
            model,
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut StdRng::seed_from_u64(65),
            instrument.then_some(&registry),
        )
        .unwrap();
        predictor.predict(&serving).unwrap()
    };

    assert_eq!(estimate(false), estimate(true));
}

/// The trained `PipelineModel` featurizes through a sharded encoding cache
/// whose per-thread shard assignment is scheduler-dependent. The generation
/// stream must nonetheless stay bit-identical across sequential/parallel
/// paths, thread counts, and repeated runs against a warm cache — cached
/// column blocks are bit-identical to freshly encoded ones.
#[test]
fn cached_featurization_keeps_generation_deterministic() {
    let (model, test) = engine_fixture();
    // Warm the model's cache with an initial pass, then compare everything
    // against this reference: later runs mix cache hits and misses across
    // arbitrary shards.
    let reference = generate(model.as_ref(), &test, 91, false);
    assert_eq!(reference, generate(model.as_ref(), &test, 91, true));
    let run_with = |threads: usize| -> Vec<TrainingExample> {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| generate(model.as_ref(), &test, 91, true))
    };
    assert_eq!(reference, run_with(1));
    assert_eq!(reference, run_with(4));
}

/// The calibrated interval pipeline — the deterministic calibration split,
/// the auxiliary forest, the per-tree quantiles, the conformal half-width —
/// must be bit-identical across reruns and thread counts, exactly like the
/// point path it wraps.
#[test]
fn interval_predictions_are_bit_identical_across_thread_counts() {
    let df = lvp::datasets::income(400, &mut StdRng::seed_from_u64(4));
    let (source, serving) = df.split_frac(0.5, &mut StdRng::seed_from_u64(5));
    let (train, test) = source.split_frac(0.7, &mut StdRng::seed_from_u64(6));

    let run_with = |threads: usize| -> (u64, u64, u64, Vec<u64>) {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let mut rng = StdRng::seed_from_u64(11);
                let model: Arc<dyn BlackBoxModel> =
                    Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
                let gens = standard_tabular_suite(test.schema());
                let predictor = PerformancePredictor::fit(
                    model,
                    &test,
                    &gens,
                    &PredictorConfig::fast(),
                    &mut rng,
                )
                .unwrap();
                let interval = predictor.predict_interval(&serving).unwrap();
                let residuals = predictor
                    .calibration_residuals()
                    .expect("default config calibrates")
                    .iter()
                    .map(|r| r.to_bits())
                    .collect();
                (
                    interval.lo.to_bits(),
                    interval.point.to_bits(),
                    interval.hi.to_bits(),
                    residuals,
                )
            })
    };

    let one = run_with(1);
    let four = run_with(4);
    assert_eq!(one, four);
    // And a rerun at the same thread count reproduces the same bits.
    assert_eq!(four, run_with(4));
}
