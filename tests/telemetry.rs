//! Telemetry subsystem integration: deterministic snapshots, histogram
//! accounting, and JSON round trips — through the real serving stack.

use lvp_core::{
    generate_training_examples_instrumented, BatchMonitor, Metric, MonitorPolicy,
    PerformancePredictor, PredictorConfig,
};
use lvp_corruptions::standard_tabular_suite;
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use lvp_telemetry::{Registry, TelemetrySnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Runs one fully instrumented serving-stack pass — train a model, attach
/// it to a fresh registry, fit a predictor through the instrumented engine,
/// monitor a few serving batches — and returns the registry.
fn instrumented_run(threads: usize) -> Registry {
    let registry = Registry::new();
    let df = lvp::datasets::income(300, &mut StdRng::seed_from_u64(41));
    let (source, serving) = df.split_frac(0.6, &mut StdRng::seed_from_u64(42));
    let (train, test) = source.split_frac(0.6, &mut StdRng::seed_from_u64(43));
    let mut model = train_model_quick(ModelKind::Lr, &train, &mut StdRng::seed_from_u64(44))
        .expect("training on seeded data succeeds");
    model.attach_telemetry(&registry);
    let model: Arc<dyn BlackBoxModel> = Arc::from(model);
    let gens = standard_tabular_suite(test.schema());

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let predictor = PerformancePredictor::fit_instrumented(
            model,
            &test,
            &gens,
            &PredictorConfig::fast(),
            &mut StdRng::seed_from_u64(45),
            Some(&registry),
        )
        .unwrap();
        let mut monitor = BatchMonitor::new(
            predictor,
            MonitorPolicy {
                threshold: 0.2,
                ..MonitorPolicy::default()
            },
        )
        .unwrap();
        monitor.retain_reference_outputs(&test).unwrap();
        monitor.attach_telemetry(&registry);
        let mut rng = StdRng::seed_from_u64(46);
        for _ in 0..4 {
            monitor.observe(&serving.sample_n(60, &mut rng)).unwrap();
        }
    });
    registry
}

#[test]
fn deterministic_snapshot_is_bit_identical_across_runs_and_thread_counts() {
    let a = instrumented_run(1).snapshot();
    let b = instrumented_run(1).snapshot();
    let c = instrumented_run(4).snapshot();
    // The deterministic view — volatile metrics dropped, histograms reduced
    // to their observation counts — must serialize to byte-identical JSON
    // for the same seeded workload, at any thread count.
    let json_a = a.deterministic().to_json().unwrap();
    let json_b = b.deterministic().to_json().unwrap();
    let json_c = c.deterministic().to_json().unwrap();
    assert_eq!(json_a, json_b, "same seed, same threads");
    assert_eq!(json_a, json_c, "same seed, different thread count");
    // Sanity: the run actually produced metrics at every layer.
    let det = a.deterministic();
    assert!(det.counters["engine.batches_generated"] > 0);
    assert!(det.counters["model.predict.calls"] > 0);
    assert_eq!(det.counters["monitor.batches_observed"], 4);
    assert!(det.gauges.contains_key("monitor.smoothed_score"));
    assert!(det.histograms["engine.score_phase"].count > 0);
}

#[test]
fn histogram_bucket_totals_equal_observation_counts() {
    let snap = instrumented_run(2).snapshot();
    assert!(!snap.histograms.is_empty());
    for (name, h) in &snap.histograms {
        assert_eq!(h.bucket_total(), h.count, "{name}");
    }
    // Engine phases record once per generated batch.
    let batches = snap.counters["engine.batches_generated"];
    for phase in [
        "engine.generate_phase",
        "engine.score_phase",
        "engine.featurize_phase",
    ] {
        assert_eq!(snap.histograms[phase].count, batches, "{phase}");
    }
}

#[test]
fn raw_snapshot_json_round_trips_exactly() {
    let snap = instrumented_run(2).snapshot();
    // The raw snapshot (volatile metrics and wall-clock buckets included)
    // must survive serde unchanged — bit-exact floats included.
    let json = snap.to_json().unwrap();
    let back = TelemetrySnapshot::from_json(&json).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.to_json().unwrap(), json);
    // Volatile cache metrics are present raw, absent deterministically.
    assert!(snap.counters.contains_key("model.cache.hits"));
    assert!(!snap
        .deterministic()
        .counters
        .contains_key("model.cache.hits"));
}

#[test]
fn generation_output_is_identical_with_and_without_telemetry() {
    let df = lvp::datasets::income(250, &mut StdRng::seed_from_u64(51));
    let (train, test) = df.split_frac(0.6, &mut StdRng::seed_from_u64(52));
    let model = train_model_quick(ModelKind::Lr, &train, &mut StdRng::seed_from_u64(53)).unwrap();
    let gens = standard_tabular_suite(test.schema());
    let registry = Registry::new();
    let run = |telemetry: Option<&Registry>| {
        generate_training_examples_instrumented(
            model.as_ref(),
            &test,
            &gens,
            6,
            3,
            Metric::Accuracy,
            17,
            true,
            telemetry,
        )
        .unwrap()
    };
    assert_eq!(run(None), run(Some(&registry)));
}
