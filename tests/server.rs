//! End-to-end tests for the lvpd daemon: two tenants over a real loopback
//! socket, interleaved verbs, queue-overflow shedding, deterministic
//! telemetry, and bit-identical registry persistence across a restart.

use lvp_core::{
    BatchMonitor, MonitorPolicy, PerformancePredictor, PredictorConfig, ServingArtifact,
};
use lvp_corruptions::standard_tabular_suite;
use lvp_dataframe::toy_frame;
use lvp_models::{train_logistic_regression, BlackBoxModel, BreakerConfig};
use lvp_server::{Client, Daemon, DaemonConfig, MonitorKey, Request, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn serving_artifact() -> ServingArtifact {
    let df = toy_frame(220);
    let mut rng = StdRng::seed_from_u64(23);
    let (train, rest) = df.split_frac(0.4, &mut rng);
    let (test, _serving) = rest.split_frac(0.5, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
    ServingArtifact::from_monitor(&monitor)
}

fn config() -> DaemonConfig {
    DaemonConfig {
        queue_capacity: 2,
        breaker: BreakerConfig {
            failure_threshold: 3,
            cooldown_nanos: 5_000_000,
            half_open_successes: 1,
        },
        ..DaemonConfig::default()
    }
}

fn chunk_rows(n: usize, shift: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let p = (0.15 + shift + 0.6 * (i as f64 / n as f64)).clamp(0.01, 0.99);
            vec![p, 1.0 - p]
        })
        .collect()
}

fn key(tenant: &str) -> MonitorKey {
    MonitorKey {
        tenant: tenant.to_string(),
        model: "churn".to_string(),
        version: "v2".to_string(),
    }
}

/// Drives one full daemon lifetime over loopback: registers two tenants,
/// interleaves their traffic (including bravo overrunning its chunk
/// budget), saves the registry to `state_path`, scrapes metrics, and shuts
/// the daemon down. Returns the deterministic metrics JSON.
fn run_session(artifact: &ServingArtifact, state_path: &std::path::Path) -> String {
    let daemon = Arc::new(Daemon::new(config()));
    let server = Server::spawn(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Two tenants on two independent connections.
    let mut acme = Client::connect(addr).unwrap();
    let mut bravo = Client::connect(addr).unwrap();

    for (client, tenant) in [(&mut acme, "acme"), (&mut bravo, "bravo")] {
        let mut req = Request::targeted("register", &key(tenant));
        req.artifact = Some(artifact.clone());
        let resp = client.call(&req).unwrap();
        assert!(resp.is_ok(), "register {tenant}: {:?}", resp.message);
    }

    // Interleaved traffic. acme submits full output batches; bravo streams
    // chunks and overruns its in-flight budget (capacity 2).
    let mut req = Request::targeted("observe", &key("acme"));
    req.outputs = Some(chunk_rows(24, 0.0));
    let resp = acme.call(&req).unwrap();
    assert!(resp.is_ok());
    assert!(resp.report.as_ref().unwrap().estimate.is_finite());

    for round in 0..2 {
        let mut req = Request::targeted("observe", &key("bravo"));
        req.chunk = Some(chunk_rows(10, 0.05 * round as f64));
        let resp = bravo.call(&req).unwrap();
        assert!(resp.is_ok(), "bravo chunk {round}: {:?}", resp.message);
        assert_eq!(resp.pending_chunks, Some(round + 1));
    }

    // Third chunk exceeds the budget: shed with a retry-after hint, and
    // bravo's window is poisoned rather than silently short.
    let mut req = Request::targeted("observe", &key("bravo"));
    req.chunk = Some(chunk_rows(10, 0.2));
    let shed = bravo.call(&req).unwrap();
    assert!(shed.is_shed(), "expected shed, got {:?}", shed.status);
    assert!(shed.retry_after_nanos.unwrap() > 0);
    assert!(shed.message.unwrap().contains("budget"));

    // Shedding is per tenant: acme's traffic is unaffected.
    let mut req = Request::targeted("observe", &key("acme"));
    req.estimate = Some(0.74);
    assert!(acme.call(&req).unwrap().is_ok());

    // bravo's poisoned window finishes degraded — the shed is recorded in
    // monitor state, not dropped — and frees the budget.
    let resp = bravo
        .call(&Request::targeted("finish", &key("bravo")))
        .unwrap();
    assert!(resp.is_ok());
    let report = resp.report.unwrap();
    assert!(report.degraded && report.estimate.is_nan());
    assert_eq!(resp.pending_chunks, Some(0));

    // With the budget freed the very next chunk is accepted again, and a
    // clean window scores normally.
    let mut req = Request::targeted("observe", &key("bravo"));
    req.chunk = Some(chunk_rows(16, 0.0));
    assert!(bravo.call(&req).unwrap().is_ok());
    let resp = bravo
        .call(&Request::targeted("finish", &key("bravo")))
        .unwrap();
    assert!(resp.report.unwrap().estimate.is_finite());

    // Bounded history slicing.
    let mut req = Request::targeted("history", &key("bravo"));
    req.limit = Some(1);
    req.offset = Some(1);
    let resp = bravo.call(&req).unwrap();
    let history = resp.history.unwrap();
    assert_eq!(history.len(), 1);
    assert_eq!(history[0].batch_index, 1);

    // Leave an open in-flight window on acme: persistence must carry it.
    let mut req = Request::targeted("observe", &key("acme"));
    req.chunk = Some(chunk_rows(12, 0.0));
    assert!(acme.call(&req).unwrap().is_ok());

    let mut req = Request::new("save");
    req.path = Some(state_path.to_string_lossy().into_owned());
    assert!(acme.call(&req).unwrap().is_ok());

    let metrics = bravo
        .call(&Request::new("metrics"))
        .unwrap()
        .metrics
        .unwrap();
    let metrics_json = serde_json::to_string(&metrics).unwrap();

    // Clean shutdown through the wire.
    let resp = acme.call(&Request::new("shutdown")).unwrap();
    assert!(resp.is_ok());
    drop(acme);
    drop(bravo);
    server.join();
    metrics_json
}

#[test]
fn two_tenants_end_to_end_with_shedding_persistence_and_determinism() {
    let dir = std::env::temp_dir().join(format!("lvpd-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = serving_artifact();

    // Two identical daemon lifetimes: the request sequence fully determines
    // telemetry (virtual clock, no wall time), so the deterministic
    // snapshots must be byte-identical, as must the saved registries.
    let first_state = dir.join("state-run1.json");
    let second_state = dir.join("state-run2.json");
    let metrics_a = run_session(&artifact, &first_state);
    let metrics_b = run_session(&artifact, &second_state);
    assert_eq!(metrics_a, metrics_b, "telemetry must be deterministic");
    assert_eq!(
        std::fs::read(&first_state).unwrap(),
        std::fs::read(&second_state).unwrap(),
        "saved registries of identical sessions must be byte-identical"
    );
    assert!(metrics_a.contains("tenant.bravo.server.shed_requests"));

    // Restart from the saved state: re-saving without any traffic must
    // reproduce the file bit-identically (open windows included) ...
    let restored = Daemon::with_state_file(config(), &first_state).unwrap();
    let resave = dir.join("state-resaved.json");
    let mut req = Request::new("save");
    req.path = Some(resave.to_string_lossy().into_owned());
    assert!(restored.handle_request(req).is_ok());
    assert_eq!(
        std::fs::read(&first_state).unwrap(),
        std::fs::read(&resave).unwrap(),
        "restore → save must round-trip bit-identically"
    );

    // ... and acme's in-flight window survives the restart: one more chunk
    // and a finish complete it as if the daemon never restarted.
    let restored = Arc::new(restored);
    let server = Server::spawn(Arc::clone(&restored), "127.0.0.1:0").unwrap();
    let mut acme = Client::connect(server.local_addr()).unwrap();
    let resp = acme
        .call(&Request::targeted("finish", &key("acme")))
        .unwrap();
    assert!(resp.is_ok(), "finish after restart: {:?}", resp.message);
    let report = resp.report.unwrap();
    assert!(report.estimate.is_finite() && !report.degraded);
    drop(acme);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A serving artifact whose monitor runs the calibrated interval alarm
/// policy instead of a tuned threshold.
fn interval_serving_artifact() -> ServingArtifact {
    let df = toy_frame(220);
    let mut rng = StdRng::seed_from_u64(23);
    let (train, rest) = df.split_frac(0.4, &mut rng);
    let (test, _serving) = rest.split_frac(0.5, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let monitor =
        BatchMonitor::new(predictor, MonitorPolicy::default().with_interval_alarm()).unwrap();
    ServingArtifact::from_monitor(&monitor)
}

/// Drives one interval-policy deployment over loopback: scored outputs and
/// externally supplied intervals flow in, calibrated intervals and interval
/// telemetry flow out, and malformed intervals are rejected without
/// consuming a batch index. Returns the deterministic metrics JSON.
fn run_interval_session(artifact: &ServingArtifact) -> String {
    let daemon = Arc::new(Daemon::new(config()));
    let server = Server::spawn(Arc::clone(&daemon), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let mut req = Request::targeted("register", &key("acme"));
    req.artifact = Some(artifact.clone());
    assert!(client.call(&req).unwrap().is_ok());

    // A scored output batch carries the daemon-computed interval.
    let mut req = Request::targeted("observe", &key("acme"));
    req.outputs = Some(chunk_rows(24, 0.0));
    let resp = client.call(&req).unwrap();
    assert!(resp.is_ok());
    let report = resp.report.unwrap();
    let interval = report.interval.expect("interval policy reports carry one");
    assert!(interval.validate().is_ok());
    assert!(interval.lo <= interval.point && interval.point <= interval.hi);
    assert_eq!(report.estimate.to_bits(), interval.point.to_bits());

    // An externally computed interval is accepted verbatim...
    let mut req = Request::targeted("observe", &key("acme"));
    req.interval = Some(lvp_core::ScoreInterval {
        point: 0.8,
        lo: 0.7,
        hi: 0.9,
        alpha: 0.1,
    });
    let resp = client.call(&req).unwrap();
    assert!(resp.is_ok());
    assert_eq!(resp.report.unwrap().interval.unwrap().lo, 0.7);
    assert_eq!(resp.batches_seen, Some(2));

    // ...but a malformed one is a hard error that consumes no batch index.
    for (bad, needle) in [
        (
            lvp_core::ScoreInterval {
                point: 0.8,
                lo: 0.9,
                hi: 0.7,
                alpha: 0.1,
            },
            "lo ≤ point ≤ hi",
        ),
        (
            lvp_core::ScoreInterval {
                point: f64::NAN,
                lo: 0.7,
                hi: 0.9,
                alpha: 0.1,
            },
            "all finite or all NaN",
        ),
    ] {
        let mut req = Request::targeted("observe", &key("acme"));
        req.interval = Some(bad);
        let resp = client.call(&req).unwrap();
        assert_eq!(resp.status, "error");
        assert!(
            resp.message.as_ref().unwrap().contains(needle),
            "{:?}",
            resp.message
        );
    }

    // A degraded (all-NaN) interval is quarantined, not rejected.
    let mut req = Request::targeted("observe", &key("acme"));
    req.interval = Some(lvp_core::ScoreInterval::degraded(0.1));
    let resp = client.call(&req).unwrap();
    assert!(resp.is_ok());
    let report = resp.report.unwrap();
    assert!(report.degraded && report.estimate.is_nan());
    assert_eq!(resp.batches_seen, Some(3));

    // Exactly one observe payload, interval included in the arity rule.
    let mut req = Request::targeted("observe", &key("acme"));
    req.estimate = Some(0.8);
    req.interval = Some(lvp_core::ScoreInterval {
        point: 0.8,
        lo: 0.7,
        hi: 0.9,
        alpha: 0.1,
    });
    let resp = client.call(&req).unwrap();
    assert_eq!(resp.status, "error");
    assert!(resp.message.unwrap().contains("exactly one"));

    // Interval telemetry is exported under the tenant prefix.
    let metrics = client
        .call(&Request::new("metrics"))
        .unwrap()
        .metrics
        .unwrap();
    let metrics_json = serde_json::to_string(&metrics).unwrap();
    assert!(metrics_json.contains("tenant.acme.churn.v2.monitor.interval_width"));
    assert!(metrics_json.contains("tenant.acme.churn.v2.monitor.coverage_violations"));

    assert!(client.call(&Request::new("shutdown")).unwrap().is_ok());
    drop(client);
    server.join();
    metrics_json
}

#[test]
fn interval_policy_deployments_serve_intervals_over_the_wire() {
    let artifact = interval_serving_artifact();
    // Identical sessions must produce byte-identical interval telemetry:
    // the calibrated interval pipeline adds no nondeterminism to the wire.
    let metrics_a = run_interval_session(&artifact);
    let metrics_b = run_interval_session(&artifact);
    assert_eq!(metrics_a, metrics_b);
}
