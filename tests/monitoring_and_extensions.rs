//! Integration tests for the deployment-side extensions: batch monitoring,
//! predictor persistence, the extended corruption suite, naive Bayes and
//! probability calibration.

use lvp_core::{
    BatchMonitor, MonitorPolicy, PerformancePredictor, PredictorArtifact, PredictorConfig,
};
use lvp_corruptions::{
    extended_tabular_suite, standard_tabular_suite, CategoryFlip, DuplicateRows, ErrorGen,
    SelectionBias,
};
use lvp_featurize::{FeaturePipeline, PipelineConfig};
use lvp_models::calibration::PlattCalibrated;
use lvp_models::naive_bayes::{GaussianNaiveBayes, NaiveBayesConfig};
use lvp_models::{
    model_accuracy, train_model_quick, BlackBoxModel, Classifier, ModelKind, PipelineModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn setup(
    seed: u64,
) -> (
    Arc<dyn BlackBoxModel>,
    lvp_dataframe::DataFrame,
    lvp_dataframe::DataFrame,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let df = lvp::datasets::income(900, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Xgb, &train, &mut rng).unwrap());
    let _ = train;
    (model, test, serving)
}

#[test]
fn monitor_pages_only_on_sustained_breakage() {
    let (model, test, serving) = setup(1);
    let mut rng = StdRng::seed_from_u64(2);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let mut monitor = BatchMonitor::new(
        predictor,
        MonitorPolicy {
            threshold: 0.15,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();

    // Healthy days.
    for _ in 0..4 {
        let r = monitor.observe(&serving.sample_n(250, &mut rng)).unwrap();
        assert!(!r.alarm);
    }
    // Catastrophic breakage: all categoricals nulled for 3 days.
    let mut broken = serving.clone();
    for col in broken.schema().categorical_columns() {
        for row in 0..broken.n_rows() {
            broken.column_mut(col).set_null(row);
        }
    }
    let mut alarms = 0;
    for _ in 0..3 {
        let r = monitor.observe(&broken.sample_n(250, &mut rng)).unwrap();
        if r.alarm {
            alarms += 1;
        }
    }
    // The model may or may not degrade by >15% under this corruption; only
    // assert the debouncing shape: the first broken batch never alarms.
    assert!(!monitor.history()[4].alarm);
    if model_accuracy(model.as_ref(), &broken) < 0.8 * monitor.predictor().test_score() {
        assert!(alarms >= 1, "sustained breakage must eventually alarm");
    }
}

#[test]
fn artifact_survives_json_round_trip() {
    let (model, test, serving) = setup(3);
    let mut rng = StdRng::seed_from_u64(4);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let before = predictor.predict(&serving).unwrap();

    let json = serde_json::to_string(&predictor.to_artifact()).unwrap();
    let artifact: PredictorArtifact = serde_json::from_str(&json).unwrap();
    let restored = PerformancePredictor::from_artifact(artifact, model).unwrap();
    assert_eq!(restored.predict(&serving).unwrap(), before);
}

#[test]
fn predictor_handles_extended_error_suite() {
    let (model, test, serving) = setup(5);
    let mut rng = StdRng::seed_from_u64(6);
    let gens = extended_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    // Selection bias changes batch composition, duplicate rows change batch
    // size — the predictor must keep producing sane estimates.
    for gen in [
        Box::new(SelectionBias::all_numeric(serving.schema())) as Box<dyn ErrorGen>,
        Box::new(DuplicateRows) as Box<dyn ErrorGen>,
        Box::new(CategoryFlip::all_categorical(serving.schema())) as Box<dyn ErrorGen>,
    ] {
        let corrupted = gen.corrupt(&serving.sample_n(300, &mut rng), &mut rng);
        let est = predictor.predict(&corrupted).unwrap();
        assert!((0.0..=1.0).contains(&est), "{}: {est}", gen.name());
    }
}

#[test]
fn naive_bayes_works_as_a_black_box_pipeline() {
    let mut rng = StdRng::seed_from_u64(7);
    let df = lvp::datasets::heart(700, &mut rng);
    let (train, test) = df.split_frac(0.7, &mut rng);
    let featurizer = FeaturePipeline::fit(&train, &PipelineConfig::default());
    let x = featurizer.transform(&train);
    let nb = GaussianNaiveBayes::fit(&x, train.labels(), 2, &NaiveBayesConfig::default()).unwrap();
    let model = PipelineModel::new(featurizer, Box::new(nb), "nb");
    let acc = model_accuracy(&model, &test);
    assert!(acc > 0.6, "naive Bayes accuracy {acc}");

    // And it plugs into the performance predictor like any other model.
    let model: Arc<dyn BlackBoxModel> = Arc::new(model);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let est = predictor.predict(&test).unwrap();
    assert!((est - acc).abs() < 0.2, "estimate {est} vs accuracy {acc}");
}

#[test]
fn calibrated_pipeline_remains_a_valid_black_box() {
    let mut rng = StdRng::seed_from_u64(8);
    let df = lvp::datasets::bank(600, &mut rng);
    let (train, calib) = df.split_frac(0.7, &mut rng);
    let featurizer = FeaturePipeline::fit(&train, &PipelineConfig::default());
    let x_train = featurizer.transform(&train);
    let nb =
        GaussianNaiveBayes::fit(&x_train, train.labels(), 2, &NaiveBayesConfig::default()).unwrap();
    let x_calib = featurizer.transform(&calib);
    let calibrated = PlattCalibrated::fit(nb, &x_calib, calib.labels()).unwrap();
    let proba = calibrated.predict_proba(&x_calib);
    for row in proba.row_iter() {
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
    let model = PipelineModel::new(featurizer, Box::new(calibrated), "nb+platt");
    assert!(model_accuracy(&model, &calib) > 0.55);
}
