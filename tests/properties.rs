//! Property-based tests over the workspace's core invariants.

use lvp_core::BatchSketch;
use lvp_corruptions::standard_tabular_suite;
use lvp_dataframe::{CellValue, ColumnType, DataFrameBuilder, Field, Schema};
use lvp_featurize::{FeaturePipeline, PipelineConfig};
use lvp_linalg::{stable_softmax, DenseMatrix};
use lvp_stats::{ks_two_sample, percentiles, vigintile_grid, EcdfSketch, QuantileSketch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds a random small mixed frame from proptest-generated cells.
fn build_frame(nums: &[f64], cats: &[u8]) -> lvp_dataframe::DataFrame {
    let n = nums.len().min(cats.len());
    let schema = Schema::new(vec![
        Field::new("x", ColumnType::Numeric),
        Field::new("c", ColumnType::Categorical),
    ])
    .unwrap();
    let mut b = DataFrameBuilder::new(schema, vec!["n".into(), "y".into()]);
    for i in 0..n {
        b.push_row(
            vec![
                CellValue::Num(nums[i]),
                CellValue::Cat(format!("c{}", cats[i] % 5)),
            ],
            (i % 2) as u32,
        )
        .unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentiles_are_bounded_and_monotone(values in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let qs = vigintile_grid();
        let out = percentiles(&values, &qs);
        let (min, max) = values.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        for w in out.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        prop_assert!(out[0] >= min - 1e-9);
        prop_assert!(*out.last().unwrap() <= max + 1e-9);
    }

    #[test]
    fn percentile_boundaries_hit_min_and_max_exactly(
        values in prop::collection::vec(-1e6f64..1e6, 1..8),
    ) {
        // Small-n boundary contract: q = 0 is exactly min, q = 100 exactly
        // max (no interpolation slop, no out-of-bounds rank) — the regime
        // where tiny serving batches land.
        let out = percentiles(&values, &[0.0, 100.0]);
        let (min, max) = values
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        prop_assert_eq!(out[0], min);
        prop_assert_eq!(out[1], max);
    }

    #[test]
    fn ks_statistic_is_in_unit_interval(
        a in prop::collection::vec(-100f64..100.0, 1..100),
        b in prop::collection::vec(-100f64..100.0, 1..100),
    ) {
        let out = ks_two_sample(&a, &b);
        prop_assert!((0.0..=1.0).contains(&out.statistic));
        prop_assert!((0.0..=1.0).contains(&out.p_value));
    }

    #[test]
    fn ks_is_symmetric(
        a in prop::collection::vec(-100f64..100.0, 1..60),
        b in prop::collection::vec(-100f64..100.0, 1..60),
    ) {
        let ab = ks_two_sample(&a, &b);
        let ba = ks_two_sample(&b, &a);
        prop_assert!((ab.statistic - ba.statistic).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_sample_never_rejects(a in prop::collection::vec(-100f64..100.0, 1..100)) {
        let out = ks_two_sample(&a, &a);
        prop_assert_eq!(out.statistic, 0.0);
        prop_assert!(out.p_value > 0.99);
    }

    #[test]
    fn softmax_rows_are_distributions(
        logits in prop::collection::vec(-50f64..50.0, 2..40),
    ) {
        let cols = 2;
        let rows = logits.len() / cols;
        let m = DenseMatrix::from_vec(rows, cols, logits[..rows * cols].to_vec()).unwrap();
        let p = stable_softmax(&m);
        for row in p.row_iter() {
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn corruption_preserves_shape_schema_and_labels(
        nums in prop::collection::vec(-1000f64..1000.0, 4..60),
        cats in prop::collection::vec(0u8..255, 4..60),
        seed in 0u64..1000,
    ) {
        let df = build_frame(&nums, &cats);
        let mut rng = StdRng::seed_from_u64(seed);
        for gen in standard_tabular_suite(df.schema()) {
            let out = gen.corrupt(&df, &mut rng);
            prop_assert_eq!(out.n_rows(), df.n_rows());
            prop_assert_eq!(out.schema(), df.schema());
            prop_assert_eq!(out.labels(), df.labels());
        }
    }

    #[test]
    fn featurization_dimensionality_is_stable_under_corruption(
        nums in prop::collection::vec(-100f64..100.0, 8..40),
        cats in prop::collection::vec(0u8..255, 8..40),
        seed in 0u64..1000,
    ) {
        let df = build_frame(&nums, &cats);
        let pipeline = FeaturePipeline::fit(&df, &PipelineConfig::default());
        let clean = pipeline.transform(&df);
        let mut rng = StdRng::seed_from_u64(seed);
        for gen in standard_tabular_suite(df.schema()) {
            let corrupted = gen.corrupt(&df, &mut rng);
            let x = pipeline.transform(&corrupted);
            prop_assert_eq!(x.cols(), clean.cols(), "{}", gen.name());
            prop_assert_eq!(x.rows(), clean.rows(), "{}", gen.name());
        }
    }

    #[test]
    fn split_frac_partitions_rows(
        nums in prop::collection::vec(-10f64..10.0, 4..80),
        cats in prop::collection::vec(0u8..255, 4..80),
        frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let df = build_frame(&nums, &cats);
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = df.split_frac(frac, &mut rng);
        prop_assert_eq!(a.n_rows() + b.n_rows(), df.n_rows());
    }

    #[test]
    fn prediction_statistics_is_permutation_invariant(
        probs in prop::collection::vec(0.0f64..1.0, 4..50),
        seed in 0u64..1000,
    ) {
        use rand::seq::SliceRandom;
        let rows: Vec<Vec<f64>> = probs.iter().map(|&p| vec![p, 1.0 - p]).collect();
        let m = DenseMatrix::from_rows(&rows).unwrap();
        let f1 = lvp_core::prediction_statistics(&m);
        let mut shuffled = rows.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let m2 = DenseMatrix::from_rows(&shuffled).unwrap();
        let f2 = lvp_core::prediction_statistics(&m2);
        for (a, b) in f1.iter().zip(&f2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn cow_frames_match_deep_copied_frames_under_corruption(
        nums in prop::collection::vec(-1000f64..1000.0, 4..60),
        cats in prop::collection::vec(0u8..255, 4..60),
        seed in 0u64..1000,
    ) {
        let df = build_frame(&nums, &cats);
        // `deep_clone` physically copies every column, so corrupting it
        // exercises the plain ownership path; corrupting the CoW clone must
        // produce value-identical output and leave the original untouched.
        let original = df.deep_clone();
        let mut gens = standard_tabular_suite(df.schema());
        gens.extend(lvp_corruptions::extended_tabular_suite(df.schema()));
        for gen in gens {
            let deep = gen.corrupt(&df.deep_clone(), &mut StdRng::seed_from_u64(seed));
            let cow = gen.corrupt(&df.clone(), &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(&cow, &deep, "{}", gen.name());
            prop_assert_eq!(&df, &original, "{} mutated its input", gen.name());
            // Row re-selectors (empty touched set) rebuild storage even when
            // the row count happens to be unchanged, so only value-mutating
            // generators carry the sharing guarantee.
            let touched = gen.touched_columns(&df);
            if cow.n_rows() == df.n_rows() && !touched.is_empty() {
                // Every column the generator did not declare still shares
                // storage with the input frame.
                for col in 0..df.n_cols() {
                    if !touched.contains(&col) {
                        prop_assert!(
                            df.shares_column_storage(&cow, col),
                            "{} copied undeclared column {}", gen.name(), col
                        );
                    }
                }
            }
        }
    }

    /// The quantile sketch is a commutative monoid under merge: any
    /// parenthesization and any order over the same inputs yields
    /// bit-identical state (`PartialEq` on sketches is bit-identical, NaN
    /// sentinels included). This is the algebraic fact behind the
    /// shard-merged ≡ single-stream guarantee.
    #[test]
    fn quantile_sketch_merge_is_associative_and_commutative(
        a in prop::collection::vec(0.0f64..1.0, 0..80),
        b in prop::collection::vec(0.0f64..1.0, 0..80),
        c in prop::collection::vec(0.0f64..1.0, 0..80),
    ) {
        let sketch = |v: &[f64]| {
            let mut s = QuantileSketch::unit();
            s.extend(v.iter().copied());
            s
        };
        let (sa, sb, sc) = (sketch(&a), sketch(&b), sketch(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb).unwrap();
        left.merge(&sc).unwrap();
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc).unwrap();
        let mut right = sa.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(&left, &right, "associativity");
        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb).unwrap();
        let mut ba = sb.clone();
        ba.merge(&sa).unwrap();
        prop_assert_eq!(&ab, &ba, "commutativity");
        // Merged state ≡ single-stream state over the concatenation.
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        prop_assert_eq!(&ab, &sketch(&concat), "merge ≡ stream");
    }

    #[test]
    fn ecdf_sketch_merge_is_associative_and_commutative(
        a in prop::collection::vec(0.0f64..1.0, 0..80),
        b in prop::collection::vec(0.0f64..1.0, 0..80),
        c in prop::collection::vec(0.0f64..1.0, 0..80),
    ) {
        let sketch = |v: &[f64]| EcdfSketch::from_values(v, 0.0, 1.0, 64);
        let (sa, sb, sc) = (sketch(&a), sketch(&b), sketch(&c));
        let mut left = sa.clone();
        left.merge(&sb).unwrap();
        left.merge(&sc).unwrap();
        let mut bc = sb.clone();
        bc.merge(&sc).unwrap();
        let mut right = sa.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(&left, &right, "associativity");
        let mut ab = sa.clone();
        ab.merge(&sb).unwrap();
        let mut ba = sb.clone();
        ba.merge(&sa).unwrap();
        prop_assert_eq!(&ab, &ba, "commutativity");
    }

    /// Percentiles queried from the sketch stay within the proven
    /// value-error bound of the exact sort-based oracle on adversarial
    /// input shapes: sorted, reversed, all-tied, and NaN-bearing.
    #[test]
    fn sketch_percentile_error_is_bounded_on_adversarial_inputs(
        values in prop::collection::vec(0.0f64..1.0, 1..400),
        shape in 0usize..4,
    ) {
        let mut values = values;
        match shape {
            0 => values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap()),
            1 => {
                values.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                values.reverse();
            }
            2 => {
                let v = values[0];
                values.iter_mut().for_each(|x| *x = v);
            }
            _ => {
                // Poison every third cell, as a NaN-injecting corruption
                // would; both paths must drop them identically.
                values.iter_mut().skip(2).step_by(3).for_each(|x| *x = f64::NAN);
            }
        }
        let mut sketch = QuantileSketch::unit();
        sketch.extend(values.iter().copied());
        let qs = vigintile_grid();
        let exact = percentiles(&values, &qs);
        let mut approx = Vec::new();
        sketch.extend_percentiles(&qs, &mut approx);
        let bound = sketch.value_error_bound() + 1e-12;
        for (i, (e, s)) in exact.iter().zip(&approx).enumerate() {
            prop_assert!((e - s).abs() <= bound, "q {}: exact {} sketched {}", qs[i], e, s);
        }
    }

    /// Chunk boundaries and shard fan-out are invisible: any chunking of a
    /// batch and any sharding (merged in order) produce features
    /// bit-identical to the one-shot sketch of the whole batch.
    #[test]
    fn batch_sketch_features_are_chunking_and_sharding_invariant(
        probs in prop::collection::vec(0.0f64..1.0, 1..200),
        chunk in 1usize..64,
        shards in 1usize..6,
    ) {
        let rows: Vec<Vec<f64>> = probs.iter().map(|&p| vec![p, 1.0 - p]).collect();
        let m = DenseMatrix::from_rows(&rows).unwrap();
        let whole = BatchSketch::from_outputs(&m);

        let idx: Vec<usize> = (0..m.rows()).collect();
        let mut chunked = BatchSketch::new(2);
        for c in idx.chunks(chunk) {
            chunked.observe_chunk(&m.select_rows(c)).unwrap();
        }
        prop_assert_eq!(
            whole.prediction_statistics(),
            chunked.prediction_statistics()
        );

        let per_shard = idx.len().div_ceil(shards);
        let mut merged = BatchSketch::new(2);
        for shard_rows in idx.chunks(per_shard) {
            merged.merge(&BatchSketch::from_outputs(&m.select_rows(shard_rows))).unwrap();
        }
        let a = whole.prediction_statistics();
        let b = merged.prediction_statistics();
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn one_hot_unseen_rows_encode_to_zero_block(
        cats in prop::collection::vec(0u8..5, 8..40),
    ) {
        let nums: Vec<f64> = (0..cats.len()).map(|i| i as f64).collect();
        let df = build_frame(&nums, &cats);
        let pipeline = FeaturePipeline::fit(&df, &PipelineConfig::default());
        // A frame with a category never seen during fitting.
        let schema = df.schema().clone();
        let mut b = DataFrameBuilder::new(schema, vec!["n".into(), "y".into()]);
        b.push_row(vec![CellValue::Num(0.0), CellValue::Cat("UNSEEN".into())], 0).unwrap();
        let unseen = b.finish().unwrap();
        let x = pipeline.transform(&unseen);
        // Only the numeric dim may be nonzero.
        let (idx, _) = x.row(0);
        prop_assert!(idx.iter().all(|&c| c == 0));
    }
}
