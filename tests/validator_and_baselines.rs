//! Integration tests for the performance validator against the REL / BBSE /
//! BBSEh baselines (the §6.2 protocol at test scale).

use lvp_core::{
    Baseline, BbseDetector, BbseHardDetector, PerformanceValidator, RelationalShiftDetector,
    ValidatorConfig,
};
use lvp_corruptions::{standard_tabular_suite, unknown_tabular_suite, ErrorGen, Mixture};
use lvp_models::{model_accuracy, train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

struct Setup {
    model: Arc<dyn BlackBoxModel>,
    test: lvp_dataframe::DataFrame,
    serving: lvp_dataframe::DataFrame,
    validator: PerformanceValidator,
}

fn quick_validator_config(threshold: f64) -> ValidatorConfig {
    ValidatorConfig {
        runs_per_generator: 30,
        clean_copies: 10,
        ..ValidatorConfig::fast(threshold)
    }
}

fn setup(threshold: f64, seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let df = lvp::datasets::heart(1_200, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Xgb, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &quick_validator_config(threshold),
        &mut rng,
    )
    .unwrap();
    Setup {
        model,
        test,
        serving,
        validator,
    }
}

#[test]
fn validator_and_baselines_agree_on_clean_data() {
    let s = setup(0.10, 1);
    assert!(s.validator.validate(&s.serving).unwrap().within_threshold);
    let rel = RelationalShiftDetector::new(s.test.clone());
    let bbse = BbseDetector::new(Arc::clone(&s.model), &s.test);
    let bbseh = BbseHardDetector::new(Arc::clone(&s.model), &s.test);
    assert!(!rel.detects_shift(&s.serving));
    assert!(!bbse.detects_shift(&s.serving));
    assert!(!bbseh.detects_shift(&s.serving));
}

#[test]
fn validator_beats_chance_on_mixture_corruption() {
    let s = setup(0.05, 2);
    let mut rng = StdRng::seed_from_u64(3);
    let mixture = Mixture::from_boxes(standard_tabular_suite(s.serving.schema()));
    let mut correct = 0;
    let mut total = 0;
    for i in 0..30 {
        // Alternate clean and corrupted batches so both classes occur.
        let batch = s.serving.sample_n(300, &mut rng);
        let batch = if i % 2 == 0 {
            batch
        } else {
            mixture.corrupt(&batch, &mut rng)
        };
        let truth_ok =
            model_accuracy(s.model.as_ref(), &batch) >= (1.0 - 0.05) * s.validator.test_score();
        let predicted_ok = s.validator.validate(&batch).unwrap().within_threshold;
        if truth_ok == predicted_ok {
            correct += 1;
        }
        total += 1;
    }
    let acc = f64::from(correct) / f64::from(total);
    // With 30 batches, P(X >= 18 | p = 0.5) ≈ 0.1; combined with the fixed
    // seed this keeps the test deterministic while still meaning something.
    assert!(acc >= 0.6, "validator decision accuracy {acc}");
}

#[test]
fn validator_generalizes_to_unknown_errors() {
    // Train on the known suite, evaluate on the unknown suite (§6.2.2).
    let s = setup(0.10, 4);
    let mut rng = StdRng::seed_from_u64(5);
    let unknown = Mixture::from_boxes(unknown_tabular_suite(s.serving.schema()));
    let mut correct = 0;
    let mut total = 0;
    for i in 0..12 {
        let batch = s.serving.sample_n(300, &mut rng);
        let batch = if i % 2 == 0 {
            batch
        } else {
            unknown.corrupt(&batch, &mut rng)
        };
        let truth_ok =
            model_accuracy(s.model.as_ref(), &batch) >= (1.0 - 0.10) * s.validator.test_score();
        let predicted_ok = s.validator.validate(&batch).unwrap().within_threshold;
        if truth_ok == predicted_ok {
            correct += 1;
        }
        total += 1;
    }
    let acc = f64::from(correct) / f64::from(total);
    assert!(acc > 0.55, "unknown-error decision accuracy {acc}");
}

#[test]
fn baselines_alarm_under_catastrophic_scaling() {
    let s = setup(0.05, 6);
    let mut rng = StdRng::seed_from_u64(7);
    // Scale every numeric column by 1000 — a catastrophic unit bug.
    let mut broken = s.serving.clone();
    for col in broken.schema().numeric_columns() {
        let values = broken.column_mut(col).as_numeric_mut().unwrap();
        for v in values.iter_mut().flatten() {
            *v *= 1000.0;
        }
    }
    let _ = &mut rng;
    let rel = RelationalShiftDetector::new(s.test.clone());
    let bbse = BbseDetector::new(Arc::clone(&s.model), &s.test);
    assert!(rel.detects_shift(&broken), "REL must see the scale shift");
    assert!(
        bbse.detects_shift(&broken),
        "BBSE must see the output shift"
    );
    assert!(
        !s.validator.validate(&broken).unwrap().within_threshold,
        "validator must alarm"
    );
}

#[test]
fn f1_harness_logic_is_consistent() {
    // The experiment harness computes F1 over the "violation" class; verify
    // the bookkeeping on a synthetic confusion pattern.
    let predicted: Vec<bool> = vec![true, true, false, false, true];
    let actual: Vec<bool> = vec![true, false, false, true, true];
    let f1 = lvp_stats::f1_score(&predicted, &actual);
    // tp=2 fp=1 fn=1 → precision 2/3, recall 2/3, f1 = 2/3.
    assert!((f1 - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn validator_entropy_error_with_model_access() {
    // The entropy-based generator exercises corrupt_with_model inside
    // validator training.
    let mut rng = StdRng::seed_from_u64(8);
    let df = lvp::datasets::income(700, &mut rng);
    let (train, test) = df.split_frac(0.6, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
    let gens: Vec<Box<dyn ErrorGen>> = vec![
        Box::new(lvp_corruptions::EntropyMissingValues::all_tabular(
            test.schema(),
        )),
        Box::new(lvp_corruptions::MissingValues::all_categorical(
            test.schema(),
        )),
    ];
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &quick_validator_config(0.05),
        &mut rng,
    )
    .unwrap();
    let outcome = validator.validate(&test.sample_n(200, &mut rng)).unwrap();
    assert!((0.0..=1.0).contains(&outcome.confidence));
    let _ = rng.gen::<u8>();
}
