//! Crash-recovery properties of the durable lvpd stack: a daemon killed
//! at *any* journal record boundary recovers bit-identical registry
//! state; torn, truncated, or bit-flipped journal tails are classified
//! and truncated to the last durable record (never a panic); live torn
//! appends reject the request without applying it; and pre-envelope
//! registry snapshots still load.

use lvp_core::{
    to_json, BatchMonitor, MonitorPolicy, PerformancePredictor, PredictorConfig, ServingArtifact,
};
use lvp_corruptions::standard_tabular_suite;
use lvp_dataframe::toy_frame;
use lvp_models::{train_logistic_regression, BlackBoxModel, BreakerConfig};
use lvp_server::{
    Daemon, DaemonConfig, DurabilityConfig, JournalFaultPlan, MonitorKey, Request, Response,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::Path;
use std::sync::Arc;

fn serving_artifact() -> ServingArtifact {
    let df = toy_frame(220);
    let mut rng = StdRng::seed_from_u64(23);
    let (train, rest) = df.split_frac(0.4, &mut rng);
    let (test, _serving) = rest.split_frac(0.5, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let monitor = BatchMonitor::new(predictor, MonitorPolicy::default()).unwrap();
    ServingArtifact::from_monitor(&monitor)
}

fn config() -> DaemonConfig {
    DaemonConfig {
        queue_capacity: 2,
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_nanos: 50_000_000,
            half_open_successes: 1,
        },
        ..DaemonConfig::default()
    }
}

fn key(tenant: &str) -> MonitorKey {
    MonitorKey {
        tenant: tenant.to_string(),
        model: "churn".to_string(),
        version: "v2".to_string(),
    }
}

fn chunk_rows(n: usize, shift: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            let p = (0.15 + shift + 0.6 * (i as f64 / n as f64)).clamp(0.01, 0.99);
            vec![p, 1.0 - p]
        })
        .collect()
}

/// The deterministic workload: two deployments, full batches, estimates,
/// streamed chunks with overflow sheds (the per-tenant budget is 2), a
/// breaker-open phase, finishes, and one mid-stream compacting `save`.
/// Well over 50 journaled mutations.
fn workload(artifact: &ServingArtifact, snapshot_path: &Path) -> Vec<Request> {
    let mut requests = Vec::new();
    for tenant in ["acme", "bravo"] {
        let mut req = Request::targeted("register", &key(tenant));
        req.artifact = Some(artifact.clone());
        requests.push(req);
    }
    for i in 0..18 {
        let mut req = Request::targeted("observe", &key("acme"));
        req.estimate = Some(0.3 + 0.02 * i as f64);
        requests.push(req);
    }
    for i in 0..4 {
        let mut req = Request::targeted("observe", &key("acme"));
        req.outputs = Some(chunk_rows(12, 0.02 * i as f64));
        requests.push(req);
    }
    // bravo floods its chunk budget: each round journals two accepted
    // chunks, one shed (as its window-abandonment effect), and a finish
    // of the poisoned window. Two overflow rounds trip the breaker.
    for round in 0..4 {
        for c in 0..3 {
            let mut req = Request::targeted("observe", &key("bravo"));
            req.chunk = Some(chunk_rows(8, 0.03 * (round * 3 + c) as f64));
            requests.push(req);
        }
        requests.push(Request::targeted("finish", &key("bravo")));
    }
    // Breaker-open sheds journal as degraded-batch effects.
    for i in 0..4 {
        let mut req = Request::targeted("observe", &key("bravo"));
        req.estimate = Some(0.5 + 0.01 * i as f64);
        requests.push(req);
    }
    // An invalid interval errors without journaling or mutating anything.
    let mut req = Request::targeted("observe", &key("acme"));
    req.interval = Some(lvp_core::ScoreInterval {
        point: 0.8,
        lo: 0.9,
        hi: 0.7,
        alpha: 0.1,
    });
    requests.push(req);
    // Mid-stream save to the configured path: compacts the journal.
    let mut req = Request::new("save");
    req.path = Some(snapshot_path.to_string_lossy().into_owned());
    requests.push(req);
    // Post-compaction traffic, including a valid external interval and an
    // open window left in flight at the end.
    for i in 0..10 {
        let mut req = Request::targeted("observe", &key("acme"));
        req.estimate = Some(0.4 + 0.015 * i as f64);
        requests.push(req);
    }
    let mut req = Request::targeted("observe", &key("acme"));
    req.interval = Some(lvp_core::ScoreInterval {
        point: 0.8,
        lo: 0.7,
        hi: 0.9,
        alpha: 0.1,
    });
    requests.push(req);
    let mut req = Request::targeted("observe", &key("acme"));
    req.chunk = Some(chunk_rows(10, 0.0));
    requests.push(req);
    requests
}

/// Files on disk after one request: the journal plus the snapshot, if one
/// has been written yet — exactly what a crash at this boundary leaves.
#[derive(Clone)]
struct DiskState {
    journal: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

struct Trace {
    /// Disk state after request `i` of the workload.
    disk: Vec<DiskState>,
    /// Registry-content JSON after request `i` (the recovery target).
    state_json: Vec<String>,
    responses: Vec<Response>,
}

/// Runs the workload on a durable daemon in `dir`, capturing the on-disk
/// bytes and the in-memory registry state after every request.
fn run_durable(artifact: &ServingArtifact, dir: &Path) -> Trace {
    std::fs::create_dir_all(dir).unwrap();
    let durability = DurabilityConfig::in_dir(dir);
    let snapshot_path = durability.snapshot_path.clone().unwrap();
    let journal_path = durability.journal_path.clone().unwrap();
    let (daemon, report) = Daemon::recover(config(), durability).unwrap();
    assert!(!report.snapshot_loaded && report.journal_bytes == 0);

    let mut trace = Trace {
        disk: Vec::new(),
        state_json: Vec::new(),
        responses: Vec::new(),
    };
    for request in workload(artifact, &snapshot_path) {
        let response = daemon.handle_request(request);
        trace.disk.push(DiskState {
            journal: std::fs::read(&journal_path).unwrap(),
            snapshot: std::fs::read(&snapshot_path).ok(),
        });
        trace.state_json.push(to_json(&daemon.snapshot()).unwrap());
        trace.responses.push(response);
    }
    trace
}

/// Lays `disk` down in `dir` as the post-crash filesystem.
fn plant(disk: &DiskState, dir: &Path) -> DurabilityConfig {
    std::fs::create_dir_all(dir).unwrap();
    let durability = DurabilityConfig::in_dir(dir);
    std::fs::write(durability.journal_path.as_ref().unwrap(), &disk.journal).unwrap();
    let snapshot_path = durability.snapshot_path.as_ref().unwrap();
    match &disk.snapshot {
        Some(bytes) => std::fs::write(snapshot_path, bytes).unwrap(),
        None => {
            let _ = std::fs::remove_file(snapshot_path);
        }
    }
    durability
}

#[test]
fn crashing_at_every_record_boundary_recovers_bit_identical_state() {
    let dir = std::env::temp_dir().join(format!("lvpd-crash-{}", std::process::id()));
    let artifact = serving_artifact();
    let trace = run_durable(&artifact, &dir.join("live"));
    assert!(
        trace.disk.len() > 50,
        "workload too small: {}",
        trace.disk.len()
    );
    // The workload really exercised the interesting paths.
    assert!(trace.responses.iter().any(Response::is_shed));
    assert!(trace.responses.iter().any(|r| r.status == "error"));
    let compactions = trace.windows_compacted();
    assert!(compactions >= 1, "the save must have compacted the journal");

    // Crash after every request: recovery from exactly the bytes on disk
    // must reproduce the live daemon's registry state bit-for-bit.
    let scratch = dir.join("scratch");
    for (step, disk) in trace.disk.iter().enumerate() {
        let durability = plant(disk, &scratch);
        let (recovered, report) = Daemon::recover(config(), durability)
            .unwrap_or_else(|e| panic!("recovery at step {step} failed: {e}"));
        assert_eq!(
            to_json(&recovered.snapshot()).unwrap(),
            trace.state_json[step],
            "state diverged after crash at step {step} ({report:?})",
        );
        assert!(
            report.tail_defect.is_none(),
            "clean boundary misread as damage at step {step}: {report:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

impl Trace {
    /// How many times the on-disk journal shrank — i.e. was compacted.
    fn windows_compacted(&self) -> usize {
        self.disk
            .windows(2)
            .filter(|w| w[1].journal.len() < w[0].journal.len())
            .count()
    }
}

#[test]
fn identical_durable_sessions_leave_byte_identical_files() {
    let dir = std::env::temp_dir().join(format!("lvpd-det-{}", std::process::id()));
    let artifact = serving_artifact();
    let a = run_durable(&artifact, &dir.join("a"));
    let b = run_durable(&artifact, &dir.join("b"));
    let (la, lb) = (a.disk.last().unwrap(), b.disk.last().unwrap());
    assert_eq!(la.journal, lb.journal, "journals must be byte-identical");
    assert_eq!(la.snapshot, lb.snapshot, "snapshots must be byte-identical");
    assert_eq!(a.state_json.last(), b.state_json.last());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_compaction_skips_stale_records_instead_of_double_applying() {
    let dir = std::env::temp_dir().join(format!("lvpd-stale-{}", std::process::id()));
    let artifact = serving_artifact();
    let trace = run_durable(&artifact, &dir.join("live"));

    // The save step: the snapshot appears (or changes) and the journal
    // shrinks one step later than the last pre-save capture.
    let save_step = trace
        .disk
        .windows(2)
        .position(|w| w[1].journal.len() < w[0].journal.len())
        .expect("workload contains a compacting save")
        + 1;

    // A crash *between* the snapshot write and the journal truncation
    // leaves the new-epoch snapshot next to the old-epoch journal.
    let torn_compaction = DiskState {
        journal: trace.disk[save_step - 1].journal.clone(),
        snapshot: trace.disk[save_step].snapshot.clone(),
    };
    let scratch = dir.join("scratch");
    let durability = plant(&torn_compaction, &scratch);
    let (recovered, report) = Daemon::recover(config(), durability).unwrap();
    assert!(
        report.records_stale > 0,
        "old-epoch records must be recognized as stale: {report:?}"
    );
    assert_eq!(report.records_replayed, 0);
    // The snapshot already contains every stale record's effect: state
    // equals the live registry at the save point, nothing double-applied.
    assert_eq!(
        to_json(&recovered.snapshot()).unwrap(),
        trace.state_json[save_step]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_and_bit_flipped_tails_truncate_to_the_last_durable_record() {
    let dir = std::env::temp_dir().join(format!("lvpd-tails-{}", std::process::id()));
    let artifact = serving_artifact();
    let trace = run_durable(&artifact, &dir.join("live"));
    let last = trace.disk.last().unwrap();

    // The journal grew right up to the end (an open window was left in
    // flight), so the final capture has at least one trailing record.
    let boundary_step = trace
        .disk
        .iter()
        .rposition(|d| d.journal.len() < last.journal.len())
        .expect("final record has a preceding boundary");
    let boundary = trace.disk[boundary_step].journal.len();
    assert!(boundary < last.journal.len());

    let scratch = dir.join("scratch");
    // Tear the final record at several depths: inside the header, inside
    // the payload, and one byte short of complete.
    for cut in [boundary + 3, boundary + 12, last.journal.len() - 1] {
        let torn = DiskState {
            journal: last.journal[..cut].to_vec(),
            snapshot: last.snapshot.clone(),
        };
        let durability = plant(&torn, &scratch);
        let journal_path = durability.journal_path.clone().unwrap();
        let (recovered, report) = Daemon::recover(config(), durability)
            .unwrap_or_else(|e| panic!("torn tail at {cut} must recover, got: {e}"));
        assert!(
            report.tail_defect.is_some(),
            "cut at {cut} must be classified: {report:?}"
        );
        assert_eq!(report.truncated_tail_bytes, (cut - boundary) as u64);
        // The damaged tail is physically truncated to the last durable
        // record, and the recovered state is the boundary state.
        assert_eq!(
            std::fs::metadata(&journal_path).unwrap().len(),
            boundary as u64
        );
        assert_eq!(
            to_json(&recovered.snapshot()).unwrap(),
            trace.state_json[boundary_step]
        );
        // The truncation is visible in telemetry, typed, not a panic.
        let snap = recovered.registry().snapshot();
        assert_eq!(snap.counters["journal.tail_defects"], 1);
        assert_eq!(
            snap.counters["journal.tail_truncated_bytes"],
            (cut - boundary) as u64
        );
    }

    // A silent bit flip in the *middle* of the journal: every record up
    // to the flipped one replays, the rest is truncated with a checksum
    // defect — corruption never propagates into monitor state.
    let mut flipped = DiskState {
        journal: last.journal.clone(),
        snapshot: last.snapshot.clone(),
    };
    let mid = boundary / 2;
    flipped.journal[mid] ^= 0x10;
    let durability = plant(&flipped, &scratch);
    let (recovered, report) = Daemon::recover(config(), durability).unwrap();
    let defect = report.tail_defect.clone().expect("flip must be detected");
    assert!(
        ["checksum", "magic", "header", "payload"]
            .iter()
            .any(|class| defect.contains(class)),
        "unexpected defect class: {defect}"
    );
    assert!(report.truncated_tail_bytes > 0);
    // The recovered prefix matches some earlier boundary exactly.
    let prefix_state = to_json(&recovered.snapshot()).unwrap();
    assert!(
        trace.state_json.iter().any(|s| *s == prefix_state),
        "bit-flip recovery must land on a boundary state"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_torn_appends_reject_the_request_without_applying_it() {
    let dir = std::env::temp_dir().join(format!("lvpd-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = serving_artifact();
    let durability = DurabilityConfig::in_dir(&dir);
    let (daemon, _) = Daemon::recover(config(), durability.clone()).unwrap();

    // Register cleanly, then inject deterministic torn writes.
    let mut req = Request::targeted("register", &key("acme"));
    req.artifact = Some(artifact.clone());
    assert!(daemon.handle_request(req).is_ok());
    daemon.inject_journal_faults(JournalFaultPlan {
        seed: 41,
        torn_write_period: Some(4),
        bit_flip_period: None,
    });

    let mut rejected = 0usize;
    let mut applied = 0usize;
    for i in 0..24 {
        let mut req = Request::targeted("observe", &key("acme"));
        req.estimate = Some(0.35 + 0.01 * i as f64);
        let resp = daemon.handle_request(req);
        if resp.is_ok() {
            applied += 1;
        } else {
            rejected += 1;
            assert!(
                resp.message
                    .as_ref()
                    .unwrap()
                    .contains("journal append failed"),
                "{:?}",
                resp.message
            );
        }
    }
    assert!(rejected > 0, "the fault plan must have fired");
    assert!(applied > 0, "most appends must still succeed");

    // WAL-before-apply under faults: rejected observes were never applied,
    // so the monitor saw exactly the accepted ones...
    let live_state = to_json(&daemon.snapshot()).unwrap();
    let batches = daemon
        .snapshot()
        .deployments
        .iter()
        .map(|d| d.artifact.monitor.batches_seen)
        .sum::<usize>();
    assert!(batches >= applied);

    // ...and the torn half-records were repaired in place, so recovery
    // from the faulted journal reproduces the live state exactly, with no
    // tail damage left behind.
    let (recovered, report) = Daemon::recover(config(), durability).unwrap();
    assert!(report.tail_defect.is_none(), "{report:?}");
    assert_eq!(to_json(&recovered.snapshot()).unwrap(), live_state);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_bare_json_snapshots_still_load_and_resave_enveloped() {
    let dir = std::env::temp_dir().join(format!("lvpd-legacy-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = serving_artifact();

    // A journal-less daemon builds some state.
    let daemon = Daemon::new(config());
    let mut req = Request::targeted("register", &key("acme"));
    req.artifact = Some(artifact);
    assert!(daemon.handle_request(req).is_ok());
    let mut req = Request::targeted("observe", &key("acme"));
    req.estimate = Some(0.61);
    assert!(daemon.handle_request(req).is_ok());

    // Write the registry the way pre-envelope, pre-journal releases did:
    // bare JSON with no `journal_epoch` field at all.
    let mut json = to_json(&daemon.snapshot()).unwrap();
    assert!(json.contains("\"journal_epoch\":null"));
    json = json.replace("\"journal_epoch\":null,", "");
    let legacy_path = dir.join("legacy-registry.json");
    std::fs::write(&legacy_path, json.as_bytes()).unwrap();

    // Both restore paths ingest it.
    let restored = Daemon::with_state_file(config(), &legacy_path).unwrap();
    assert_eq!(
        to_json(&restored.snapshot()).unwrap(),
        to_json(&daemon.snapshot()).unwrap()
    );
    let (recovered, report) = Daemon::recover(
        config(),
        DurabilityConfig {
            snapshot_path: Some(legacy_path.clone()),
            journal_path: None,
            fsync: Default::default(),
        },
    )
    .unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.snapshot_deployments, 1);

    // Re-saving upgrades the file to the checksummed envelope in place.
    let mut req = Request::new("save");
    req.path = Some(legacy_path.to_string_lossy().into_owned());
    assert!(recovered.handle_request(req).is_ok());
    let bytes = std::fs::read(&legacy_path).unwrap();
    assert!(lvp_core::is_enveloped(&bytes));
    assert!(Daemon::with_state_file(config(), &legacy_path).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}
