//! Integration tests for the AutoML searchers and the simulated cloud
//! service (§6.3).

use lvp_core::{PerformancePredictor, PerformanceValidator, PredictorConfig, ValidatorConfig};
use lvp_corruptions::standard_tabular_suite;
use lvp_models::automl::{auto_sklearn_like, tpot_like};
use lvp_models::cloud::CloudModelService;
use lvp_models::{model_accuracy, BlackBoxModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn automl_models_validate_like_any_black_box() {
    let mut rng = StdRng::seed_from_u64(1);
    let df = lvp::datasets::income(900, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);

    let model: Arc<dyn BlackBoxModel> = Arc::from(auto_sklearn_like(&train, 4, &mut rng).unwrap());
    assert!(model_accuracy(model.as_ref(), &test) > 0.6);

    let gens = standard_tabular_suite(test.schema());
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &ValidatorConfig::fast(0.10),
        &mut rng,
    )
    .unwrap();
    assert!(validator.validate(&serving).unwrap().within_threshold);

    // Catastrophic corruption: null out every categorical column.
    let mut broken = serving.clone();
    for col in broken.schema().categorical_columns() {
        for row in 0..broken.n_rows() {
            broken.column_mut(col).set_null(row);
        }
    }
    let truth = model_accuracy(model.as_ref(), &broken);
    if truth < 0.85 * validator.test_score() {
        assert!(!validator.validate(&broken).unwrap().within_threshold);
    }
}

#[test]
fn tpot_like_model_supports_performance_prediction() {
    let mut rng = StdRng::seed_from_u64(2);
    let df = lvp::datasets::bank(800, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> = Arc::from(tpot_like(&train, 1, 3, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let est = predictor.predict(&serving).unwrap();
    let truth = model_accuracy(model.as_ref(), &serving);
    assert!((est - truth).abs() < 0.2, "estimate {est} vs truth {truth}");
}

#[test]
fn cloud_service_end_to_end_with_predictor() {
    let mut rng = StdRng::seed_from_u64(3);
    let df = lvp::datasets::income(800, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);

    let service = CloudModelService::new();
    let handle = service.train_and_deploy(&train, 7).unwrap();
    let remote: Arc<dyn BlackBoxModel> = Arc::new(service.remote_model(handle).unwrap());

    let before = service.requests_served();
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&remote),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    // Fitting the predictor must have hit the remote endpoint many times
    // (one request per corrupted copy plus the reference scores).
    assert!(service.requests_served() > before + 50);

    let est = predictor.predict(&serving).unwrap();
    let truth = model_accuracy(remote.as_ref(), &serving);
    assert!((est - truth).abs() < 0.2, "estimate {est} vs truth {truth}");
}
