//! Streaming-sketch acceptance tests: a million-row batch flows through
//! `observe_chunk` in fixed memory, and a 4-shard merged fleet report is
//! bit-identical to the single-stream report at any thread count.

use lvp_core::{BatchMonitor, BatchSketch, MonitorPolicy, PerformancePredictor, PredictorConfig};
use lvp_corruptions::standard_tabular_suite;
use lvp_dataframe::toy_frame;
use lvp_linalg::DenseMatrix;
use lvp_models::BlackBoxModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::Arc;

/// A deterministic pseudo-random probability chunk: row `base + i` maps to
/// the same `[p, 1 − p]` pair regardless of how rows are grouped into
/// chunks or shards.
fn output_chunk(base: usize, rows: usize) -> DenseMatrix {
    let data: Vec<f64> = (base..base + rows)
        .flat_map(|i| {
            let p = ((i.wrapping_mul(2_654_435_761)) % 100_003) as f64 / 100_003.0;
            [p, 1.0 - p]
        })
        .collect();
    DenseMatrix::from_vec(rows, 2, data).unwrap()
}

#[test]
fn million_rows_stream_through_in_fixed_memory() {
    const CHUNK: usize = 10_000;
    const CHUNKS: usize = 100; // 1M rows total
    let mut sketch = BatchSketch::new(2);
    sketch.observe_chunk(&output_chunk(0, CHUNK)).unwrap();
    // Footprint after one chunk is the footprint forever: the sketch never
    // allocates per row, so the whole million-row batch costs O(bins).
    let footprint = sketch.approx_bytes();
    for c in 1..CHUNKS {
        sketch
            .observe_chunk(&output_chunk(c * CHUNK, CHUNK))
            .unwrap();
        assert_eq!(sketch.approx_bytes(), footprint, "chunk {c}");
    }
    assert_eq!(sketch.rows(), (CHUNK * CHUNKS) as u64);
    assert!(
        footprint < 64 * 1024,
        "a 2-class sketch must stay under 64 KiB, got {footprint}"
    );
    // The accumulated state featurizes like any batch.
    let features = sketch.prediction_statistics();
    assert_eq!(features.len(), 42);
    assert!(features.iter().all(|v| v.is_finite()));
    // Near-uniform inputs ⇒ the median of class 0 sits near 0.5.
    assert!((features[10] - 0.5).abs() < 0.05, "median {}", features[10]);
}

fn fitted_monitor() -> (BatchMonitor, lvp_dataframe::DataFrame) {
    let df = toy_frame(300);
    let mut rng = StdRng::seed_from_u64(71);
    let (train, rest) = df.split_frac(0.4, &mut rng);
    let (test, serving) = rest.split_frac(0.5, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp_models::train_logistic_regression(&train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor =
        PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng).unwrap();
    let mut monitor = BatchMonitor::new(
        predictor,
        MonitorPolicy {
            threshold: 0.2,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();
    monitor.retain_reference_outputs(&test).unwrap();
    (monitor, serving)
}

#[test]
fn four_shards_merge_bit_identically_to_a_single_stream_at_any_thread_count() {
    let (mut monitor, serving) = fitted_monitor();
    let proba = monitor.predictor().model_outputs(&serving).unwrap();
    let rows: Vec<usize> = (0..proba.rows()).collect();

    // The single-stream reference: every row through one window in order.
    for chunk in rows.chunks(7) {
        monitor
            .observe_output_chunk(&proba.select_rows(chunk))
            .unwrap();
    }
    let single = monitor.finish_window().unwrap();

    // 4 shards, each sketching its quarter concurrently, at 1, 2 and 8
    // threads. Shard results are merged in shard order, but since the
    // merge is a commutative monoid, the schedule cannot matter anyway.
    let shard_rows: Vec<&[usize]> = rows.chunks(rows.len().div_ceil(4)).collect();
    assert_eq!(shard_rows.len(), 4);
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let shards: Vec<BatchSketch> = pool.install(|| {
            (0..shard_rows.len())
                .into_par_iter()
                .map(|i| {
                    let mut s = BatchSketch::new(2);
                    // Different chunking per shard than the reference
                    // stream used — chunk boundaries must be invisible.
                    for chunk in shard_rows[i].chunks(3) {
                        s.observe_chunk(&proba.select_rows(chunk)).unwrap();
                    }
                    s
                })
                .collect()
        });
        let merged = monitor.merge_shard_sketches(&shards).unwrap();
        assert_eq!(
            single.estimate.to_bits(),
            merged.estimate.to_bits(),
            "{threads} threads"
        );
        assert_eq!(
            single.telemetry.per_class_ks, merged.telemetry.per_class_ks,
            "{threads} threads"
        );
    }
}

#[test]
fn merge_order_of_shards_is_irrelevant_bit_for_bit() {
    let (mut monitor, serving) = fitted_monitor();
    let proba = monitor.predictor().model_outputs(&serving).unwrap();
    let rows: Vec<usize> = (0..proba.rows()).collect();
    let mut shards: Vec<BatchSketch> = rows
        .chunks(rows.len().div_ceil(4))
        .map(|r| BatchSketch::from_outputs(&proba.select_rows(r)))
        .collect();
    let forward = monitor.merge_shard_sketches(&shards).unwrap();
    shards.reverse();
    let backward = monitor.merge_shard_sketches(&shards).unwrap();
    assert_eq!(forward.estimate.to_bits(), backward.estimate.to_bits());
    assert_eq!(
        forward.telemetry.per_class_ks,
        backward.telemetry.per_class_ks
    );
}
