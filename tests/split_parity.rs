//! Histogram-vs-exact split parity: same data and seeds, both split
//! methods, the fig2/fig5-style pipelines must reach equivalent decisions
//! — and both split methods must stay bit-identical across thread counts,
//! including through the blocked inference kernels.
//!
//! Run under `RAYON_NUM_THREADS=1` and `=4` in CI; the thread-count tests
//! below additionally pin pools of both sizes against each other inside a
//! single process.

use lvp_core::{PerformancePredictor, PerformanceValidator, PredictorConfig, ValidatorConfig};
use lvp_corruptions::{standard_tabular_suite, ErrorGen, Mixture};
use lvp_linalg::{CsrMatrix, SparseVec};
use lvp_models::forest::{ForestConfig, RandomForestRegressor};
use lvp_models::gbdt::{GbdtClassifier, GbdtConfig};
use lvp_models::tree::SplitMethod;
use lvp_models::{
    model_accuracy, train_model_quick, BlackBoxModel, Classifier, ModelKind, Regressor,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const METHODS: [SplitMethod; 2] = [SplitMethod::Exact, SplitMethod::Histogram];

/// Fig2-style check: the validator accepts clean serving batches and its
/// corrupt/clean decisions agree across split methods on a seeded batch
/// stream.
#[test]
fn validator_decisions_agree_across_split_methods() {
    let mut rng = StdRng::seed_from_u64(41);
    let df = lvp::datasets::heart(1_000, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Xgb, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());

    let validators: Vec<PerformanceValidator> = METHODS
        .iter()
        .map(|&method| {
            let mut config = ValidatorConfig::fast(0.05);
            config.runs_per_generator = 30;
            config.gbdt.split_method = method;
            PerformanceValidator::fit(
                Arc::clone(&model),
                &test,
                &gens,
                &config,
                &mut StdRng::seed_from_u64(42),
            )
            .unwrap()
        })
        .collect();

    for v in &validators {
        assert!(
            v.validate(&serving).unwrap().within_threshold,
            "clean serving data must pass"
        );
    }

    // Alternate clean and corrupted batches. The two validators may split
    // on a batch whose corruption lands right at the decision boundary —
    // but then both must report similar, boundary-straddling confidence.
    // A disagreement where the confidences are far apart would mean the
    // split methods learned genuinely different validators.
    let mixture = Mixture::from_boxes(standard_tabular_suite(serving.schema()));
    let mut batch_rng = StdRng::seed_from_u64(43);
    let total = 12;
    let mut hard_disagreements = Vec::new();
    let mut soft_disagreements = 0;
    for i in 0..total {
        let batch = serving.sample_n(250, &mut batch_rng);
        let batch = if i % 2 == 0 {
            batch
        } else {
            mixture.corrupt(&batch, &mut batch_rng)
        };
        let a = validators[0].validate(&batch).unwrap();
        let b = validators[1].validate(&batch).unwrap();
        if a.within_threshold != b.within_threshold {
            if (a.confidence - b.confidence).abs() < 0.25 {
                soft_disagreements += 1;
            } else {
                hard_disagreements.push(format!("batch {i}: exact {a:?} vs histogram {b:?}"));
            }
        }
    }
    assert!(
        hard_disagreements.is_empty(),
        "confident disagreements: {hard_disagreements:?}"
    );
    assert!(
        soft_disagreements <= 2,
        "{soft_disagreements}/{total} boundary batches split the validators"
    );
}

/// Fig5-style check: the performance predictor's accuracy estimate stays
/// close to the truth — and to its counterpart — under either split
/// method for the meta-forest.
#[test]
fn predictor_estimates_agree_across_split_methods() {
    let mut rng = StdRng::seed_from_u64(51);
    let df = lvp::datasets::income(500, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let truth = model_accuracy(model.as_ref(), &serving);

    let mut estimates = [0.0f64; 2];
    for (slot, &method) in METHODS.iter().enumerate() {
        let mut config = PredictorConfig::fast();
        for cfg in &mut config.forest_grid {
            cfg.split_method = method;
        }
        let predictor = PerformancePredictor::fit(
            Arc::clone(&model),
            &test,
            &gens,
            &config,
            &mut StdRng::seed_from_u64(52),
        )
        .unwrap();
        estimates[slot] = predictor.predict(&serving).unwrap();
        assert!(
            (estimates[slot] - truth).abs() < 0.15,
            "{method:?} estimate {} vs truth {truth}",
            estimates[slot]
        );
    }
    assert!(
        (estimates[0] - estimates[1]).abs() < 0.1,
        "estimate gap {estimates:?}"
    );
}

fn rings(n: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let y = u32::from(rng.gen_bool(0.5));
        let r = if y == 0 {
            rng.gen_range(0.0..0.5)
        } else {
            rng.gen_range(0.8..1.2)
        };
        rows.push(SparseVec::from_pairs(2, vec![(0, r * a.cos()), (1, r * a.sin())]).unwrap());
        labels.push(y);
    }
    (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
}

/// Both split methods must produce bit-identical GBDT models and blocked
/// predictions regardless of thread count.
#[test]
fn gbdt_training_and_blocked_inference_are_thread_count_invariant() {
    for method in METHODS {
        let run = |threads: usize| -> Vec<u64> {
            pool(threads).install(|| {
                let (x, y) = rings(240, 61);
                let cfg = GbdtConfig {
                    split_method: method,
                    ..GbdtConfig::default()
                };
                let model =
                    GbdtClassifier::fit(&x, &y, 2, &cfg, &mut StdRng::seed_from_u64(62)).unwrap();
                model
                    .predict_proba(&x)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
        };
        assert_eq!(run(1), run(4), "{method:?}");
    }
}

/// The forest's parallel tree fitting and blocked `predict` /
/// `predict_per_tree` must be bit-identical across thread counts for both
/// split methods.
#[test]
fn forest_training_and_blocked_inference_are_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(71);
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|_| (0..8).map(|_| rng.gen_range(-2.0..2.0)).collect())
        .collect();
    let x = lvp_linalg::DenseMatrix::from_rows(&rows).unwrap();
    let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1] + r[2].sin()).collect();
    for method in METHODS {
        let run = |threads: usize| -> (Vec<u64>, Vec<u64>) {
            pool(threads).install(|| {
                let cfg = ForestConfig {
                    n_trees: 20,
                    split_method: method,
                    ..ForestConfig::default()
                };
                let model =
                    RandomForestRegressor::fit(&x, &y, &cfg, &mut StdRng::seed_from_u64(72))
                        .unwrap();
                let point = model.predict(&x).iter().map(|v| v.to_bits()).collect();
                let per_tree = model
                    .predict_per_tree(&x)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                (point, per_tree)
            })
        };
        assert_eq!(run(1), run(4), "{method:?}");
    }
}
