//! Statistical contract of the calibrated intervals: empirical coverage of
//! the default 90% interval against *true* serving scores, monotone width
//! shrinkage in the calibration budget, and the pre-v4 → v4 artifact
//! upgrade path.

use lvp_core::{conformal_halfwidth, PerformancePredictor, PredictorArtifact, PredictorConfig};
use lvp_corruptions::standard_tabular_suite;
use lvp_models::{train_model_quick, BlackBoxModel, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::sync::Arc;

/// One fitted serving stack on the income task: the black box model, the
/// fitted predictor and the held-back serving frame.
fn fitted_stack(
    seed: u64,
) -> (
    Arc<dyn BlackBoxModel>,
    PerformancePredictor,
    lvp_dataframe::DataFrame,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let df = lvp::datasets::income(600, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.7, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(train_model_quick(ModelKind::Lr, &train, &mut rng).unwrap());
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    (model, predictor, serving)
}

/// The conformal guarantee, checked end to end: across seeds and across
/// clean *and* corrupted serving batches, the default 90% interval must
/// cover the model's true (label-computed) score at close to the nominal
/// rate. The tolerance (≥ 85%) absorbs finite-sample noise; a calibration
/// regression (wrong rank, residuals from the wrong split, quantiles on
/// the wrong axis) lands far below it.
#[test]
fn ninety_percent_intervals_cover_true_scores_at_nominal_rate() {
    let mut covered = 0usize;
    let mut total = 0usize;
    for seed in [5u64, 6, 7] {
        let (model, predictor, serving) = fitted_stack(seed);
        let gens = standard_tabular_suite(serving.schema());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut check = |batch: &lvp_dataframe::DataFrame| {
            let interval = predictor.predict_interval(batch).unwrap();
            assert!(interval.validate().is_ok());
            let truth = lvp::models::model_accuracy(model.as_ref(), batch);
            total += 1;
            covered += usize::from(interval.contains(truth));
        };
        for _ in 0..5 {
            check(&serving.sample_n(200, &mut rng));
        }
        for gen in &gens {
            let batch = gen.corrupt(&serving.sample_n(200, &mut rng), &mut rng);
            check(&batch);
        }
    }
    let coverage = covered as f64 / total as f64;
    assert!(
        coverage >= 0.85,
        "empirical coverage {coverage:.3} ({covered}/{total}) below 0.85"
    );
}

/// More calibration evidence must never widen the interval: on nested
/// quantile subsamples of a *real* fitted residual pool, the conformal
/// half-width is non-increasing in the calibration budget (the selected
/// rank fraction ⌈(n+1)(1−α)⌉/n decreases toward 1−α as n grows).
#[test]
fn conformal_halfwidth_shrinks_with_the_calibration_budget() {
    let (_, predictor, _) = fitted_stack(5);
    let residuals = predictor
        .calibration_residuals()
        .expect("default config calibrates")
        .to_vec();
    let len = residuals.len();
    assert!(len >= 40, "calibration pool too small: {len}");
    // Quantile subsamples of the same empirical distribution, so only the
    // budget n varies — not the distribution itself.
    let subsample = |n: usize| -> Vec<f64> {
        (1..=n)
            .map(|i| residuals[(i * len / (n + 1)).min(len - 1)])
            .collect()
    };
    // The per-side alpha the interval path actually uses. Budgets double
    // so the selected rank *fraction* ⌈(n+1)(1−α)⌉/(n+1) decreases toward
    // 1−α — guarded below, since an unlucky budget where (n+1)(1−α) is
    // integral can locally break that.
    let alpha = 0.5 * predictor.interval_alpha();
    let budgets: Vec<usize> = [20usize, 40, 80]
        .into_iter()
        .filter(|&n| n <= len)
        .collect();
    let fraction = |n: usize| -> f64 {
        let rank = ((n + 1) as f64 * (1.0 - alpha)).ceil().min(n as f64);
        rank / (n + 1) as f64
    };
    for pair in budgets.windows(2) {
        assert!(fraction(pair[1]) < fraction(pair[0]), "budgets not usable");
    }
    let widths: Vec<f64> = budgets
        .iter()
        .map(|&n| conformal_halfwidth(&subsample(n), alpha))
        .collect();
    for pair in widths.windows(2) {
        assert!(
            pair[1] <= pair[0] + 1e-12,
            "width grew with calibration budget: {widths:?}"
        );
    }
    assert!(widths[0] > 0.0);
}

/// Rewrites a JSON artifact through the serde `Value` tree: drops the
/// fields a pre-v4 artifact never had and stamps the old version number,
/// producing the byte stream an old deployment would actually ship.
fn downgrade(json: &str, version: u32, drop: &[&str]) -> String {
    let mut value: Value = serde_json::from_str(json).unwrap();
    let Value::Obj(entries) = &mut value else {
        panic!("artifact is not a JSON object")
    };
    entries.retain(|(key, _)| !drop.contains(&key.as_str()));
    let slot = entries
        .iter_mut()
        .find(|(key, _)| key == "version")
        .expect("artifact carries a version");
    slot.1 = Value::Num(f64::from(version));
    serde_json::to_string(&value).unwrap()
}

/// Every historical predictor artifact version must still load, and
/// re-saving an upgraded artifact must produce a well-formed v4 stream
/// whose restored predictor behaves identically: the upgrade is a pure
/// format migration, never a behavior change.
#[test]
fn pre_v4_predictor_artifacts_upgrade_and_round_trip_as_v4() {
    let (model, predictor, serving) = fitted_stack(6);
    let batch = {
        let mut rng = StdRng::seed_from_u64(60);
        serving.sample_n(200, &mut rng)
    };
    let v4_json = serde_json::to_string(&predictor.to_artifact()).unwrap();
    let v4_fields = ["interval_alpha", "calibration_residuals"];

    for version in 1..=3u32 {
        // v1 additionally predates the class count and schema fingerprint;
        // dropping them too reproduces that stream faithfully (both are
        // Option fields that default on absence).
        let drop: Vec<&str> = match version {
            1 => v4_fields
                .iter()
                .chain(&["n_classes", "schema_fingerprint"])
                .copied()
                .collect(),
            _ => v4_fields.to_vec(),
        };
        let old_json = downgrade(&v4_json, version, &drop);
        let artifact: PredictorArtifact = serde_json::from_str(&old_json).unwrap();
        assert_eq!(artifact.version, version);
        let restored = PerformancePredictor::from_artifact(artifact, Arc::clone(&model)).unwrap();
        // Point estimates are bit-identical; the interval degrades to
        // quantile-only (no conformal residuals survived).
        assert_eq!(
            restored.predict(&batch).unwrap().to_bits(),
            predictor.predict(&batch).unwrap().to_bits(),
            "v{version} point estimate drifted"
        );
        assert!(restored.calibration_residuals().is_none());

        // Upgrade: re-save → a v4 stream → reload → identical behavior.
        let upgraded_json = serde_json::to_string(&restored.to_artifact()).unwrap();
        let upgraded: PredictorArtifact = serde_json::from_str(&upgraded_json).unwrap();
        assert_eq!(upgraded.version, lvp_core::ARTIFACT_VERSION);
        let reloaded = PerformancePredictor::from_artifact(upgraded, Arc::clone(&model)).unwrap();
        let a = restored.predict_interval(&batch).unwrap();
        let b = reloaded.predict_interval(&batch).unwrap();
        assert_eq!(
            (a.lo.to_bits(), a.point.to_bits(), a.hi.to_bits()),
            (b.lo.to_bits(), b.point.to_bits(), b.hi.to_bits()),
            "v{version} upgrade changed the interval"
        );
    }

    // The calibrated v4 interval is genuinely wider than the quantile-only
    // interval an upgraded pre-v4 artifact can produce.
    let v3_restored = PerformancePredictor::from_artifact(
        serde_json::from_str(&downgrade(&v4_json, 3, &v4_fields)).unwrap(),
        Arc::clone(&model),
    )
    .unwrap();
    assert!(
        v3_restored.predict_interval(&batch).unwrap().width()
            < predictor.predict_interval(&batch).unwrap().width()
    );
}
