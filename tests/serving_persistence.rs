//! Serving-stack persistence: serialize → drop → restore round trips for
//! predictor, validator and monitor, plus the input contract every serving
//! entry point enforces (schema fingerprint + class count).

use lvp::prelude::*;
use lvp_core::{
    from_json, to_json, BatchMonitor, MonitorArtifact, MonitorPolicy, PredictorArtifact,
    ValidatorArtifact, ARTIFACT_VERSION,
};
use lvp_corruptions::standard_tabular_suite;
use lvp_dataframe::{toy_frame, CellValue, ColumnType, DataFrame, DataFrameBuilder, Field};
use lvp_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn setup(seed: u64) -> (Arc<dyn BlackBoxModel>, DataFrame, DataFrame) {
    let df = toy_frame(300);
    let mut rng = StdRng::seed_from_u64(seed);
    let (train, rest) = df.split_frac(0.4, &mut rng);
    let (test, serving) = rest.split_frac(0.5, &mut rng);
    let model: Arc<dyn BlackBoxModel> =
        Arc::from(lvp::models::train_logistic_regression(&train, &mut rng).unwrap());
    (model, test, serving)
}

/// A frame with the same column types as `toy_frame` but a renamed column,
/// so only the schema fingerprint can tell it apart.
fn renamed_schema_frame(n: usize) -> DataFrame {
    let schema = Schema::new(vec![
        Field::new("x_drifted", ColumnType::Numeric),
        Field::new("c", ColumnType::Categorical),
    ])
    .unwrap();
    let mut b = DataFrameBuilder::new(schema, vec!["no".into(), "yes".into()]);
    for i in 0..n as u32 {
        b.push_row(
            vec![
                CellValue::Num(f64::from(i)),
                CellValue::Cat(if i % 2 == 0 { "even" } else { "odd" }.into()),
            ],
            i % 2,
        )
        .unwrap();
    }
    b.finish().unwrap()
}

#[test]
fn full_stack_round_trip_is_bit_identical() {
    let (model, test, serving) = setup(51);
    let mut rng = StdRng::seed_from_u64(52);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &ValidatorConfig::fast(0.1),
        &mut rng,
    )
    .unwrap();
    let mut monitor = BatchMonitor::new(
        PerformancePredictor::from_artifact(predictor.to_artifact(), Arc::clone(&model)).unwrap(),
        MonitorPolicy::default(),
    )
    .unwrap();

    // Pre-crash traffic.
    let mut stream_rng = StdRng::seed_from_u64(53);
    let batches: Vec<DataFrame> = (0..4)
        .map(|_| serving.sample_n(80, &mut stream_rng))
        .collect();
    monitor.observe(&batches[0]).unwrap();
    monitor.observe(&batches[1]).unwrap();

    // Serialize, "crash", restore in a fresh stack.
    let predictor_json = to_json(&predictor.to_artifact()).unwrap();
    let validator_json = to_json(&validator.to_artifact()).unwrap();
    let monitor_json = to_json(&monitor.to_artifact()).unwrap();

    let pa: PredictorArtifact = from_json(&predictor_json).unwrap();
    let va: ValidatorArtifact = from_json(&validator_json).unwrap();
    let ma: MonitorArtifact = from_json(&monitor_json).unwrap();
    assert_eq!(pa.version, ARTIFACT_VERSION);
    assert_eq!(va.version, ARTIFACT_VERSION);
    assert_eq!(ma.version, ARTIFACT_VERSION);

    let restored_predictor = PerformancePredictor::from_artifact(pa, Arc::clone(&model)).unwrap();
    let restored_validator = PerformanceValidator::from_artifact(va, Arc::clone(&model)).unwrap();
    let mut restored_monitor = BatchMonitor::from_artifact(
        ma,
        PerformancePredictor::from_artifact(restored_predictor.to_artifact(), Arc::clone(&model))
            .unwrap(),
    )
    .unwrap();

    for batch in &batches[2..] {
        // Bit-identical estimates and verdicts.
        let live = predictor.predict(batch).unwrap();
        let restored = restored_predictor.predict(batch).unwrap();
        assert_eq!(live.to_bits(), restored.to_bits());
        assert_eq!(
            validator.validate(batch).unwrap(),
            restored_validator.validate(batch).unwrap()
        );
        // Identical monitor reports — batch numbering, EWMA value and
        // debounce state all carried across the restart.
        assert_eq!(
            monitor.observe(batch).unwrap(),
            restored_monitor.observe(batch).unwrap()
        );
    }
    assert_eq!(monitor.alarming(), restored_monitor.alarming());
    assert_eq!(monitor.batches_seen(), restored_monitor.batches_seen());
}

#[test]
fn serving_entry_points_reject_wrong_schema() {
    let (model, test, serving) = setup(61);
    let mut rng = StdRng::seed_from_u64(62);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &ValidatorConfig::fast(0.1),
        &mut rng,
    )
    .unwrap();
    let mut monitor = BatchMonitor::new(
        PerformancePredictor::from_artifact(predictor.to_artifact(), Arc::clone(&model)).unwrap(),
        MonitorPolicy::default(),
    )
    .unwrap();

    let drifted = renamed_schema_frame(50);
    assert!(predictor.predict(&drifted).is_err());
    assert!(validator.validate(&drifted).is_err());
    assert!(monitor.observe(&drifted).is_err());
    // A rejected batch must not corrupt monitor state.
    assert_eq!(monitor.batches_seen(), 0);
    assert!(monitor.history().is_empty());

    // The matching frame still flows through all three.
    assert!(predictor.predict(&serving).is_ok());
    assert!(validator.validate(&serving).is_ok());
    assert!(monitor.observe(&serving).is_ok());
}

#[test]
fn serving_entry_points_reject_wrong_class_count() {
    let (model, test, _) = setup(71);
    let mut rng = StdRng::seed_from_u64(72);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let validator = PerformanceValidator::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &ValidatorConfig::fast(0.1),
        &mut rng,
    )
    .unwrap();

    // The fitted model is binary; hand the raw-output entry points a
    // three-class matrix. Must be Err (never a panic, never a silently
    // truncated featurization) in debug and release builds alike.
    let wide = DenseMatrix::from_vec(6, 3, vec![1.0 / 3.0; 18]).unwrap();
    assert!(predictor.predict_from_outputs(&wide).is_err());
    assert!(validator.validate_outputs(&wide).is_err());
    assert!(validator.featurize(&wide).is_err());
}

#[test]
fn restored_monitor_alarms_on_schedule_across_restart() {
    let (model, test, _) = setup(81);
    let mut rng = StdRng::seed_from_u64(82);
    let gens = standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        Arc::clone(&model),
        &test,
        &gens,
        &PredictorConfig::fast(),
        &mut rng,
    )
    .unwrap();
    let policy = MonitorPolicy {
        threshold: 0.2,
        consecutive_violations: 3,
        ewma_alpha: 1.0,
        ..MonitorPolicy::default()
    };
    let mut monitor = BatchMonitor::new(predictor, policy).unwrap();
    monitor.observe_estimate(0.0);
    monitor.observe_estimate(0.0);
    assert!(!monitor.alarming());

    // Crash between the second and third violation.
    let artifact = monitor.to_artifact();
    let predictor2 =
        PerformancePredictor::from_artifact(monitor.predictor().to_artifact(), Arc::clone(&model))
            .unwrap();
    let mut restored = BatchMonitor::from_artifact(artifact, predictor2).unwrap();

    // Without persisted debounce state this third violation would only be
    // streak #1; with it, the alarm fires exactly on schedule.
    let report = restored.observe_estimate(0.0);
    assert!(report.alarm);
    assert_eq!(report.batch_index, 2);
}
