//! End-to-end resilience: the predictor-train + monitoring pipeline must
//! survive a heavily fault-injected remote serving path, degrade (never
//! abort) on terminal failures, and stay bit-reproducible regardless of
//! how the work is scheduled across threads.

use lvp::prelude::*;
use lvp_core::BatchReport;
use lvp_models::cloud::{CloudModelService, FaultPlan, FaultStats};
use lvp_models::BreakerConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// ≥ 20% retryable transport faults plus corrupted/truncated payloads,
/// and a slice of poisoned keys that fail on every attempt.
fn chaos_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(0x00FA_11ED);
    plan.transient = 0.15;
    plan.rate_limited = 0.10;
    plan.corrupted = 0.10;
    plan.truncated = 0.05;
    plan.poisoned = 0.05;
    plan.max_faults_per_key = 3;
    plan
}

/// Runs train + 50-batch monitoring against a flaky cloud endpoint and
/// returns the monitor history plus the service's fault ledger.
fn run_chaos_pipeline(parallel: bool) -> (Vec<BatchReport>, FaultStats) {
    let mut rng = StdRng::seed_from_u64(77);
    let df = lvp::datasets::income(900, &mut rng);
    let (source, serving) = df.split_frac(0.5, &mut rng);
    let (train, test) = source.split_frac(0.75, &mut rng);

    let service = CloudModelService::new();
    let handle = service.train_and_deploy(&train, 42).unwrap();
    let clock = VirtualClock::new();
    service.install_fault_plan_with_clock(chaos_plan(), Some(clock.clone()));

    let resilient = ResilientModel::with_clock(
        Arc::new(service.remote_model(handle).unwrap()),
        ResilienceConfig {
            max_attempts: 6,
            breaker: BreakerConfig {
                failure_threshold: 1_000,
                ..BreakerConfig::default()
            },
            ..ResilienceConfig::default()
        },
        clock,
    );
    let model: Arc<dyn BlackBoxModel> = Arc::new(resilient);

    let errors = lvp::corruptions::standard_tabular_suite(test.schema());
    let predictor = PerformancePredictor::fit(
        model,
        &test,
        &errors,
        &PredictorConfig {
            min_batch_survival: 0.8,
            parallel,
            ..PredictorConfig::fast()
        },
        &mut rng,
    )
    .expect("fit completes despite ≥20% injected faults");

    let mut monitor = BatchMonitor::new(
        predictor,
        MonitorPolicy {
            threshold: 0.2,
            consecutive_violations: 2,
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        },
    )
    .unwrap();
    monitor.retain_reference_outputs(&test).unwrap();

    for _ in 0..50 {
        let batch = serving.sample_n(80, &mut rng);
        monitor
            .observe(&batch)
            .expect("serving failures degrade the batch, never abort the run");
    }
    (monitor.history().to_vec(), service.fault_stats())
}

#[test]
fn pipeline_survives_heavy_fault_injection() {
    let (history, stats) = run_chaos_pipeline(true);

    assert_eq!(history.len(), 50);
    let total = stats.total_faults() + stats.clean + stats.slow;
    assert!(
        stats.total_faults() as f64 >= 0.2 * total as f64,
        "the plan must actually stress the pipeline: {stats:?}"
    );

    // Degraded reports withhold the estimate and record why, and the
    // smoothed estimate carries the last healthy value forward.
    let degraded: Vec<&BatchReport> = history.iter().filter(|r| r.degraded).collect();
    assert!(
        !degraded.is_empty(),
        "poisoned keys must surface as degraded reports"
    );
    assert!(degraded.len() < 25, "most batches must survive");
    for report in &degraded {
        assert!(report.estimate.is_nan());
        assert!(report.smoothed.is_finite());
        assert!(report.degrade_reason.is_some());
        assert!(!report.alarm, "infrastructure faults are not model alarms");
    }

    // EWMA and the violation streak ignore degraded batches entirely: each
    // degraded report repeats its predecessor's smoothed state verbatim.
    for pair in history.windows(2) {
        if pair[1].degraded {
            assert_eq!(
                pair[1].smoothed.to_bits(),
                pair[0].smoothed.to_bits(),
                "EWMA must not move on a degraded batch"
            );
        }
    }

    // Healthy batches still produce calibrated estimates.
    for report in history.iter().filter(|r| !r.degraded) {
        assert!(report.estimate.is_finite());
        assert!((0.0..=1.0).contains(&report.estimate));
        assert!(report.degrade_reason.is_none());
    }
}

#[test]
fn chaos_pipeline_is_reproducible_across_schedules() {
    let (parallel, stats_par) = run_chaos_pipeline(true);
    let (sequential, stats_seq) = run_chaos_pipeline(false);

    // The fault schedule keys on request *content*, so the thread
    // interleaving changes neither which batches degrade nor any estimate.
    assert_eq!(parallel.len(), sequential.len());
    for (a, b) in parallel.iter().zip(&sequential) {
        assert_eq!(a.degraded, b.degraded);
        assert_eq!(a.degrade_reason, b.degrade_reason);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.smoothed.to_bits(), b.smoothed.to_bits());
        assert_eq!(a.alarm, b.alarm);
    }
    assert_eq!(stats_par, stats_seq);
}
