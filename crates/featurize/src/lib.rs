//! Feature pipelines turning relational [`DataFrame`]s into sparse matrices.
//!
//! Mirrors the paper's featurization (§6 "Datasets"): numeric attributes are
//! standardized, categorical attributes one-hot encoded, textual attributes
//! hashed as word-level n-grams into a large sparse vector, and image
//! attributes flattened to pixel intensities. Encoders are *fitted on
//! training data only* and later applied to unseen (possibly corrupted)
//! serving data — exactly the discipline a scikit-learn `Pipeline` enforces.
//!
//! Missing-value semantics (these are what give the paper's error generators
//! their bite):
//!
//! * a missing numeric cell imputes to the training mean (0 after scaling),
//! * a missing or *unseen* categorical value one-hot encodes to all zeros,
//! * missing text hashes to an empty vector,
//! * a missing image becomes an all-zero pixel block.
//!
//! [`DataFrame`]: lvp_dataframe::DataFrame

mod cache;
mod encoders;
mod hashing;
mod pipeline;

pub use cache::{CacheStats, EncodingCache, ShardedEncodingCache, DEFAULT_CACHE_CAPACITY};
pub use encoders::{HashingTextEncoder, ImageEncoder, NumericScaler, OneHotEncoder};
pub use hashing::{fnv1a64, tokenize, word_ngrams};
pub use pipeline::{FeaturePipeline, PipelineConfig};
