//! Tokenization and feature hashing for text attributes.

/// 64-bit FNV-1a hash, the bucket function of the hashing vectorizer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Splits text into lowercase word tokens on non-alphanumeric boundaries.
///
/// Non-ASCII alphabetic characters are kept (encoding-error corruptions rely
/// on `É` ≠ `E` producing different tokens, as in the paper's example).
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Produces word-level n-grams for n in `1..=max_n`, joined by a space.
pub fn word_ngrams(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut grams = Vec::new();
    for n in 1..=max_n {
        if n > tokens.len() {
            break;
        }
        for window in tokens.windows(n) {
            grams.push(window.join(" "));
        }
    }
    grams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_distinguishes_inputs_and_is_deterministic() {
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        // Known FNV-1a vector: empty string hashes to the offset basis.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Hello, World!!"),
            vec!["hello".to_string(), "world".to_string()]
        );
    }

    #[test]
    fn tokenize_keeps_digits_and_unicode() {
        assert_eq!(tokenize("h3110 Éclair"), vec!["h3110", "éclair"]);
    }

    #[test]
    fn tokenize_empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ...").is_empty());
    }

    #[test]
    fn ngrams_cover_unigrams_and_bigrams() {
        let toks: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let grams = word_ngrams(&toks, 2);
        assert_eq!(grams, vec!["a", "b", "c", "a b", "b c"]);
    }

    #[test]
    fn ngrams_with_short_input() {
        let toks: Vec<String> = ["solo".to_string()].to_vec();
        assert_eq!(word_ngrams(&toks, 2), vec!["solo"]);
        assert!(word_ngrams(&[], 2).is_empty());
    }
}
