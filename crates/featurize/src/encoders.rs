//! Per-column encoders. Each encoder is fitted on a training column and then
//! emits features for any cell into a caller-provided pair buffer with a
//! fixed column offset.

use crate::hashing::{fnv1a64, tokenize, word_ngrams};
use lvp_dataframe::{Column, ImageData};
use lvp_linalg::ColumnBlock;
use std::collections::BTreeMap;

/// Standardizes a numeric column to zero mean and unit variance.
///
/// Missing values impute to the training mean, i.e. 0 after scaling — the
/// same behaviour as a `SimpleImputer(mean) → StandardScaler` pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericScaler {
    mean: f64,
    std: f64,
}

impl NumericScaler {
    /// Fits mean/std on the non-missing values of a training column.
    pub fn fit(values: &[Option<f64>]) -> Self {
        let present: Vec<f64> = values
            .iter()
            .filter_map(|v| *v)
            .filter(|v| v.is_finite())
            .collect();
        if present.is_empty() {
            return Self {
                mean: 0.0,
                std: 1.0,
            };
        }
        let mean = present.iter().sum::<f64>() / present.len() as f64;
        let var = present.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / present.len() as f64;
        let std = if var > 0.0 { var.sqrt() } else { 1.0 };
        Self { mean, std }
    }

    /// Number of output dimensions (always 1).
    pub fn width(&self) -> usize {
        1
    }

    /// Training mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Training standard deviation (1.0 for constant columns).
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Encodes one cell into `(offset, value)` pairs.
    pub fn encode(&self, value: Option<f64>, offset: u32, out: &mut Vec<(u32, f64)>) {
        if let Some(v) = value {
            if v.is_finite() {
                let scaled = (v - self.mean) / self.std;
                if scaled != 0.0 {
                    out.push((offset, scaled));
                }
            }
        }
        // Missing / non-finite → imputed to mean → exactly 0 after scaling.
    }
}

/// One-hot encodes a categorical column over the categories observed during
/// fitting. Unseen categories and missing values produce a zero vector.
#[derive(Debug, Clone, PartialEq)]
pub struct OneHotEncoder {
    categories: BTreeMap<String, u32>,
}

impl OneHotEncoder {
    /// Collects the category dictionary from a training column.
    pub fn fit(values: &[Option<String>]) -> Self {
        let mut categories = BTreeMap::new();
        for v in values.iter().flatten() {
            let next = categories.len() as u32;
            categories.entry(v.clone()).or_insert(next);
        }
        Self { categories }
    }

    /// Number of output dimensions (one per observed category).
    pub fn width(&self) -> usize {
        self.categories.len()
    }

    /// Whether `value` was observed during fitting.
    pub fn knows(&self, value: &str) -> bool {
        self.categories.contains_key(value)
    }

    /// Encodes one cell into `(offset + category_index, 1.0)`.
    pub fn encode(&self, value: Option<&str>, offset: u32, out: &mut Vec<(u32, f64)>) {
        if let Some(v) = value {
            if let Some(&idx) = self.categories.get(v) {
                out.push((offset + idx, 1.0));
            }
        }
    }
}

/// Hashes word-level n-grams of a text cell into `n_buckets` dimensions with
/// L2-normalized term counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HashingTextEncoder {
    n_buckets: u32,
    max_ngram: usize,
}

impl HashingTextEncoder {
    /// Creates an encoder with the given bucket count and maximum n-gram
    /// order. Hashing needs no fitting.
    pub fn new(n_buckets: u32, max_ngram: usize) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        assert!(max_ngram >= 1, "need at least unigrams");
        Self {
            n_buckets,
            max_ngram,
        }
    }

    /// Number of output dimensions.
    pub fn width(&self) -> usize {
        self.n_buckets as usize
    }

    /// Encodes one text cell.
    pub fn encode(&self, value: Option<&str>, offset: u32, out: &mut Vec<(u32, f64)>) {
        let Some(text) = value else { return };
        let tokens = tokenize(text);
        if tokens.is_empty() {
            return;
        }
        let grams = word_ngrams(&tokens, self.max_ngram);
        let mut counts: BTreeMap<u32, f64> = BTreeMap::new();
        for g in &grams {
            let bucket = (fnv1a64(g.as_bytes()) % u64::from(self.n_buckets)) as u32;
            *counts.entry(bucket).or_insert(0.0) += 1.0;
        }
        let norm = counts.values().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            return;
        }
        for (bucket, count) in counts {
            out.push((offset + bucket, count / norm));
        }
    }
}

/// Flattens grayscale images to raw pixel intensities. The image geometry is
/// fixed at fit time; images of a different size (or missing images) encode
/// to zeros for the out-of-range part.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageEncoder {
    width_px: usize,
    height_px: usize,
}

impl ImageEncoder {
    /// Fixes the geometry from the first present training image.
    pub fn fit(values: &[Option<ImageData>]) -> Self {
        let (w, h) = values
            .iter()
            .flatten()
            .map(|img| (img.width, img.height))
            .next()
            .unwrap_or((0, 0));
        Self {
            width_px: w,
            height_px: h,
        }
    }

    /// Number of output dimensions (`width × height` pixels).
    pub fn width(&self) -> usize {
        self.width_px * self.height_px
    }

    /// Image geometry `(width, height)` fixed at fit time.
    pub fn geometry(&self) -> (usize, usize) {
        (self.width_px, self.height_px)
    }

    /// Encodes one image cell as its nonzero pixels.
    pub fn encode(&self, value: Option<&ImageData>, offset: u32, out: &mut Vec<(u32, f64)>) {
        let Some(img) = value else { return };
        for y in 0..self.height_px {
            for x in 0..self.width_px {
                let v = img.get(x, y);
                if v != 0.0 && v.is_finite() {
                    out.push((offset + (y * self.width_px + x) as u32, v));
                }
            }
        }
    }
}

/// Encoder for one schema column; dispatches on the column type.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ColumnEncoder {
    Numeric(NumericScaler),
    Categorical(OneHotEncoder),
    Text(HashingTextEncoder),
    Image(ImageEncoder),
}

impl ColumnEncoder {
    pub(crate) fn width(&self) -> usize {
        match self {
            ColumnEncoder::Numeric(e) => e.width(),
            ColumnEncoder::Categorical(e) => e.width(),
            ColumnEncoder::Text(e) => e.width(),
            ColumnEncoder::Image(e) => e.width(),
        }
    }

    pub(crate) fn encode_cell(
        &self,
        column: &Column,
        row: usize,
        offset: u32,
        out: &mut Vec<(u32, f64)>,
    ) {
        match (self, column) {
            (ColumnEncoder::Numeric(e), Column::Numeric(v)) => e.encode(v[row], offset, out),
            (ColumnEncoder::Categorical(e), Column::Categorical(v)) => {
                e.encode(v[row].as_deref(), offset, out)
            }
            (ColumnEncoder::Text(e), Column::Text(v)) => e.encode(v[row].as_deref(), offset, out),
            (ColumnEncoder::Image(e), Column::Image(v)) => e.encode(v[row].as_ref(), offset, out),
            // Type mismatches cannot occur for frames that share the schema
            // the pipeline was fitted on; treat defensively as missing.
            _ => {}
        }
    }

    /// Encodes a whole column into a [`ColumnBlock`] with block-local
    /// indices in `[0, width)`.
    ///
    /// Row `r` of the block holds exactly what [`Self::encode_cell`] emits
    /// for `(column, r)` at offset 0 — the column-major counterpart of the
    /// row-major path, and what [`crate::EncodingCache`] stores.
    pub(crate) fn encode_column(&self, column: &Column) -> ColumnBlock {
        let mut block = ColumnBlock::with_capacity(self.width(), column.len(), column.len());
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        let push = |pairs: &mut Vec<(u32, f64)>, block: &mut ColumnBlock| {
            block
                .push_row_pairs(pairs)
                .expect("encoders emit indices within their declared width");
        };
        match (self, column) {
            (ColumnEncoder::Numeric(e), Column::Numeric(v)) => {
                for &cell in v {
                    e.encode(cell, 0, &mut pairs);
                    push(&mut pairs, &mut block);
                }
            }
            (ColumnEncoder::Categorical(e), Column::Categorical(v)) => {
                for cell in v {
                    e.encode(cell.as_deref(), 0, &mut pairs);
                    push(&mut pairs, &mut block);
                }
            }
            (ColumnEncoder::Text(e), Column::Text(v)) => {
                for cell in v {
                    e.encode(cell.as_deref(), 0, &mut pairs);
                    push(&mut pairs, &mut block);
                }
            }
            (ColumnEncoder::Image(e), Column::Image(v)) => {
                for cell in v {
                    e.encode(cell.as_ref(), 0, &mut pairs);
                    push(&mut pairs, &mut block);
                }
            }
            // Mirror `encode_cell`'s defensive missing-value semantics.
            _ => {
                for _ in 0..column.len() {
                    block.push_empty_row();
                }
            }
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaler_standardizes() {
        let s = NumericScaler::fit(&[Some(1.0), Some(3.0)]);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.std(), 1.0);
        let mut out = vec![];
        s.encode(Some(3.0), 5, &mut out);
        assert_eq!(out, vec![(5, 1.0)]);
    }

    #[test]
    fn scaler_handles_constant_column() {
        let s = NumericScaler::fit(&[Some(7.0), Some(7.0)]);
        assert_eq!(s.std(), 1.0);
        let mut out = vec![];
        s.encode(Some(7.0), 0, &mut out);
        assert!(out.is_empty()); // scaled value is exactly 0
    }

    #[test]
    fn scaler_imputes_missing_to_zero() {
        let s = NumericScaler::fit(&[Some(1.0), Some(3.0)]);
        let mut out = vec![];
        s.encode(None, 0, &mut out);
        assert!(out.is_empty());
        s.encode(Some(f64::NAN), 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn scaler_ignores_nonfinite_during_fit() {
        let s = NumericScaler::fit(&[Some(1.0), Some(f64::INFINITY), Some(3.0)]);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn scaler_all_missing_column() {
        let s = NumericScaler::fit(&[None, None]);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 1.0);
    }

    #[test]
    fn one_hot_encodes_known_categories() {
        let e = OneHotEncoder::fit(&[Some("a".into()), Some("b".into()), Some("a".into())]);
        assert_eq!(e.width(), 2);
        let mut out = vec![];
        e.encode(Some("b"), 10, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, 1.0);
    }

    #[test]
    fn one_hot_unseen_category_is_zero_vector() {
        let e = OneHotEncoder::fit(&[Some("a".into())]);
        let mut out = vec![];
        e.encode(Some("zzz"), 0, &mut out);
        assert!(out.is_empty());
        e.encode(None, 0, &mut out);
        assert!(out.is_empty());
        assert!(!e.knows("zzz"));
        assert!(e.knows("a"));
    }

    #[test]
    fn one_hot_category_ids_are_deterministic() {
        let e1 = OneHotEncoder::fit(&[Some("x".into()), Some("y".into())]);
        let e2 = OneHotEncoder::fit(&[Some("x".into()), Some("y".into())]);
        assert_eq!(e1, e2);
    }

    #[test]
    fn hashing_encoder_is_l2_normalized() {
        let e = HashingTextEncoder::new(64, 2);
        let mut out = vec![];
        e.encode(Some("the cat sat"), 0, &mut out);
        let norm: f64 = out.iter().map(|(_, v)| v * v).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hashing_encoder_empty_text_is_empty() {
        let e = HashingTextEncoder::new(64, 2);
        let mut out = vec![];
        e.encode(Some("..."), 0, &mut out);
        assert!(out.is_empty());
        e.encode(None, 0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn hashing_encoder_changed_spelling_changes_buckets() {
        let e = HashingTextEncoder::new(4096, 1);
        let mut a = vec![];
        let mut b = vec![];
        e.encode(Some("hello world"), 0, &mut a);
        e.encode(Some("h3110 w041d"), 0, &mut b);
        let ia: Vec<u32> = a.iter().map(|p| p.0).collect();
        let ib: Vec<u32> = b.iter().map(|p| p.0).collect();
        assert_ne!(ia, ib);
    }

    #[test]
    fn image_encoder_flattens_pixels() {
        let mut img = ImageData::zeros(2, 2);
        img.set(1, 0, 0.5);
        img.set(0, 1, 0.25);
        let e = ImageEncoder::fit(&[Some(img.clone())]);
        assert_eq!(e.width(), 4);
        let mut out = vec![];
        e.encode(Some(&img), 0, &mut out);
        assert_eq!(out, vec![(1, 0.5), (2, 0.25)]);
    }

    #[test]
    fn image_encoder_missing_image_is_zeros() {
        let e = ImageEncoder::fit(&[Some(ImageData::zeros(2, 2))]);
        let mut out = vec![];
        e.encode(None, 0, &mut out);
        assert!(out.is_empty());
    }
}
