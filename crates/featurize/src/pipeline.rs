//! The fitted feature pipeline: schema-driven concatenation of per-column
//! encoders.

use crate::cache::EncodingCache;
use crate::encoders::ColumnEncoder;
use crate::{HashingTextEncoder, ImageEncoder, NumericScaler, OneHotEncoder};
use lvp_dataframe::{ColumnType, DataFrame};
use lvp_linalg::{ColumnBlock, CsrBuilder, CsrMatrix};
use std::sync::Arc;

/// Configuration for fitting a [`FeaturePipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Buckets for the hashing vectorizer applied to text columns.
    pub text_buckets: u32,
    /// Maximum word n-gram order for text columns.
    pub max_ngram: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            text_buckets: 2048,
            max_ngram: 2,
        }
    }
}

/// A feature pipeline fitted on training data.
///
/// `transform` may afterwards be applied to any frame sharing the training
/// schema — including corrupted serving data, which is the whole point: the
/// encoders' missing/unseen semantics determine how data errors propagate
/// into the model's feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturePipeline {
    encoders: Vec<ColumnEncoder>,
    offsets: Vec<u32>,
    total_width: usize,
}

impl FeaturePipeline {
    /// Fits one encoder per schema column on the training frame.
    pub fn fit(train: &DataFrame, config: &PipelineConfig) -> Self {
        let mut encoders = Vec::with_capacity(train.n_cols());
        for (i, field) in train.schema().fields().iter().enumerate() {
            let col = train.column(i);
            let enc = match field.ty {
                ColumnType::Numeric => ColumnEncoder::Numeric(NumericScaler::fit(
                    col.as_numeric().expect("schema-validated column"),
                )),
                ColumnType::Categorical => ColumnEncoder::Categorical(OneHotEncoder::fit(
                    col.as_categorical().expect("schema-validated column"),
                )),
                ColumnType::Text => ColumnEncoder::Text(HashingTextEncoder::new(
                    config.text_buckets,
                    config.max_ngram,
                )),
                ColumnType::Image => ColumnEncoder::Image(ImageEncoder::fit(
                    col.as_image().expect("schema-validated column"),
                )),
            };
            encoders.push(enc);
        }
        let mut offsets = Vec::with_capacity(encoders.len());
        let mut acc: u32 = 0;
        for e in &encoders {
            offsets.push(acc);
            acc += e.width() as u32;
        }
        Self {
            encoders,
            offsets,
            total_width: acc as usize,
        }
    }

    /// Total dimensionality of the output feature space.
    pub fn width(&self) -> usize {
        self.total_width
    }

    /// Feature-space offset of column `i`'s block.
    pub fn offset_of(&self, i: usize) -> u32 {
        self.offsets[i]
    }

    /// Transforms a frame into a CSR feature matrix, one row per tuple.
    ///
    /// Row-major fallback path: encodes cell by cell into one reused scratch
    /// buffer and streams rows straight into a [`CsrBuilder`], so the only
    /// per-call allocations are the output matrix's own arrays.
    pub fn transform(&self, df: &DataFrame) -> CsrMatrix {
        let mut builder = CsrBuilder::with_capacity(self.total_width, df.n_rows(), df.n_rows());
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for r in 0..df.n_rows() {
            for (i, enc) in self.encoders.iter().enumerate() {
                enc.encode_cell(df.column(i), r, self.offsets[i], &mut pairs);
            }
            builder
                .push_row_pairs(&mut pairs)
                .expect("encoder offsets stay in bounds");
        }
        builder.finish()
    }

    /// Column-major transform that reuses cached per-column encodings.
    ///
    /// Each column is encoded as a position-independent [`ColumnBlock`] and
    /// looked up in `cache` by `(column_index, ColumnId)`; columns whose
    /// storage is shared with an already-encoded frame (copy-on-write copies
    /// that only touched a few columns) are served from the cache instead of
    /// being re-encoded. The assembled matrix is bit-identical to
    /// [`Self::transform`] on the same frame: encoders emit sorted, unique,
    /// in-range pairs per cell, and per-column feature ranges are disjoint
    /// and increasing, so per-column concatenation equals the row-major
    /// merge.
    ///
    /// The cache must be used with exactly one fitted pipeline: the
    /// `column_index` key half identifies the encoder fitted for that
    /// position.
    pub fn transform_cached(&self, df: &DataFrame, cache: &mut EncodingCache) -> CsrMatrix {
        let blocks: Vec<Arc<ColumnBlock>> = (0..df.n_cols())
            .map(|i| {
                cache.get_or_encode(i, df.column_id(i), &df.column_shared(i), || {
                    self.encoders[i].encode_column(df.column(i))
                })
            })
            .collect();
        let pairs: Vec<(u32, &ColumnBlock)> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (self.offsets[i], b.as_ref()))
            .collect();
        CsrMatrix::hstack_blocks(df.n_rows(), self.total_width, &pairs)
            .expect("blocks carry one row per tuple and fitted offsets are disjoint")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;

    #[test]
    fn pipeline_width_covers_all_columns() {
        let df = toy_frame(10);
        let p = FeaturePipeline::fit(&df, &PipelineConfig::default());
        // 1 numeric dim + 2 one-hot categories ("even"/"odd").
        assert_eq!(p.width(), 3);
        assert_eq!(p.offset_of(0), 0);
        assert_eq!(p.offset_of(1), 1);
    }

    #[test]
    fn transform_produces_expected_shape() {
        let df = toy_frame(8);
        let p = FeaturePipeline::fit(&df, &PipelineConfig::default());
        let x = p.transform(&df);
        assert_eq!(x.rows(), 8);
        assert_eq!(x.cols(), 3);
    }

    #[test]
    fn transform_on_unseen_data_keeps_dimensionality() {
        let train = toy_frame(10);
        let serve = toy_frame(4);
        let p = FeaturePipeline::fit(&train, &PipelineConfig::default());
        let x = p.transform(&serve);
        assert_eq!(x.cols(), p.width());
        assert_eq!(x.rows(), 4);
    }

    #[test]
    fn missing_cells_encode_to_zero_rows() {
        let mut df = toy_frame(3);
        df.column_mut(0).set_null(1);
        df.column_mut(1).set_null(1);
        let p = FeaturePipeline::fit(&toy_frame(10), &PipelineConfig::default());
        let x = p.transform(&df);
        let (idx, _) = x.row(1);
        assert!(idx.is_empty(), "fully-missing row must encode to zeros");
    }

    #[test]
    fn transform_cached_matches_cold_transform() {
        let train = toy_frame(10);
        let p = FeaturePipeline::fit(&train, &PipelineConfig::default());
        let mut cache = EncodingCache::new();
        // Cold pass on the training frame itself.
        assert_eq!(p.transform_cached(&train, &mut cache), p.transform(&train));
        // A CoW copy with one corrupted column: untouched columns hit.
        let mut copy = train.clone();
        copy.column_mut(1).set_null(3);
        assert_eq!(p.transform_cached(&copy, &mut cache), p.transform(&copy));
        assert_eq!(cache.hits(), 1, "column 0 is shared with the cached frame");
        assert_eq!(cache.misses(), 3, "2 cold columns + the rewritten column");
    }

    #[test]
    fn transform_cached_serves_unchanged_frame_entirely_from_cache() {
        let train = toy_frame(6);
        let p = FeaturePipeline::fit(&train, &PipelineConfig::default());
        let mut cache = EncodingCache::new();
        let first = p.transform_cached(&train, &mut cache);
        let second = p.transform_cached(&train.clone(), &mut cache);
        assert_eq!(first, second);
        assert_eq!(cache.hits(), train.n_cols() as u64);
    }

    #[test]
    fn standardization_uses_training_statistics() {
        let train = toy_frame(11); // x: 0..=10, mean 5
        let p = FeaturePipeline::fit(&train, &PipelineConfig::default());
        let x = p.transform(&train);
        // Column 0 of row 5 holds (5 - mean)/std == 0 → stored as implicit zero.
        let (idx, _) = x.row(5);
        assert!(!idx.contains(&0));
        // Row 0 holds a negative standardized value.
        let dense = x.to_dense();
        assert!(dense.get(0, 0) < 0.0);
    }
}
