//! The fitted feature pipeline: schema-driven concatenation of per-column
//! encoders.

use crate::encoders::ColumnEncoder;
use crate::{HashingTextEncoder, ImageEncoder, NumericScaler, OneHotEncoder};
use lvp_dataframe::{ColumnType, DataFrame};
use lvp_linalg::{CsrMatrix, SparseVec};

/// Configuration for fitting a [`FeaturePipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Buckets for the hashing vectorizer applied to text columns.
    pub text_buckets: u32,
    /// Maximum word n-gram order for text columns.
    pub max_ngram: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            text_buckets: 2048,
            max_ngram: 2,
        }
    }
}

/// A feature pipeline fitted on training data.
///
/// `transform` may afterwards be applied to any frame sharing the training
/// schema — including corrupted serving data, which is the whole point: the
/// encoders' missing/unseen semantics determine how data errors propagate
/// into the model's feature space.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturePipeline {
    encoders: Vec<ColumnEncoder>,
    offsets: Vec<u32>,
    total_width: usize,
}

impl FeaturePipeline {
    /// Fits one encoder per schema column on the training frame.
    pub fn fit(train: &DataFrame, config: &PipelineConfig) -> Self {
        let mut encoders = Vec::with_capacity(train.n_cols());
        for (i, field) in train.schema().fields().iter().enumerate() {
            let col = train.column(i);
            let enc = match field.ty {
                ColumnType::Numeric => ColumnEncoder::Numeric(NumericScaler::fit(
                    col.as_numeric().expect("schema-validated column"),
                )),
                ColumnType::Categorical => ColumnEncoder::Categorical(OneHotEncoder::fit(
                    col.as_categorical().expect("schema-validated column"),
                )),
                ColumnType::Text => ColumnEncoder::Text(HashingTextEncoder::new(
                    config.text_buckets,
                    config.max_ngram,
                )),
                ColumnType::Image => ColumnEncoder::Image(ImageEncoder::fit(
                    col.as_image().expect("schema-validated column"),
                )),
            };
            encoders.push(enc);
        }
        let mut offsets = Vec::with_capacity(encoders.len());
        let mut acc: u32 = 0;
        for e in &encoders {
            offsets.push(acc);
            acc += e.width() as u32;
        }
        Self {
            encoders,
            offsets,
            total_width: acc as usize,
        }
    }

    /// Total dimensionality of the output feature space.
    pub fn width(&self) -> usize {
        self.total_width
    }

    /// Feature-space offset of column `i`'s block.
    pub fn offset_of(&self, i: usize) -> u32 {
        self.offsets[i]
    }

    /// Transforms a frame into a CSR feature matrix, one row per tuple.
    pub fn transform(&self, df: &DataFrame) -> CsrMatrix {
        let mut rows = Vec::with_capacity(df.n_rows());
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        for r in 0..df.n_rows() {
            pairs.clear();
            for (i, enc) in self.encoders.iter().enumerate() {
                enc.encode_cell(df.column(i), r, self.offsets[i], &mut pairs);
            }
            rows.push(
                SparseVec::from_pairs(self.total_width, pairs.clone())
                    .expect("encoder offsets stay in bounds"),
            );
        }
        CsrMatrix::from_sparse_rows(&rows).expect("uniform row dimensionality")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;

    #[test]
    fn pipeline_width_covers_all_columns() {
        let df = toy_frame(10);
        let p = FeaturePipeline::fit(&df, &PipelineConfig::default());
        // 1 numeric dim + 2 one-hot categories ("even"/"odd").
        assert_eq!(p.width(), 3);
        assert_eq!(p.offset_of(0), 0);
        assert_eq!(p.offset_of(1), 1);
    }

    #[test]
    fn transform_produces_expected_shape() {
        let df = toy_frame(8);
        let p = FeaturePipeline::fit(&df, &PipelineConfig::default());
        let x = p.transform(&df);
        assert_eq!(x.rows(), 8);
        assert_eq!(x.cols(), 3);
    }

    #[test]
    fn transform_on_unseen_data_keeps_dimensionality() {
        let train = toy_frame(10);
        let serve = toy_frame(4);
        let p = FeaturePipeline::fit(&train, &PipelineConfig::default());
        let x = p.transform(&serve);
        assert_eq!(x.cols(), p.width());
        assert_eq!(x.rows(), 4);
    }

    #[test]
    fn missing_cells_encode_to_zero_rows() {
        let mut df = toy_frame(3);
        df.column_mut(0).set_null(1);
        df.column_mut(1).set_null(1);
        let p = FeaturePipeline::fit(&toy_frame(10), &PipelineConfig::default());
        let x = p.transform(&df);
        let (idx, _) = x.row(1);
        assert!(idx.is_empty(), "fully-missing row must encode to zeros");
    }

    #[test]
    fn standardization_uses_training_statistics() {
        let train = toy_frame(11); // x: 0..=10, mean 5
        let p = FeaturePipeline::fit(&train, &PipelineConfig::default());
        let x = p.transform(&train);
        // Column 0 of row 5 holds (5 - mean)/std == 0 → stored as implicit zero.
        let (idx, _) = x.row(5);
        assert!(!idx.contains(&0));
        // Row 0 holds a negative standardized value.
        let dense = x.to_dense();
        assert!(dense.get(0, 0) < 0.0);
    }
}
