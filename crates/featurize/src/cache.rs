//! Identity-keyed cache of per-column encoding blocks.
//!
//! Algorithm 1/2 score many copy-on-write copies of the same frame, and
//! those copies share every untouched column's `Arc` payload. Encoding is
//! a pure function of `(fitted encoder, column payload)`, so a block
//! encoded once can be reused for every frame that still shares the
//! payload — the cache keys blocks by `(column_index, ColumnId)` and the
//! identity rules of [`ColumnId`] make stale hits impossible:
//!
//! * every entry **pins** the `Arc<Column>` it encoded, so a copy-on-write
//!   write to a cached column always materializes fresh storage (the
//!   refcount is ≥ 2) and therefore a fresh `ColumnId` → a cache miss;
//! * the pin also keeps the allocation alive, so its address can never be
//!   recycled for different column data while the entry exists.
//!
//! A cache is private to one fitted [`FeaturePipeline`](crate::FeaturePipeline):
//! the `column_index` half of the key is only meaningful against the
//! encoder fitted for that position. [`PipelineModel`] therefore owns its
//! cache; sharing one cache across differently-fitted pipelines would mix
//! feature spaces.
//!
//! [`PipelineModel`]: ../lvp_models/struct.PipelineModel.html

use lvp_dataframe::{Column, ColumnId};
use lvp_linalg::ColumnBlock;
use lvp_telemetry::{Counter, Gauge, Registry};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Default bound on entries per cache before a wholesale eviction.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

/// Aggregated cache counters (see [`EncodingCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a cached block.
    pub hits: u64,
    /// Lookups that had to encode the column.
    pub misses: u64,
    /// Entries discarded by capacity evictions.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
}

struct CacheEntry {
    /// Pins the encoded payload: keeps the [`ColumnId`] valid (see the
    /// module docs) for as long as the entry lives.
    _pin: Arc<Column>,
    block: Arc<ColumnBlock>,
}

/// A single-threaded encoding cache mapping `(column_index, ColumnId)` to
/// the column's encoded [`ColumnBlock`], with hit/miss counters.
///
/// Capacity-bounded: when an insert would exceed `max_entries`, the whole
/// map is dropped (coarse, O(1) amortized, and keeps every pinned payload
/// from outliving its usefulness — important for workloads like the
/// generation loop that stream unique subsampled columns through).
pub struct EncodingCache {
    entries: HashMap<(usize, ColumnId), CacheEntry>,
    max_entries: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl EncodingCache {
    /// A cache bounded at [`DEFAULT_CACHE_CAPACITY`] entries.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A cache bounded at `max_entries` entries (minimum 1).
    pub fn with_capacity(max_entries: usize) -> Self {
        Self {
            entries: HashMap::new(),
            max_entries: max_entries.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached block for `(column_index, id)`, or encodes it via
    /// `encode` and caches it with `pin` keeping the id valid.
    pub fn get_or_encode(
        &mut self,
        column_index: usize,
        id: ColumnId,
        pin: &Arc<Column>,
        encode: impl FnOnce() -> ColumnBlock,
    ) -> Arc<ColumnBlock> {
        if let Some(entry) = self.entries.get(&(column_index, id)) {
            self.hits += 1;
            return Arc::clone(&entry.block);
        }
        self.misses += 1;
        if self.entries.len() >= self.max_entries {
            self.evictions += self.entries.len() as u64;
            self.entries.clear();
        }
        let block = Arc::new(encode());
        self.entries.insert(
            (column_index, id),
            CacheEntry {
                _pin: Arc::clone(pin),
                block: Arc::clone(&block),
            },
        );
        block
    }

    /// Lookups served from cache since construction (or the last
    /// [`Self::reset_stats`]).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to encode.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (and its pins); counters are kept.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Zeroes the hit/miss/eviction counters; entries are kept.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

impl Default for EncodingCache {
    fn default() -> Self {
        Self::new()
    }
}

/// A sharded, thread-safe wrapper giving each worker thread its own
/// [`EncodingCache`].
///
/// The shard is selected by hashing the calling thread's id, so concurrent
/// workers (e.g. the parallel generation engine's threads) effectively get
/// private caches — no lock contention on the hot path, and no
/// cross-thread ordering effects. Correctness never depends on shard
/// assignment: a cached block is bit-identical to a freshly encoded one,
/// so any thread may safely hit any shard's entries.
pub struct ShardedEncodingCache {
    shards: Vec<Mutex<EncodingCache>>,
    telemetry: Option<CacheTelemetry>,
}

/// Registry handles the cache publishes into, plus the totals already
/// published (so each [`ShardedEncodingCache::publish_stats`] call adds
/// only the delta and the registry counters stay monotonic).
///
/// Hit/miss/eviction totals depend on which shard each worker thread lands
/// on, so every metric here is registered *volatile* — present in raw
/// snapshots, dropped from the deterministic view.
struct CacheTelemetry {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    entries: Gauge,
    published: Mutex<CacheStats>,
}

impl ShardedEncodingCache {
    /// Creates `n_shards` shards (rounded up to a power of two, minimum 1),
    /// each bounded at `max_entries_per_shard`.
    pub fn new(n_shards: usize, max_entries_per_shard: usize) -> Self {
        let n = n_shards.max(1).next_power_of_two();
        Self {
            shards: (0..n)
                .map(|_| Mutex::new(EncodingCache::with_capacity(max_entries_per_shard)))
                .collect(),
            telemetry: None,
        }
    }

    /// Registers this cache's counters under `prefix` (e.g. `model.cache`
    /// → `model.cache.hits`, `.misses`, `.evictions`, `.entries`).
    ///
    /// All four metrics are *volatile*: shard scheduling makes the totals
    /// thread-schedule-dependent, so they are excluded from deterministic
    /// snapshot views. Counters advance on [`Self::publish_stats`], not on
    /// every lookup — the hot path stays free of registry traffic.
    pub fn attach_telemetry(&mut self, registry: &Registry, prefix: &str) {
        self.telemetry = Some(CacheTelemetry {
            hits: registry.volatile_counter(&format!("{prefix}.hits")),
            misses: registry.volatile_counter(&format!("{prefix}.misses")),
            evictions: registry.volatile_counter(&format!("{prefix}.evictions")),
            entries: registry.volatile_gauge(&format!("{prefix}.entries")),
            published: Mutex::new(CacheStats::default()),
        });
    }

    /// Pushes the counters accumulated since the last publish into the
    /// attached registry (no-op when none is attached).
    pub fn publish_stats(&self) {
        let Some(t) = &self.telemetry else { return };
        let now = self.stats();
        let mut published = t.published.lock().unwrap_or_else(|p| p.into_inner());
        t.hits.add(now.hits.saturating_sub(published.hits));
        t.misses.add(now.misses.saturating_sub(published.misses));
        t.evictions
            .add(now.evictions.saturating_sub(published.evictions));
        t.entries.set(now.entries as f64);
        *published = now;
    }

    /// Shard count sized for this machine's parallelism, default capacity.
    pub fn with_default_shards() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(threads.min(64), DEFAULT_CACHE_CAPACITY)
    }

    /// Runs `f` with exclusive access to the calling thread's shard.
    pub fn with_worker_cache<R>(&self, f: impl FnOnce(&mut EncodingCache) -> R) -> R {
        let mut hasher = DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let shard = (hasher.finish() as usize) & (self.shards.len() - 1);
        let mut guard = self.shards[shard]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        f(&mut guard)
    }

    /// Counter totals summed across shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(|p| p.into_inner());
            let s = guard.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
        }
        total
    }

    /// Drops every entry in every shard; counters are kept.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|p| p.into_inner()).clear();
        }
    }
}

impl Default for ShardedEncodingCache {
    fn default() -> Self {
        Self::with_default_shards()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use lvp_linalg::ColumnBlock;

    fn one_row_block() -> ColumnBlock {
        let mut b = ColumnBlock::new(1);
        b.push_empty_row();
        b
    }

    #[test]
    fn cache_hits_on_shared_storage_and_misses_after_write() {
        let df = toy_frame(4);
        let copy = df.clone();
        let mut cache = EncodingCache::new();
        let a = cache.get_or_encode(0, df.column_id(0), &df.column_shared(0), one_row_block);
        // The clone shares storage → same id → hit, same block.
        let b = cache.get_or_encode(0, copy.column_id(0), &copy.column_shared(0), || {
            panic!("must not re-encode a shared column")
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // A write invalidates the id → miss.
        let mut written = df.clone();
        written.column_mut(0).set_null(0);
        cache.get_or_encode(
            0,
            written.column_id(0),
            &written.column_shared(0),
            one_row_block,
        );
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn same_storage_different_position_is_distinct() {
        let df = toy_frame(4);
        let mut cache = EncodingCache::new();
        cache.get_or_encode(0, df.column_id(0), &df.column_shared(0), one_row_block);
        cache.get_or_encode(1, df.column_id(0), &df.column_shared(0), one_row_block);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn capacity_bound_evicts_wholesale() {
        let mut cache = EncodingCache::with_capacity(2);
        // Keep the frames alive so ids stay distinct.
        let frames: Vec<_> = (0..3).map(|_| toy_frame(2).deep_clone()).collect();
        for f in &frames {
            cache.get_or_encode(0, f.column_id(0), &f.column_shared(0), one_row_block);
        }
        assert_eq!(cache.len(), 1, "third insert clears the full map first");
        assert_eq!(cache.stats().evictions, 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn publish_stats_emits_monotonic_deltas() {
        let registry = Registry::new();
        let mut sharded = ShardedEncodingCache::new(1, 8);
        sharded.attach_telemetry(&registry, "cache");
        let df = toy_frame(4);
        sharded.with_worker_cache(|c| {
            c.get_or_encode(0, df.column_id(0), &df.column_shared(0), one_row_block);
            c.get_or_encode(0, df.column_id(0), &df.column_shared(0), one_row_block);
        });
        sharded.publish_stats();
        // Publishing twice with no new traffic must not double-count.
        sharded.publish_stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cache.hits"], 1);
        assert_eq!(snap.counters["cache.misses"], 1);
        assert_eq!(snap.counters["cache.evictions"], 0);
        assert_eq!(snap.gauges["cache.entries"], 1.0);
        // Cache metrics are scheduling-dependent → volatile.
        assert!(snap.volatile.contains(&"cache.hits".to_string()));
        assert!(snap.deterministic().counters.is_empty());
        // Unattached caches ignore the call.
        ShardedEncodingCache::new(1, 8).publish_stats();
    }

    #[test]
    fn sharded_cache_aggregates_stats() {
        let sharded = ShardedEncodingCache::new(4, 8);
        let df = toy_frame(4);
        sharded.with_worker_cache(|c| {
            c.get_or_encode(0, df.column_id(0), &df.column_shared(0), one_row_block);
            c.get_or_encode(0, df.column_id(0), &df.column_shared(0), one_row_block);
        });
        let stats = sharded.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        sharded.clear();
        assert_eq!(sharded.stats().entries, 0);
    }
}
