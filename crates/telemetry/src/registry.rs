//! The metrics registry and its handle types.

use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Upper bounds (inclusive, in nanoseconds) of the fixed duration-histogram
/// buckets: a 1–5–10 ladder from 1µs to 5s. Durations above the last bound
/// land in a final overflow bucket.
pub const DURATION_BUCKET_BOUNDS_NANOS: [u64; 14] = [
    1_000,
    5_000,
    10_000,
    50_000,
    100_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
    5_000_000_000,
];

/// Total bucket count: one per bound plus the overflow bucket.
pub const DURATION_BUCKET_COUNT: usize = DURATION_BUCKET_BOUNDS_NANOS.len() + 1;

/// A monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle storing an `f64` (as raw bits in an
/// `AtomicU64`). Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramCore {
    buckets: [AtomicU64; DURATION_BUCKET_COUNT],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// A fixed-bucket duration histogram handle (bounds in
/// [`DURATION_BUCKET_BOUNDS_NANOS`]). Cloning shares the underlying cells.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one duration.
    pub fn record(&self, duration: Duration) {
        // A single observation beyond ~584 years saturates rather than
        // wrapping; durations that long are already nonsense.
        self.record_nanos(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one duration given in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        let idx = DURATION_BUCKET_BOUNDS_NANOS
            .iter()
            .position(|&bound| nanos <= bound)
            .unwrap_or(DURATION_BUCKET_BOUNDS_NANOS.len());
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum_nanos: self.0.sum_nanos.load(Ordering::Relaxed),
            buckets: self
                .0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A drop guard that records its lifetime into a duration [`Histogram`].
/// Created by [`Registry::span`] or the [`span!`](crate::span) macro.
pub struct Span {
    histogram: Histogram,
    start: Instant,
}

impl Span {
    /// Starts timing into `histogram`.
    pub fn new(histogram: Histogram) -> Self {
        Self {
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed());
    }
}

enum Metric {
    Counter { cell: Counter, volatile: bool },
    Gauge { cell: Gauge, volatile: bool },
    Histogram { cell: Histogram, volatile: bool },
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter { .. } => "counter",
            Metric::Gauge { .. } => "gauge",
            Metric::Histogram { .. } => "histogram",
        }
    }
}

/// A lock-cheap registry of named metrics.
///
/// Registration (name → handle) takes a `RwLock`; recording through a
/// resolved handle is pure atomics. Hot loops should resolve their handles
/// once and reuse them. Names are free-form; the workspace uses
/// `component.metric` dotted paths (`engine.batches_generated`,
/// `monitor.smoothed_score`, …).
///
/// Looking a name up again returns a handle to the *same* cell; asking for
/// an existing name with a different metric kind panics — that is a
/// programming error, not a runtime condition.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read access to the metric map, recovering a poisoned lock.
    ///
    /// Every value in the map is a bag of atomics that is valid at all
    /// times — a panic while the lock was held cannot leave the map
    /// half-updated in any way that matters to readers — so a metrics
    /// thread that panicked must not take the whole daemon's telemetry
    /// down with it.
    fn read_metrics(&self) -> RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access to the metric map, recovering a poisoned lock (see
    /// [`Self::read_metrics`]).
    fn write_metrics(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn resolve<H: Clone>(
        &self,
        name: &str,
        match_existing: impl Fn(&Metric) -> Option<H>,
        create: impl FnOnce() -> (Metric, H),
    ) -> H {
        {
            let metrics = self.read_metrics();
            if let Some(metric) = metrics.get(name) {
                if let Some(handle) = match_existing(metric) {
                    return handle;
                }
                // Kind mismatch: fall through to the write path so the
                // panic below is the single authoritative check.
            }
        }
        let mut metrics = self.write_metrics();
        // Racing registrations (and read-path mismatches): re-check under
        // the write lock.
        if let Some(metric) = metrics.get(name) {
            return match_existing(metric).unwrap_or_else(|| {
                panic!(
                    "metric '{name}' is already registered as a {}",
                    metric.kind()
                )
            });
        }
        let (metric, handle) = create();
        metrics.insert(name.to_string(), metric);
        handle
    }

    fn counter_with(&self, name: &str, volatile: bool) -> Counter {
        self.resolve(
            name,
            |m| match m {
                Metric::Counter { cell, .. } => Some(cell.clone()),
                _ => None,
            },
            || {
                let cell = Counter(Arc::new(AtomicU64::new(0)));
                (
                    Metric::Counter {
                        cell: cell.clone(),
                        volatile,
                    },
                    cell,
                )
            },
        )
    }

    fn gauge_with(&self, name: &str, volatile: bool) -> Gauge {
        self.resolve(
            name,
            |m| match m {
                Metric::Gauge { cell, .. } => Some(cell.clone()),
                _ => None,
            },
            || {
                let cell = Gauge(Arc::new(AtomicU64::new(0f64.to_bits())));
                (
                    Metric::Gauge {
                        cell: cell.clone(),
                        volatile,
                    },
                    cell,
                )
            },
        )
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, false)
    }

    /// Gets or registers a counter whose value is scheduling-dependent
    /// (dropped by [`TelemetrySnapshot::deterministic`]).
    pub fn volatile_counter(&self, name: &str) -> Counter {
        self.counter_with(name, true)
    }

    /// Gets or registers the gauge `name` (initial value 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, false)
    }

    /// Gets or registers a gauge whose value is scheduling-dependent
    /// (dropped by [`TelemetrySnapshot::deterministic`]).
    pub fn volatile_gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, true)
    }

    fn histogram_with(&self, name: &str, volatile: bool) -> Histogram {
        self.resolve(
            name,
            |m| match m {
                Metric::Histogram { cell, .. } => Some(cell.clone()),
                _ => None,
            },
            || {
                let cell = Histogram(Arc::new(HistogramCore {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum_nanos: AtomicU64::new(0),
                }));
                (
                    Metric::Histogram {
                        cell: cell.clone(),
                        volatile,
                    },
                    cell,
                )
            },
        )
    }

    /// Gets or registers the duration histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, false)
    }

    /// Gets or registers a duration histogram whose very observation
    /// *count* is scheduling- or configuration-dependent — e.g. fsync
    /// latency, where the count depends on the fsync policy — so
    /// [`TelemetrySnapshot::deterministic`] drops it entirely (ordinary
    /// histograms keep their deterministic count).
    pub fn volatile_histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, true)
    }

    /// Starts a [`Span`] recording into the duration histogram `name`.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.histogram(name))
    }

    /// A point-in-time copy of every metric. Atomic loads are relaxed, so
    /// a snapshot taken while writers are active is advisory; snapshots of
    /// a quiescent registry are exact.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let metrics = self.read_metrics();
        let mut snap = TelemetrySnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter { cell, volatile } => {
                    snap.counters.insert(name.clone(), cell.get());
                    if *volatile {
                        snap.volatile.push(name.clone());
                    }
                }
                Metric::Gauge { cell, volatile } => {
                    snap.gauges.insert(name.clone(), cell.get());
                    if *volatile {
                        snap.volatile.push(name.clone());
                    }
                }
                Metric::Histogram { cell, volatile } => {
                    snap.histograms.insert(name.clone(), cell.snapshot());
                    if *volatile {
                        snap.volatile.push(name.clone());
                    }
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let metrics = self.read_metrics();
        f.debug_struct("Registry")
            .field("metrics", &metrics.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.snapshot().counters["x"], 5);
    }

    #[test]
    fn gauges_store_last_value() {
        let r = Registry::new();
        let g = r.gauge("score");
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        g.set(-1.5);
        assert_eq!(r.snapshot().gauges["score"], -1.5);
    }

    #[test]
    fn histogram_buckets_total_the_count() {
        let r = Registry::new();
        let h = r.histogram("latency");
        h.record_nanos(500); // first bucket (≤ 1µs)
        h.record_nanos(1_000); // boundary is inclusive
        h.record_nanos(2_000_000); // ≤ 5ms bucket
        h.record_nanos(u64::MAX); // overflow bucket
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[DURATION_BUCKET_COUNT - 1], 1);
        assert_eq!(snap.buckets.len(), DURATION_BUCKET_COUNT);
    }

    #[test]
    fn span_records_into_histogram() {
        let r = Registry::new();
        {
            let _guard = crate::span!(r, "work");
        }
        {
            let _guard = r.span("work");
        }
        assert_eq!(r.histogram("work").count(), 2);
        assert!(r.snapshot().histograms["work"].sum_nanos > 0);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        let r = Registry::new();
        r.counter("x").inc();
        // A kind mismatch panics under the *write* lock, poisoning it —
        // exactly what a panicking metrics thread does to the registry.
        let mismatch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.gauge("x")));
        assert!(mismatch.is_err(), "kind mismatch must still panic");
        // Pre-fix, every one of these calls died on `.expect("registry
        // lock")`. The map itself is still valid (all values are atomics),
        // so resolution, registration, snapshots and Debug must all keep
        // working.
        r.counter("x").inc();
        r.counter("y").add(3);
        let snap = r.snapshot();
        assert_eq!(snap.counters["x"], 2);
        assert_eq!(snap.counters["y"], 3);
        assert!(!format!("{r:?}").is_empty());
    }

    #[test]
    fn volatile_metrics_are_listed() {
        let r = Registry::new();
        r.volatile_counter("cache.hits").inc();
        r.volatile_gauge("cache.entries").set(3.0);
        r.counter("batches").inc();
        let snap = r.snapshot();
        assert_eq!(snap.volatile, vec!["cache.entries", "cache.hits"]);
    }

    #[test]
    fn concurrent_increments_converge() {
        let r = Arc::new(Registry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("n");
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter("n").get(), 8000);
    }
}
