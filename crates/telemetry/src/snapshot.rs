//! Serializable point-in-time views of a [`Registry`](crate::Registry).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A point-in-time copy of one duration histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of recorded observations (deterministic for seeded runs —
    /// one per span, regardless of how long each span took).
    pub count: u64,
    /// Sum of all recorded durations in nanoseconds (wall-clock data).
    pub sum_nanos: u64,
    /// Per-bucket observation counts, aligned with
    /// [`DURATION_BUCKET_BOUNDS_NANOS`](crate::DURATION_BUCKET_BOUNDS_NANOS)
    /// plus a final overflow bucket (wall-clock data).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Sum of the per-bucket counts; always equals [`Self::count`] for a
    /// snapshot of a quiescent registry.
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric in a registry, exported via serde.
///
/// The maps are `BTreeMap`s, so field order — and therefore the JSON text —
/// is deterministic given deterministic contents.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Monotonic counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Duration histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Names of counters/gauges/histograms whose values are scheduling-
    /// or configuration-dependent (e.g. per-shard cache hit counts, fsync
    /// latency); sorted. These are excluded from [`Self::deterministic`].
    pub volatile: Vec<String>,
}

impl TelemetrySnapshot {
    /// The schedule- and wall-clock-independent view: volatile metrics are
    /// dropped and histograms keep only their (deterministic) observation
    /// `count`. For a seeded run this view is bit-identical across repeat
    /// runs and thread counts.
    pub fn deterministic(&self) -> TelemetrySnapshot {
        let is_volatile = |name: &String| self.volatile.binary_search(name).is_ok();
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .filter(|(name, _)| !is_volatile(name))
                .map(|(name, &v)| (name.clone(), v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(name, _)| !is_volatile(name))
                .map(|(name, &v)| (name.clone(), v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(name, _)| !is_volatile(name))
                .map(|(name, h)| {
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count,
                            sum_nanos: 0,
                            buckets: Vec::new(),
                        },
                    )
                })
                .collect(),
            volatile: Vec::new(),
        }
    }

    /// Serializes the snapshot to a JSON string.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a snapshot back from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Renders a human-readable table (counters, gauges, then histograms
    /// with count/mean), for examples and CI logs.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            let tag = if self.volatile.binary_search(name).is_ok() {
                "  (volatile)"
            } else {
                ""
            };
            let _ = writeln!(out, "counter    {name:<width$}  {v}{tag}");
        }
        for (name, v) in &self.gauges {
            let tag = if self.volatile.binary_search(name).is_ok() {
                "  (volatile)"
            } else {
                ""
            };
            let _ = writeln!(out, "gauge      {name:<width$}  {v:.6}{tag}");
        }
        for (name, h) in &self.histograms {
            let tag = if self.volatile.binary_search(name).is_ok() {
                "  (volatile)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "histogram  {name:<width$}  count={} mean={:.1}µs{tag}",
                h.count,
                h.mean_nanos() / 1_000.0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn populated() -> Registry {
        let r = Registry::new();
        r.counter("engine.batches").add(7);
        r.gauge("monitor.smoothed").set(0.8125);
        r.volatile_counter("cache.hits").add(3);
        r.histogram("observe").record_nanos(1_234);
        r.histogram("observe").record_nanos(5_000_000_000_000);
        r
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = populated().snapshot();
        let json = snap.to_json().unwrap();
        assert_eq!(TelemetrySnapshot::from_json(&json).unwrap(), snap);
    }

    #[test]
    fn volatile_histograms_are_dropped_from_the_deterministic_view() {
        let r = Registry::new();
        r.volatile_histogram("journal.fsync").record_nanos(1_000);
        r.histogram("observe").record_nanos(2_000);
        let snap = r.snapshot();
        assert_eq!(snap.volatile, vec!["journal.fsync"]);
        assert!(snap.render_text().contains("journal.fsync"));
        let det = snap.deterministic();
        // An ordinary histogram keeps its (deterministic) count; a
        // volatile one — whose count depends on configuration such as the
        // fsync policy — disappears entirely.
        assert_eq!(det.histograms["observe"].count, 1);
        assert!(!det.histograms.contains_key("journal.fsync"));
    }

    #[test]
    fn deterministic_view_strips_wall_clock_and_volatile_data() {
        let snap = populated().snapshot();
        let det = snap.deterministic();
        assert!(!det.counters.contains_key("cache.hits"));
        assert_eq!(det.counters["engine.batches"], 7);
        assert_eq!(det.gauges["monitor.smoothed"], 0.8125);
        let h = &det.histograms["observe"];
        assert_eq!((h.count, h.sum_nanos), (2, 0));
        assert!(h.buckets.is_empty());
        assert!(det.volatile.is_empty());
        // Idempotent.
        assert_eq!(det.deterministic(), det);
    }

    #[test]
    fn render_text_lists_every_metric() {
        let text = populated().snapshot().render_text();
        for needle in [
            "engine.batches",
            "monitor.smoothed",
            "cache.hits",
            "(volatile)",
            "observe",
            "count=2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn bucket_total_matches_count() {
        let snap = populated().snapshot();
        let h = &snap.histograms["observe"];
        assert_eq!(h.bucket_total(), h.count);
        assert!(h.mean_nanos() > 0.0);
        assert_eq!(HistogramSnapshot::default().mean_nanos(), 0.0);
    }
}
