//! Runtime telemetry for the serving stack.
//!
//! The paper positions the performance predictor as a *production
//! monitoring* component (§6.5 evaluates it as a continuous check on
//! serving batches), and a production monitor is only actionable together
//! with its surrounding evidence: per-batch statistics, counters, timings
//! and history. This crate supplies that layer for the whole workspace:
//!
//! * a lock-cheap [`Registry`] of named metrics — monotonic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket duration [`Histogram`]s, all backed by
//!   `AtomicU64` so the hot paths never block each other;
//! * a lightweight span API ([`Registry::span`] / the [`span!`] macro):
//!   a drop guard that records its lifetime into a duration histogram;
//! * serde snapshot export ([`TelemetrySnapshot`] ↔ JSON) plus a text
//!   renderer for examples and CI.
//!
//! # Determinism contract
//!
//! Counters and gauges written from seeded, logically-deterministic code
//! converge to the same totals on any thread schedule (atomic increments
//! commute). Two kinds of metric do *not*:
//!
//! * wall-clock data — histogram bucket counts and `sum_nanos` depend on
//!   machine speed;
//! * metrics registered as **volatile** (e.g. encoding-cache hit/miss
//!   counts, which depend on how rayon schedules work across cache
//!   shards).
//!
//! [`TelemetrySnapshot::deterministic`] strips exactly those two kinds
//! (volatile metrics are dropped; histograms keep their call `count` —
//! which *is* deterministic — and zero the wall-clock fields), so a seeded
//! end-to-end run produces a bit-identical deterministic view across runs
//! and thread counts. `tests/telemetry.rs` pins that property.
//!
//! # Overhead
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s around
//! atomics: resolving a name takes a `RwLock` read and a map lookup, and
//! every *recording* operation after that is one or two relaxed atomic
//! RMWs. Hot loops resolve handles once up front (see
//! `lvp_core::engine`); the measured overhead of full instrumentation on
//! the Algorithm 1 generation loop is below 1% (EXPERIMENTS.md).

mod registry;
mod snapshot;

pub use registry::{
    Counter, Gauge, Histogram, Registry, Span, DURATION_BUCKET_BOUNDS_NANOS, DURATION_BUCKET_COUNT,
};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot};

/// Starts a [`Span`] recording into `registry`'s duration histogram
/// `name`; the elapsed time is recorded when the guard drops.
///
/// ```
/// use lvp_telemetry::{span, Registry};
/// let registry = Registry::new();
/// {
///     let _guard = span!(registry, "alg1.generate");
///     // ... timed work ...
/// }
/// assert_eq!(registry.snapshot().histograms["alg1.generate"].count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name)
    };
}
