//! Row-major dense matrix.

use crate::{shape_err, ShapeError};
use rayon::prelude::*;

/// Output-width cutover between [`DenseMatrix::matmul`]'s two
/// bit-identical kernels. Wide outputs vectorize the streaming kernel's
/// inner loop across output columns (and its zero-skip rides ReLU
/// sparsity in the lhs); at or below this width that loop is too narrow
/// to vectorize, and the transpose-packed kernel's branch-free dot
/// products over contiguous panels win instead.
const PACKED_MATMUL_MAX_COLS: usize = 16;

/// A row-major dense matrix of `f64` values.
///
/// This is the exchange type for model outputs across the workspace: a batch
/// of class-probability predictions is an `n × m` dense matrix whose rows sum
/// to one.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(shape_err(format!(
                "buffer of length {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, ShapeError> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(shape_err(format!(
                    "row {} has length {}, expected {}",
                    i,
                    r.len(),
                    cols
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Value at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the value at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable slice of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable slice of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` into a new vector.
    pub fn column(&self, c: usize) -> Vec<f64> {
        self.column_iter(c).collect()
    }

    /// Iterator over the values of column `c`, without materializing them.
    #[inline]
    pub fn column_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        debug_assert!(c < self.cols || self.rows == 0);
        (0..self.rows).map(move |r| self.get(r, c))
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Dense matrix multiplication `self * other`, parallelized over rows.
    ///
    /// Two kernels, dispatched on output width (see
    /// [`PACKED_MATMUL_MAX_COLS`]): a *streaming* kernel that makes one
    /// pass over `k` per row, vectorizing across output columns and
    /// skipping zero entries of `self` (ReLU activations make `self`
    /// sparse in practice), and — for narrow outputs, where that inner
    /// loop cannot vectorize — a *packed* kernel that transposes `other`
    /// once and accumulates four branch-free dot products over contiguous
    /// panels per pass. Every output cell is the `k`-ascending sum over
    /// the row either way, so the kernels agree bit for bit and the
    /// dispatch is purely a performance choice.
    ///
    /// **Contract:** `other` must be finite. The streaming kernel's skip
    /// of `a == 0.0` drops IEEE propagation of NaN/∞ *from `other`*
    /// through zero entries of `self` (`0 · NaN` is NaN, but the skip
    /// never multiplies), so a poisoned `other` may go partially
    /// unnoticed — and the packed kernel relies on the same contract for
    /// its skipless sums to match (`x + 0·b = x` requires finite `b`).
    /// Non-finite entries of `self` still propagate normally into every
    /// output column they touch. Debug builds assert the contract;
    /// release builds skip the check on the hot path.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, ShapeError> {
        if self.cols != other.rows {
            return Err(shape_err(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        debug_assert!(
            other.data.iter().all(|v| v.is_finite()),
            "matmul rhs must be finite: the zero-skip fast path cannot \
             propagate NaN/inf through zero entries of the lhs"
        );
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        let oc = other.cols;
        // Both kernels accumulate each output cell as the k-ascending
        // sum over the lhs row, so the dispatch is purely a performance
        // choice (see PACKED_MATMUL_MAX_COLS): narrow outputs — MLP
        // heads, binary-class logits — take the packed kernel, wide ones
        // the streaming kernel.
        if oc <= PACKED_MATMUL_MAX_COLS {
            let packed = other.transpose();
            out.data
                .par_chunks_mut(oc.max(1))
                .zip(self.data.par_chunks(self.cols.max(1)))
                .for_each(|(out_row, a_row)| {
                    // No zero-skip here: with a finite rhs, adding the
                    // `±0.0` products of skipped entries cannot change any
                    // sum (the accumulator never goes negative-zero), so
                    // this branch-free loop is bit-identical to the
                    // streaming kernel — and it vectorizes.
                    let mut j = 0;
                    while j + 4 <= oc {
                        let b0 = packed.row(j);
                        let b1 = packed.row(j + 1);
                        let b2 = packed.row(j + 2);
                        let b3 = packed.row(j + 3);
                        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                        for (k, &a) in a_row.iter().enumerate() {
                            s0 += a * b0[k];
                            s1 += a * b1[k];
                            s2 += a * b2[k];
                            s3 += a * b3[k];
                        }
                        out_row[j] = s0;
                        out_row[j + 1] = s1;
                        out_row[j + 2] = s2;
                        out_row[j + 3] = s3;
                        j += 4;
                    }
                    while j < oc {
                        let bj = packed.row(j);
                        let mut s = 0.0;
                        for (k, &a) in a_row.iter().enumerate() {
                            s += a * bj[k];
                        }
                        out_row[j] = s;
                        j += 1;
                    }
                });
        } else {
            out.data
                .par_chunks_mut(oc.max(1))
                .zip(self.data.par_chunks(self.cols.max(1)))
                .for_each(|(out_row, a_row)| {
                    for (k, &a) in a_row.iter().enumerate() {
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = &other.data[k * oc..(k + 1) * oc];
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                });
        }
        Ok(out)
    }

    /// Element-wise addition of a row vector (broadcast over rows).
    pub fn add_row_vector(&mut self, bias: &[f64]) -> Result<(), ShapeError> {
        if bias.len() != self.cols {
            return Err(shape_err(format!(
                "bias of length {} does not match {} columns",
                bias.len(),
                self.cols
            )));
        }
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        Ok(())
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        self.data.par_iter_mut().for_each(|v| *v = f(*v));
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Element-wise `self += s * other`.
    pub fn axpy(&mut self, s: f64, other: &DenseMatrix) -> Result<(), ShapeError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(shape_err("axpy shape mismatch"));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns the per-row index of the maximum value (ties broken towards
    /// the lower index), i.e. the predicted class for a probability matrix.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.row_iter().map(crate::ops::argmax).collect()
    }

    /// Builds a new matrix containing only the selected rows.
    pub fn select_rows(&self, indices: &[usize]) -> DenseMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        DenseMatrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Vertically stacks matrices with identical column counts.
    pub fn vstack(parts: &[&DenseMatrix]) -> Result<DenseMatrix, ShapeError> {
        if parts.is_empty() {
            return Ok(DenseMatrix::zeros(0, 0));
        }
        let cols = parts[0].cols;
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(shape_err("vstack column mismatch"));
            }
            rows += p.rows;
            data.extend_from_slice(&p.data);
        }
        Ok(DenseMatrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert!(m.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn matmul_matches_hand_computed_product() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = DenseMatrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    /// The documented matmul contract: non-finite rhs entries are a caller
    /// bug, rejected up front in debug builds — the zero-skip fast path
    /// cannot propagate them through zero lhs entries.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "matmul rhs must be finite")]
    fn matmul_rejects_non_finite_rhs_in_debug() {
        let a = DenseMatrix::from_vec(1, 2, vec![0.0, 1.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 1, vec![f64::NAN, 2.0]).unwrap();
        let _ = a.matmul(&b);
    }

    /// Non-finite *lhs* entries are never skipped and poison every output
    /// column they touch, as IEEE semantics demand.
    #[test]
    fn matmul_propagates_non_finite_lhs() {
        let a = DenseMatrix::from_vec(1, 2, vec![f64::NAN, 1.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c.data().iter().all(|v| v.is_nan()));
    }

    /// The register-blocked kernel accumulates each output cell in the
    /// same k-ascending zero-skip order as a naive loop, so results are
    /// bit-identical for every output width (quad main loop + remainder).
    #[test]
    fn matmul_register_blocking_matches_naive_bitwise() {
        // Output widths straddle PACKED_MATMUL_MAX_COLS so both the packed
        // kernel (narrow, incl. remainder-loop widths) and the streaming
        // kernel (wide) are checked against the zero-skip reference.
        let k_dim = 13;
        for oc in (1..=9).chain([15, 16, 17, 24, 33]) {
            let mut state = 0x2545F4914F6CDD1Du64;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64) / f64::from(1u32 << 31) - 1.0
            };
            let a_data: Vec<f64> = (0..3 * k_dim)
                .map(|i| if i % 3 == 0 { 0.0 } else { next() })
                .collect();
            let b_data: Vec<f64> = (0..k_dim * oc).map(|_| next()).collect();
            let a = DenseMatrix::from_vec(3, k_dim, a_data).unwrap();
            let b = DenseMatrix::from_vec(k_dim, oc, b_data).unwrap();
            let fast = a.matmul(&b).unwrap();
            for r in 0..3 {
                for j in 0..oc {
                    let mut s = 0.0;
                    for k in 0..k_dim {
                        let av = a.get(r, k);
                        if av == 0.0 {
                            continue;
                        }
                        s += av * b.get(k, j);
                    }
                    assert_eq!(fast.get(r, j).to_bits(), s.to_bits(), "cell ({r}, {j})");
                }
            }
        }
    }

    #[test]
    fn transpose_round_trips() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn argmax_rows_picks_largest_entry() {
        let m = DenseMatrix::from_vec(2, 3, vec![0.1, 0.7, 0.2, 0.5, 0.2, 0.3]).unwrap();
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.add_row_vector(&[1.0, 2.0]).unwrap();
        assert_eq!(m.data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn select_rows_extracts_in_order() {
        let m = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.data(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn vstack_concatenates_rows() {
        let a = DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]).unwrap();
        let b = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = DenseMatrix::vstack(&[&a, &b]).unwrap();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = DenseMatrix::from_vec(1, 2, vec![1.0, 1.0]).unwrap();
        let b = DenseMatrix::from_vec(1, 2, vec![2.0, 3.0]).unwrap();
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.0, 2.5]);
    }

    #[test]
    fn column_extracts_values() {
        let m = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.column(1), vec![2.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_of_unit_rows() {
        let m = DenseMatrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
