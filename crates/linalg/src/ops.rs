//! Numerically-stable activation functions and reductions.

use crate::DenseMatrix;

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Rectified linear unit.
#[inline]
pub fn relu(x: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Derivative of ReLU evaluated at the pre-activation `x`.
#[inline]
pub fn relu_grad(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// `log(sum(exp(xs)))` computed without overflow.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

/// Index of the maximum element; ties resolve to the lowest index.
/// Returns 0 for empty input.
pub fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// In-place stable softmax of a single slice of logits.
pub fn softmax_in_place(row: &mut [f64]) {
    let m = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    } else {
        // All logits were -inf; fall back to uniform.
        let u = 1.0 / row.len() as f64;
        for v in row.iter_mut() {
            *v = u;
        }
    }
}

/// Row-wise stable softmax of a logits matrix.
pub fn stable_softmax(logits: &DenseMatrix) -> DenseMatrix {
    let mut out = logits.clone();
    let cols = out.cols();
    if cols == 0 {
        return out;
    }
    for row in out.data_mut().chunks_exact_mut(cols) {
        softmax_in_place(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
    }

    #[test]
    fn sigmoid_handles_extreme_inputs_without_nan() {
        assert!(!sigmoid(f64::MAX).is_nan());
        assert!(!sigmoid(f64::MIN).is_nan());
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(2.5), 1.0);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let xs: [f64; 3] = [0.1, 0.5, -0.3];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_stable_for_large_values() {
        let v = log_sum_exp(&[1000.0, 1000.0]);
        assert!((v - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[1.0, 1.0, 0.5]), 0);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]).unwrap();
        let p = stable_softmax(&logits);
        for row in p.row_iter() {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_stable_under_huge_logits() {
        let logits = DenseMatrix::from_vec(1, 2, vec![1e308, 1e308]).unwrap();
        let p = stable_softmax(&logits);
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn softmax_of_neg_infinite_row_is_uniform() {
        let logits =
            DenseMatrix::from_vec(1, 2, vec![f64::NEG_INFINITY, f64::NEG_INFINITY]).unwrap();
        let p = stable_softmax(&logits);
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
    }
}
