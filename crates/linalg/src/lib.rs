//! Dense and sparse linear algebra primitives used across the `lvp` workspace.
//!
//! The workspace trains several classifier families from scratch (logistic
//! regression, multi-layer perceptrons, gradient-boosted trees, convolutional
//! networks), all of which operate on the two matrix types defined here:
//!
//! * [`DenseMatrix`] — row-major `f64` matrix used for model outputs
//!   (class-probability matrices), network weights and activations.
//! * [`CsrMatrix`] — compressed sparse row matrix used for featurized
//!   relational/text data, where one-hot and hashed n-gram encodings produce
//!   mostly-zero rows.
//!
//! The crate deliberately avoids external BLAS bindings: matrices involved in
//! the paper's experiments are small enough (thousands of rows, at most a few
//! thousand columns) that straightforward loops with `rayon` parallelism over
//! rows are sufficient and keep the build dependency-free.

mod block;
mod dense;
mod ops;
mod sparse;

pub use block::{row_blocks, ColumnBlock};
pub use dense::DenseMatrix;
pub use ops::{argmax, log_sum_exp, relu, relu_grad, sigmoid, softmax_in_place, stable_softmax};
pub use sparse::{CsrBuilder, CsrMatrix, SparseVec};

/// Error type for shape mismatches in linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

pub(crate) fn shape_err(message: impl Into<String>) -> ShapeError {
    ShapeError {
        message: message.into(),
    }
}
