//! Sparse vectors and CSR matrices for featurized data.

use crate::block::{merge_pairs_into, ColumnBlock};
use crate::{shape_err, DenseMatrix, ShapeError};
use rayon::prelude::*;

/// A sparse vector with sorted, unique indices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Creates an empty sparse vector of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a sparse vector from unsorted (index, value) pairs.
    ///
    /// Duplicate indices are summed (as in feature hashing, where distinct
    /// n-grams may collide into the same bucket). Zero values are dropped.
    pub fn from_pairs(dim: usize, mut pairs: Vec<(u32, f64)>) -> Result<Self, ShapeError> {
        let mut indices: Vec<u32> = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        merge_pairs_into(&mut pairs, dim, &mut indices, &mut values)?;
        Ok(Self {
            dim,
            indices,
            values,
        })
    }

    /// Dimensionality of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sorted indices of the non-zero entries.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Values of the non-zero entries, parallel to [`Self::indices`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Appends an entry whose index must be strictly greater than the last.
    ///
    /// Used by encoders that emit features in increasing index order.
    pub fn push(&mut self, index: u32, value: f64) {
        debug_assert!((index as usize) < self.dim);
        debug_assert!(self.indices.last().is_none_or(|&last| last < index));
        if value != 0.0 {
            self.indices.push(index);
            self.values.push(value);
        }
    }

    /// Dot product with a dense slice of matching dimensionality.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        debug_assert_eq!(dense.len(), self.dim);
        self.indices
            .iter()
            .zip(&self.values)
            .map(|(&i, &v)| v * dense[i as usize])
            .sum()
    }

    /// Expands to a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }
}

/// Compressed sparse row matrix.
///
/// Feature pipelines produce one [`SparseVec`] per tuple; stacking them yields
/// a `CsrMatrix` that classifiers consume. Row offsets (`indptr`) follow the
/// usual CSR convention: row `r` occupies `indices[indptr[r]..indptr[r+1]]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix by stacking sparse rows of equal dimensionality.
    pub fn from_sparse_rows(rows: &[SparseVec]) -> Result<Self, ShapeError> {
        let cols = rows.first().map_or(0, SparseVec::dim);
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let nnz: usize = rows.iter().map(SparseVec::nnz).sum();
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for (r, row) in rows.iter().enumerate() {
            if row.dim() != cols {
                return Err(shape_err(format!(
                    "row {} has dim {}, expected {}",
                    r,
                    row.dim(),
                    cols
                )));
            }
            indices.extend_from_slice(row.indices());
            values.extend_from_slice(row.values());
            indptr.push(indices.len());
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from a dense row-major matrix, dropping zeros.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut indptr = Vec::with_capacity(dense.rows() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for row in dense.row_iter() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Self {
            rows: dense.rows(),
            cols: dense.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sorted column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Iterator over `(indices, values)` row views.
    pub fn row_iter(&self) -> impl Iterator<Item = (&[u32], &[f64])> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Sparse × dense product: `self (n×d) * dense (d×k) -> n×k`.
    ///
    /// Parallelized over output rows; this is the hot path of every
    /// classifier's forward pass.
    pub fn matmul_dense(&self, dense: &DenseMatrix) -> Result<DenseMatrix, ShapeError> {
        if self.cols != dense.rows() {
            return Err(shape_err(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows,
                self.cols,
                dense.rows(),
                dense.cols()
            )));
        }
        let k = dense.cols();
        let mut out = DenseMatrix::zeros(self.rows, k);
        out.data_mut()
            .par_chunks_mut(k.max(1))
            .enumerate()
            .for_each(|(r, out_row)| {
                let (idx, vals) = self.row(r);
                for (&col, &v) in idx.iter().zip(vals) {
                    let w_row = dense.row(col as usize);
                    for (o, &w) in out_row.iter_mut().zip(w_row) {
                        *o += v * w;
                    }
                }
            });
        Ok(out)
    }

    /// Expands to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (idx, vals) = self.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                out.set(r, c as usize, v);
            }
        }
        out
    }

    /// Copies column `c` into a dense vector (O(nnz) scan).
    pub fn column_dense(&self, c: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let (idx, vals) = self.row(r);
            if let Ok(pos) = idx.binary_search(&(c as u32)) {
                *slot = vals[pos];
            }
        }
        out
    }

    /// Assembles a CSR matrix from horizontally-offset per-column blocks
    /// without materializing an intermediate `Vec<SparseVec>`.
    ///
    /// `blocks` pairs each [`ColumnBlock`] with the global column offset of
    /// its feature range and must be sorted by offset; ranges must not
    /// overlap and must fit inside `cols`. Every block must hold exactly
    /// `rows` rows (`rows` is explicit so a zero-column frame still yields
    /// an `n × 0` matrix). Within a block, row indices are already sorted,
    /// and block ranges are disjoint and increasing, so concatenation
    /// yields sorted CSR rows — the same layout row-major assembly
    /// produces.
    pub fn hstack_blocks(
        rows: usize,
        cols: usize,
        blocks: &[(u32, &ColumnBlock)],
    ) -> Result<Self, ShapeError> {
        let mut end: u64 = 0;
        for &(offset, block) in blocks {
            if u64::from(offset) < end {
                return Err(shape_err(format!(
                    "block at offset {offset} overlaps or precedes the previous \
                     block ending at {end}"
                )));
            }
            end = u64::from(offset) + block.width() as u64;
            if end > cols as u64 {
                return Err(shape_err(format!(
                    "block [{offset}, {end}) exceeds {cols} total columns"
                )));
            }
            if block.rows() != rows {
                return Err(shape_err(format!(
                    "block at offset {offset} has {} rows, expected {rows}",
                    block.rows()
                )));
            }
        }
        let nnz: usize = blocks.iter().map(|&(_, b)| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for r in 0..rows {
            for &(offset, block) in blocks {
                let (idx, vals) = block.row(r);
                // Numeric and one-hot blocks emit at most one pair per row;
                // a direct push skips the extend machinery on the hot path.
                if let ([i], [v]) = (idx, vals) {
                    indices.push(i + offset);
                    values.push(*v);
                } else {
                    indices.extend(idx.iter().map(|&i| i + offset));
                    values.extend_from_slice(vals);
                }
            }
            indptr.push(indices.len());
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Returns a new matrix containing the selected rows, in order.
    pub fn select_rows(&self, selection: &[usize]) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(selection.len() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for &r in selection {
            let (idx, vals) = self.row(r);
            indices.extend_from_slice(idx);
            values.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: selection.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }
}

/// Incremental row-major CSR constructor.
///
/// The allocation-free counterpart of collecting `SparseVec`s and calling
/// [`CsrMatrix::from_sparse_rows`]: rows are appended straight into the
/// final index/value arrays from a caller-owned scratch pair buffer, so a
/// transform loop performs no per-row allocations (the scratch buffer's
/// capacity — pre-sized by the previous row's nnz — is retained across
/// rows).
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a builder for matrices with `cols` columns.
    pub fn new(cols: usize) -> Self {
        Self::with_capacity(cols, 0, 0)
    }

    /// Starts a builder with row/nnz capacity reserved up front.
    pub fn with_capacity(cols: usize, rows: usize, nnz: usize) -> Self {
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        Self {
            cols,
            indptr,
            indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Appends one row from unsorted `(column, value)` pairs, with the
    /// merge semantics of [`SparseVec::from_pairs`] (duplicates summed,
    /// zeros dropped, out-of-bounds rejected). `pairs` is cleared on
    /// success so it can be reused as the next row's scratch buffer.
    pub fn push_row_pairs(&mut self, pairs: &mut Vec<(u32, f64)>) -> Result<(), ShapeError> {
        merge_pairs_into(pairs, self.cols, &mut self.indices, &mut self.values)?;
        self.indptr.push(self.indices.len());
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Finalizes the matrix.
    pub fn finish(self) -> CsrMatrix {
        CsrMatrix {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(dim: usize, pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(dim, pairs.to_vec()).unwrap()
    }

    #[test]
    fn from_pairs_sorts_and_merges_duplicates() {
        let v = sv(10, &[(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(v.indices(), &[2, 5]);
        assert_eq!(v.values(), &[2.0, 4.0]);
    }

    #[test]
    fn from_pairs_drops_cancelled_entries() {
        let v = sv(4, &[(1, 1.0), (1, -1.0), (2, 2.0)]);
        assert_eq!(v.indices(), &[2]);
    }

    #[test]
    fn from_pairs_rejects_out_of_bounds() {
        assert!(SparseVec::from_pairs(3, vec![(3, 1.0)]).is_err());
    }

    #[test]
    fn dot_dense_matches_dense_dot() {
        let v = sv(4, &[(0, 1.0), (3, 2.0)]);
        assert_eq!(v.dot_dense(&[1.0, 10.0, 10.0, 0.5]), 2.0);
    }

    #[test]
    fn to_dense_round_trip() {
        let v = sv(3, &[(1, 5.0)]);
        assert_eq!(v.to_dense(), vec![0.0, 5.0, 0.0]);
    }

    #[test]
    fn csr_from_rows_and_back() {
        let rows = vec![sv(3, &[(0, 1.0)]), sv(3, &[(1, 2.0), (2, 3.0)])];
        let m = CsrMatrix::from_sparse_rows(&rows).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.nnz(), 3);
        let d = m.to_dense();
        assert_eq!(d.data(), &[1.0, 0.0, 0.0, 0.0, 2.0, 3.0]);
    }

    #[test]
    fn csr_rejects_mismatched_row_dims() {
        let rows = vec![sv(3, &[]), sv(4, &[])];
        assert!(CsrMatrix::from_sparse_rows(&rows).is_err());
    }

    #[test]
    fn csr_matmul_dense_matches_dense_matmul() {
        let rows = vec![sv(3, &[(0, 1.0), (2, 2.0)]), sv(3, &[(1, 3.0)])];
        let m = CsrMatrix::from_sparse_rows(&rows).unwrap();
        let w = DenseMatrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let got = m.matmul_dense(&w).unwrap();
        let expected = m.to_dense().matmul(&w).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn csr_matmul_rejects_bad_shapes() {
        let m = CsrMatrix::from_sparse_rows(&[sv(3, &[])]).unwrap();
        assert!(m.matmul_dense(&DenseMatrix::zeros(4, 2)).is_err());
    }

    #[test]
    fn csr_from_dense_drops_zeros() {
        let d = DenseMatrix::from_vec(2, 2, vec![0.0, 1.0, 2.0, 0.0]).unwrap();
        let m = CsrMatrix::from_dense(&d);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.to_dense(), d);
    }

    #[test]
    fn csr_select_rows_reorders() {
        let rows = vec![sv(2, &[(0, 1.0)]), sv(2, &[(1, 2.0)])];
        let m = CsrMatrix::from_sparse_rows(&rows).unwrap();
        let s = m.select_rows(&[1, 0, 1]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0).0, &[1]);
        assert_eq!(s.row(1).0, &[0]);
    }

    #[test]
    fn csr_builder_matches_from_sparse_rows() {
        let row_pairs: [&[(u32, f64)]; 3] = [&[(2, 1.0), (0, 2.0)], &[], &[(1, 3.0), (1, 4.0)]];
        let rows: Vec<SparseVec> = row_pairs.iter().map(|p| sv(3, p)).collect();
        let expected = CsrMatrix::from_sparse_rows(&rows).unwrap();
        let mut b = CsrBuilder::with_capacity(3, 3, 4);
        let mut scratch = Vec::new();
        for p in row_pairs {
            scratch.extend_from_slice(p);
            b.push_row_pairs(&mut scratch).unwrap();
            assert!(scratch.is_empty());
        }
        assert_eq!(b.rows(), 3);
        assert_eq!(b.finish(), expected);
    }

    #[test]
    fn csr_builder_rejects_out_of_bounds_without_corrupting_state() {
        let mut b = CsrBuilder::new(2);
        let mut scratch = vec![(1, 1.0)];
        b.push_row_pairs(&mut scratch).unwrap();
        scratch.extend([(0, 1.0), (5, 1.0)]);
        assert!(b.push_row_pairs(&mut scratch).is_err());
        let m = {
            scratch.clear();
            scratch.push((0, 2.0));
            b.push_row_pairs(&mut scratch).unwrap();
            b.finish()
        };
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), (&[1u32][..], &[1.0][..]));
        assert_eq!(m.row(1), (&[0u32][..], &[2.0][..]));
    }

    #[test]
    fn csr_column_dense_extracts() {
        let rows = vec![sv(2, &[(1, 2.0)]), sv(2, &[(0, 3.0)])];
        let m = CsrMatrix::from_sparse_rows(&rows).unwrap();
        assert_eq!(m.column_dense(1), vec![2.0, 0.0]);
    }
}
