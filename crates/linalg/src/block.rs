//! Per-column sparse blocks for column-major featurization.
//!
//! A [`ColumnBlock`] holds the encoded features of *one* dataframe column
//! for every row, with **block-local** indices in `[0, width)`. Feature
//! pipelines encode each column into its own block and stitch the final
//! CSR matrix with [`CsrMatrix::hstack_blocks`], which shifts each block
//! by its horizontal offset. Because blocks are position-independent and
//! immutable, they can be cached and shared (`Arc<ColumnBlock>`) across
//! the many copy-on-write frame copies that Algorithm 1 scores.
//!
//! [`CsrMatrix::hstack_blocks`]: crate::CsrMatrix::hstack_blocks

use crate::{shape_err, ShapeError};

/// Iterates `0..n_rows` in contiguous chunks of at most `block` rows — the
/// shared row-blocking helper behind the blocked inference kernels (tree
/// ensembles walk all trees over one cache-sized row block before moving
/// to the next). A `block` of zero is treated as one.
pub fn row_blocks(n_rows: usize, block: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let block = block.max(1);
    (0..n_rows)
        .step_by(block)
        .map(move |start| start..(start + block).min(n_rows))
}

/// Sorts `pairs` by index, merges duplicates, drops zeros and appends the
/// result to `indices`/`values`, validating every index against `bound`.
///
/// This is the single merge routine behind [`SparseVec::from_pairs`],
/// [`ColumnBlock::push_row_pairs`] and [`CsrBuilder::push_row_pairs`], so
/// the three construction paths agree bit-for-bit on duplicate handling.
/// `pairs` is cleared on success so callers can reuse it as a scratch
/// buffer (its capacity — sized by the previous row — is retained).
///
/// [`SparseVec::from_pairs`]: crate::SparseVec::from_pairs
/// [`CsrBuilder::push_row_pairs`]: crate::CsrBuilder::push_row_pairs
pub(crate) fn merge_pairs_into(
    pairs: &mut Vec<(u32, f64)>,
    bound: usize,
    indices: &mut Vec<u32>,
    values: &mut Vec<f64>,
) -> Result<(), ShapeError> {
    pairs.sort_unstable_by_key(|&(i, _)| i);
    let start = indices.len();
    for &(i, v) in pairs.iter() {
        if i as usize >= bound {
            indices.truncate(start);
            values.truncate(start);
            return Err(shape_err(format!(
                "index {i} out of bounds for dim {bound}"
            )));
        }
        if let Some(&last) = indices.last() {
            if indices.len() > start && last == i {
                *values.last_mut().expect("values parallel to indices") += v;
                continue;
            }
        }
        indices.push(i);
        values.push(v);
    }
    // Collisions may cancel out exactly; compact away resulting zeros.
    if values[start..].contains(&0.0) {
        let mut write = start;
        for read in start..indices.len() {
            if values[read] != 0.0 {
                indices[write] = indices[read];
                values[write] = values[read];
                write += 1;
            }
        }
        indices.truncate(write);
        values.truncate(write);
    }
    pairs.clear();
    Ok(())
}

/// The encoded features of one dataframe column, all rows, in CSR layout
/// with block-local indices in `[0, width)`.
///
/// Built row-by-row via [`ColumnBlock::push_row_pairs`]; assembled into a
/// full feature matrix with [`CsrMatrix::hstack_blocks`].
///
/// [`CsrMatrix::hstack_blocks`]: crate::CsrMatrix::hstack_blocks
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBlock {
    width: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl ColumnBlock {
    /// An empty block (zero rows) of the given local dimensionality.
    pub fn new(width: usize) -> Self {
        Self {
            width,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// An empty block with row/nnz capacity reserved up front.
    pub fn with_capacity(width: usize, rows: usize, nnz: usize) -> Self {
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0);
        Self {
            width,
            indptr,
            indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
        }
    }

    /// Appends one row from unsorted block-local `(index, value)` pairs.
    ///
    /// Same semantics as [`SparseVec::from_pairs`]: duplicates are summed,
    /// zeros dropped, out-of-bounds indices rejected. `pairs` is cleared on
    /// success (scratch-buffer reuse).
    ///
    /// [`SparseVec::from_pairs`]: crate::SparseVec::from_pairs
    pub fn push_row_pairs(&mut self, pairs: &mut Vec<(u32, f64)>) -> Result<(), ShapeError> {
        merge_pairs_into(pairs, self.width, &mut self.indices, &mut self.values)?;
        self.indptr.push(self.indices.len());
        Ok(())
    }

    /// Appends an all-zero row.
    pub fn push_empty_row(&mut self) {
        self.indptr.push(self.indices.len());
    }

    /// Number of rows encoded so far.
    #[inline]
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Block-local dimensionality (the encoder's output width).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of stored non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Sorted block-local indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn block_accumulates_rows() {
        let mut b = ColumnBlock::new(4);
        let mut pairs = vec![(2, 1.0), (0, 3.0)];
        b.push_row_pairs(&mut pairs).unwrap();
        assert!(pairs.is_empty(), "scratch buffer must be cleared");
        b.push_empty_row();
        assert_eq!(b.rows(), 2);
        assert_eq!(b.nnz(), 2);
        assert_eq!(b.row(0), (&[0u32, 2][..], &[3.0, 1.0][..]));
        assert_eq!(b.row(1), (&[][..], &[][..]));
    }

    #[test]
    fn block_merges_duplicates_and_drops_zeros() {
        let mut b = ColumnBlock::new(4);
        let mut pairs = vec![(1, 1.0), (1, -1.0), (3, 2.0), (3, 3.0)];
        b.push_row_pairs(&mut pairs).unwrap();
        assert_eq!(b.row(0), (&[3u32][..], &[5.0][..]));
    }

    #[test]
    fn block_rejects_out_of_bounds() {
        let mut b = ColumnBlock::new(2);
        let mut pairs = vec![(2, 1.0)];
        assert!(b.push_row_pairs(&mut pairs).is_err());
        // A failed push must not leave a partial row behind.
        assert_eq!(b.rows(), 0);
        assert_eq!(b.nnz(), 0);
    }

    #[test]
    fn hstack_blocks_matches_row_major_assembly() {
        // Two blocks side by side: widths 2 and 3, offsets 0 and 2.
        let mut a = ColumnBlock::new(2);
        let mut b = ColumnBlock::new(3);
        let mut pairs = vec![(1, 1.0)];
        a.push_row_pairs(&mut pairs).unwrap();
        a.push_empty_row();
        pairs.extend([(0, 2.0), (2, 3.0)]);
        b.push_row_pairs(&mut pairs).unwrap();
        pairs.push((1, 4.0));
        b.push_row_pairs(&mut pairs).unwrap();

        let m = CsrMatrix::hstack_blocks(2, 5, &[(0, &a), (2, &b)]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 5);
        let d = m.to_dense();
        assert_eq!(
            d.data(),
            &[0.0, 1.0, 2.0, 0.0, 3.0, 0.0, 0.0, 0.0, 4.0, 0.0]
        );
    }

    #[test]
    fn hstack_blocks_rejects_row_mismatch() {
        let a = ColumnBlock::new(1);
        let mut b = ColumnBlock::new(1);
        b.push_empty_row();
        assert!(CsrMatrix::hstack_blocks(1, 2, &[(0, &a), (1, &b)]).is_err());
    }

    #[test]
    fn hstack_blocks_rejects_overlap_and_overflow() {
        let mut a = ColumnBlock::new(2);
        a.push_empty_row();
        let mut b = ColumnBlock::new(2);
        b.push_empty_row();
        // Overlapping: block at offset 1 starts inside block [0, 2).
        assert!(CsrMatrix::hstack_blocks(1, 4, &[(0, &a), (1, &b)]).is_err());
        // Out of bounds: offset 3 + width 2 > 4 total columns.
        assert!(CsrMatrix::hstack_blocks(1, 4, &[(0, &a), (3, &b)]).is_err());
        // Unsorted offsets are rejected rather than silently reordered.
        assert!(CsrMatrix::hstack_blocks(1, 4, &[(2, &b), (0, &a)]).is_err());
    }

    #[test]
    fn hstack_no_blocks_yields_empty_columns() {
        let m = CsrMatrix::hstack_blocks(3, 0, &[]).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
