//! The [`DataFrame`] type and its builder.

use crate::{CellValue, Column, ColumnType, Field, FrameError, Schema};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// A batch of labeled relational tuples with copy-on-write columnar storage.
///
/// Labels are class indices into [`DataFrame::label_names`]. The label column
/// is intentionally *not* part of the schema: the black box model and the
/// performance predictor only ever see the attribute columns, while the
/// experiment harness uses the labels to compute true scores.
///
/// Columns are reference-counted: cloning a frame shares every column, and
/// [`DataFrame::column_mut`] materializes a private copy of just the column
/// being written. Error generators clone the input frame and then mutate a
/// few columns, so the hundreds of corrupted copies Algorithm 1 creates
/// share the storage of every untouched column.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Arc<Column>>,
    labels: Vec<u32>,
    label_names: Vec<String>,
}

/// Stable identity handle for a column's physical storage, derived from the
/// address of its `Arc`-backed payload.
///
/// Two frames report the same `ColumnId` for a column position exactly when
/// they share that column's storage (same `Arc` allocation). Copy-on-write
/// makes the handle mutation-safe *for pinned columns*: as long as some
/// other owner holds the `Arc` (e.g. an encoding cache pinning the payload
/// it encoded), any write through [`DataFrame::column_mut`] observes a
/// shared refcount, materializes a fresh allocation and therefore yields a
/// fresh `ColumnId` — and the pinned allocation cannot be freed and reused
/// for a different column while the pin lives. An id compared *without*
/// holding the corresponding `Arc` (see [`DataFrame::column_shared`]) is
/// meaningless: the allocation may have been dropped and its address
/// recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnId(usize);

impl DataFrame {
    /// Builds a frame, validating that all columns and the label vector have
    /// equal lengths, columns match the schema types, and labels index into
    /// `label_names`.
    pub fn new(
        schema: Schema,
        columns: Vec<Column>,
        labels: Vec<u32>,
        label_names: Vec<String>,
    ) -> Result<Self, FrameError> {
        if schema.len() != columns.len() {
            return Err(FrameError::Invalid(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        let n_rows = labels.len();
        for (i, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(FrameError::LengthMismatch(format!(
                    "column '{}' has {} rows, labels have {}",
                    schema.field(i).name,
                    col.len(),
                    n_rows
                )));
            }
            if col.ty() != schema.field(i).ty {
                return Err(FrameError::TypeMismatch(format!(
                    "column '{}' declared {:?} but stores {:?}",
                    schema.field(i).name,
                    schema.field(i).ty,
                    col.ty()
                )));
            }
        }
        if label_names.is_empty() && n_rows > 0 {
            return Err(FrameError::Invalid("label_names must not be empty".into()));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l as usize >= label_names.len()) {
            return Err(FrameError::Invalid(format!(
                "label {} out of range for {} classes",
                bad,
                label_names.len()
            )));
        }
        Ok(Self {
            schema,
            columns: columns.into_iter().map(Arc::new).collect(),
            labels,
            label_names,
        })
    }

    /// Number of tuples.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Number of attribute columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The frame's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Mutable column at position `i` (used by error generators, which
    /// always operate on a cloned frame). Copy-on-write: if the column is
    /// shared with another frame, a private copy is materialized first.
    pub fn column_mut(&mut self, i: usize) -> &mut Column {
        Arc::make_mut(&mut self.columns[i])
    }

    /// Whether `self` and `other` share the physical storage of column `i`
    /// (copy-on-write bookkeeping; used by tests and memory accounting).
    pub fn shares_column_storage(&self, other: &DataFrame, i: usize) -> bool {
        Arc::ptr_eq(&self.columns[i], &other.columns[i])
    }

    /// Identity handle of column `i`'s physical storage. See [`ColumnId`]
    /// for the validity rules — callers that key long-lived state on the id
    /// must also pin the payload via [`DataFrame::column_shared`].
    pub fn column_id(&self, i: usize) -> ColumnId {
        ColumnId(Arc::as_ptr(&self.columns[i]) as usize)
    }

    /// A shared handle to column `i`'s payload. Holding it pins the
    /// allocation, which keeps the matching [`ColumnId`] valid: the frame's
    /// copy-on-write writes will copy instead of mutating in place, and the
    /// address cannot be recycled.
    pub fn column_shared(&self, i: usize) -> Arc<Column> {
        Arc::clone(&self.columns[i])
    }

    /// A clone that shares no column storage with `self` — every column is
    /// physically copied. Used by tests comparing copy-on-write behaviour
    /// against eager copies.
    pub fn deep_clone(&self) -> DataFrame {
        DataFrame {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(Column::clone(c)))
                .collect(),
            labels: self.labels.clone(),
            label_names: self.label_names.clone(),
        }
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, FrameError> {
        let i = self
            .schema
            .index_of(name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_string()))?;
        Ok(&self.columns[i])
    }

    /// Class labels, one per tuple.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// Human-readable class names; `labels` index into this.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.label_names.len()
    }

    /// Labels as `usize` (convenience for metric computations).
    pub fn labels_usize(&self) -> Vec<usize> {
        self.labels.iter().map(|&l| l as usize).collect()
    }

    /// Swaps the cell values of two columns at `row`, applying the coercion
    /// rules of [`Column::set_cell_coercing`] in both directions.
    pub fn swap_cells(&mut self, col_a: usize, col_b: usize, row: usize) {
        let a = self.columns[col_a].cell(row);
        let b = self.columns[col_b].cell(row);
        self.column_mut(col_a).set_cell_coercing(row, b);
        self.column_mut(col_b).set_cell_coercing(row, a);
    }

    /// Returns a new frame containing the selected rows, in order. Indices
    /// may repeat (sampling with replacement).
    ///
    /// Selecting every row in its original order (the identity selection)
    /// shares column storage with `self` instead of copying.
    pub fn select_rows(&self, indices: &[usize]) -> DataFrame {
        let identity =
            indices.len() == self.n_rows() && indices.iter().enumerate().all(|(i, &j)| i == j);
        if identity {
            return self.clone();
        }
        DataFrame {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.select(indices)))
                .collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            label_names: self.label_names.clone(),
        }
    }

    /// Randomly partitions the rows into two disjoint frames, the first
    /// containing `round(frac * n_rows)` rows.
    pub fn split_frac(&self, frac: f64, rng: &mut impl Rng) -> (DataFrame, DataFrame) {
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        let cut = ((self.n_rows() as f64) * frac).round() as usize;
        let cut = cut.min(self.n_rows());
        (self.select_rows(&idx[..cut]), self.select_rows(&idx[cut..]))
    }

    /// Draws `n` rows uniformly without replacement (all rows if `n` exceeds
    /// the frame size).
    pub fn sample_n(&self, n: usize, rng: &mut impl Rng) -> DataFrame {
        let mut idx: Vec<usize> = (0..self.n_rows()).collect();
        idx.shuffle(rng);
        idx.truncate(n.min(self.n_rows()));
        self.select_rows(&idx)
    }

    /// Returns a class-balanced frame by downsampling every class to the
    /// size of the rarest class (the paper resamples to balanced classes to
    /// make accuracy interpretable).
    pub fn balance_classes(&self, rng: &mut impl Rng) -> DataFrame {
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.n_classes()];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l as usize].push(i);
        }
        let min = per_class
            .iter()
            .map(Vec::len)
            .filter(|&n| n > 0)
            .min()
            .unwrap_or(0);
        let mut selected = Vec::with_capacity(min * self.n_classes());
        for class_rows in &mut per_class {
            class_rows.shuffle(rng);
            selected.extend_from_slice(&class_rows[..min.min(class_rows.len())]);
        }
        selected.shuffle(rng);
        self.select_rows(&selected)
    }

    /// Cell at `(row, col)` as a [`CellValue`].
    pub fn cell(&self, row: usize, col: usize) -> CellValue {
        self.columns[col].cell(row)
    }

    /// Total number of missing cells across all columns.
    pub fn total_null_count(&self) -> usize {
        self.columns.iter().map(|c| c.null_count()).sum()
    }
}

/// Incremental row-oriented builder used by the dataset generators.
#[derive(Debug)]
pub struct DataFrameBuilder {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<u32>,
    label_names: Vec<String>,
}

impl DataFrameBuilder {
    /// Starts a builder for the given schema and class names.
    pub fn new(schema: Schema, label_names: Vec<String>) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.ty))
            .collect();
        Self {
            schema,
            columns,
            labels: Vec::new(),
            label_names,
        }
    }

    /// Appends one tuple. `cells` must align with the schema; values are
    /// coerced per [`Column::set_cell_coercing`].
    pub fn push_row(&mut self, cells: Vec<CellValue>, label: u32) -> Result<(), FrameError> {
        if cells.len() != self.schema.len() {
            return Err(FrameError::LengthMismatch(format!(
                "row has {} cells, schema expects {}",
                cells.len(),
                self.schema.len()
            )));
        }
        let row = self.labels.len();
        for (col, cell) in self.columns.iter_mut().zip(cells) {
            // Grow the column with a placeholder, then coerce into it.
            match col {
                Column::Numeric(v) => v.push(None),
                Column::Categorical(v) => v.push(None),
                Column::Text(v) => v.push(None),
                Column::Image(v) => v.push(None),
            }
            col.set_cell_coercing(row, cell);
        }
        self.labels.push(label);
        Ok(())
    }

    /// Finalizes the frame.
    pub fn finish(self) -> Result<DataFrame, FrameError> {
        DataFrame::new(self.schema, self.columns, self.labels, self.label_names)
    }
}

/// Convenience constructor for test fixtures: a small frame with one numeric
/// and one categorical column.
pub fn toy_frame(n: usize) -> DataFrame {
    let schema = Schema::new(vec![
        Field::new("x", ColumnType::Numeric),
        Field::new("c", ColumnType::Categorical),
    ])
    .expect("valid schema");
    let mut b = DataFrameBuilder::new(schema, vec!["no".into(), "yes".into()]);
    for i in 0..n {
        b.push_row(
            vec![
                CellValue::Num(i as f64),
                CellValue::Cat(if i % 2 == 0 { "even" } else { "odd" }.into()),
            ],
            (i % 2) as u32,
        )
        .expect("row matches schema");
    }
    b.finish().expect("valid frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_validates_column_count() {
        let schema = Schema::new(vec![Field::new("x", ColumnType::Numeric)]).unwrap();
        let err = DataFrame::new(schema, vec![], vec![], vec!["a".into()]);
        assert!(err.is_err());
    }

    #[test]
    fn new_validates_lengths() {
        let schema = Schema::new(vec![Field::new("x", ColumnType::Numeric)]).unwrap();
        let err = DataFrame::new(
            schema,
            vec![Column::Numeric(vec![Some(1.0)])],
            vec![0, 1],
            vec!["a".into(), "b".into()],
        );
        assert!(matches!(err, Err(FrameError::LengthMismatch(_))));
    }

    #[test]
    fn new_validates_column_types() {
        let schema = Schema::new(vec![Field::new("x", ColumnType::Numeric)]).unwrap();
        let err = DataFrame::new(
            schema,
            vec![Column::Text(vec![Some("hi".into())])],
            vec![0],
            vec!["a".into()],
        );
        assert!(matches!(err, Err(FrameError::TypeMismatch(_))));
    }

    #[test]
    fn new_validates_label_range() {
        let schema = Schema::new(vec![Field::new("x", ColumnType::Numeric)]).unwrap();
        let err = DataFrame::new(
            schema,
            vec![Column::Numeric(vec![Some(1.0)])],
            vec![5],
            vec!["a".into()],
        );
        assert!(err.is_err());
    }

    #[test]
    fn toy_frame_shape() {
        let df = toy_frame(10);
        assert_eq!(df.n_rows(), 10);
        assert_eq!(df.n_cols(), 2);
        assert_eq!(df.n_classes(), 2);
    }

    #[test]
    fn split_frac_partitions_rows() {
        let df = toy_frame(100);
        let mut rng = StdRng::seed_from_u64(1);
        let (a, b) = df.split_frac(0.3, &mut rng);
        assert_eq!(a.n_rows(), 30);
        assert_eq!(b.n_rows(), 70);
    }

    #[test]
    fn sample_n_caps_at_frame_size() {
        let df = toy_frame(5);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(df.sample_n(10, &mut rng).n_rows(), 5);
        assert_eq!(df.sample_n(3, &mut rng).n_rows(), 3);
    }

    #[test]
    fn sample_n_oversized_returns_every_row_exactly_once() {
        // Regression: n > n_rows must be a permutation of the full frame —
        // all rows present, none duplicated — not a short or padded sample.
        let df = toy_frame(7);
        let mut rng = StdRng::seed_from_u64(9);
        for n in [7, 8, 100, usize::MAX] {
            let s = df.sample_n(n, &mut rng);
            assert_eq!(s.n_rows(), 7, "n={n}");
            let mut labels: Vec<u32> = s.labels().to_vec();
            labels.sort_unstable();
            let mut want: Vec<u32> = df.labels().to_vec();
            want.sort_unstable();
            assert_eq!(labels, want, "n={n}");
        }
        // Degenerate frames stay well-defined.
        let empty = df.sample_n(0, &mut rng);
        assert_eq!(empty.n_rows(), 0);
        assert_eq!(empty.n_cols(), df.n_cols());
    }

    #[test]
    fn balance_classes_equalizes_counts() {
        // 8 even (class 0), but drop some to make it unbalanced: build custom.
        let schema = Schema::new(vec![Field::new("x", ColumnType::Numeric)]).unwrap();
        let mut b = DataFrameBuilder::new(schema, vec!["a".into(), "b".into()]);
        for i in 0..30 {
            b.push_row(vec![CellValue::Num(i as f64)], u32::from(i < 10))
                .unwrap();
        }
        let df = b.finish().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let bal = df.balance_classes(&mut rng);
        let ones = bal.labels().iter().filter(|&&l| l == 1).count();
        let zeros = bal.labels().iter().filter(|&&l| l == 0).count();
        assert_eq!(ones, 10);
        assert_eq!(zeros, 10);
    }

    #[test]
    fn swap_cells_coerces_both_directions() {
        let mut df = toy_frame(4);
        df.swap_cells(0, 1, 0); // numeric "0" <-> categorical "even"
                                // numeric column got "even" -> unparseable -> null
        assert_eq!(df.column(0).as_numeric().unwrap()[0], None);
        // categorical column got 0.0 -> "0"
        assert_eq!(
            df.column(1).as_categorical().unwrap()[0],
            Some("0".to_string())
        );
    }

    #[test]
    fn select_rows_preserves_labels() {
        let df = toy_frame(6);
        let s = df.select_rows(&[5, 0]);
        assert_eq!(s.labels(), &[1, 0]);
        assert_eq!(s.column(0).as_numeric().unwrap()[0], Some(5.0));
    }

    #[test]
    fn column_by_name_errors_on_unknown() {
        let df = toy_frame(2);
        assert!(df.column_by_name("x").is_ok());
        assert!(matches!(
            df.column_by_name("nope"),
            Err(FrameError::UnknownColumn(_))
        ));
    }

    #[test]
    fn builder_rejects_wrong_arity() {
        let schema = Schema::new(vec![Field::new("x", ColumnType::Numeric)]).unwrap();
        let mut b = DataFrameBuilder::new(schema, vec!["a".into()]);
        assert!(b.push_row(vec![], 0).is_err());
    }

    #[test]
    fn total_null_count_sums_columns() {
        let mut df = toy_frame(3);
        df.column_mut(0).set_null(1);
        df.column_mut(1).set_null(2);
        assert_eq!(df.total_null_count(), 2);
    }

    #[test]
    fn clone_shares_all_column_storage() {
        let df = toy_frame(16);
        let copy = df.clone();
        for col in 0..df.n_cols() {
            assert!(df.shares_column_storage(&copy, col));
        }
    }

    #[test]
    fn column_mut_unshares_only_the_written_column() {
        let df = toy_frame(16);
        let mut copy = df.clone();
        copy.column_mut(0).set_null(3);
        assert!(!df.shares_column_storage(&copy, 0));
        assert!(df.shares_column_storage(&copy, 1));
        // The original is untouched by the copy's write.
        assert_eq!(df.column(0).null_count(), 0);
        assert_eq!(copy.column(0).null_count(), 1);
    }

    #[test]
    fn deep_clone_shares_nothing_but_is_equal() {
        let df = toy_frame(8);
        let deep = df.deep_clone();
        assert_eq!(df, deep);
        for col in 0..df.n_cols() {
            assert!(!df.shares_column_storage(&deep, col));
        }
    }

    #[test]
    fn column_id_tracks_storage_identity() {
        let df = toy_frame(8);
        let copy = df.clone();
        assert_eq!(df.column_id(0), copy.column_id(0));
        assert_ne!(df.column_id(0), df.column_id(1));
        // deep_clone has distinct storage and therefore distinct ids.
        let deep = df.deep_clone();
        assert_ne!(df.column_id(0), deep.column_id(0));
    }

    #[test]
    fn pinned_column_id_is_invalidated_by_any_write() {
        let df = toy_frame(8);
        let mut solo = df.deep_clone();
        drop(df);
        // `solo` uniquely owns its columns, so an unpinned write may mutate
        // in place and keep the id — which is why ids are only meaningful
        // while the payload is pinned.
        let pin = solo.column_shared(0);
        let before = solo.column_id(0);
        solo.column_mut(0).set_null(0);
        assert_ne!(
            solo.column_id(0),
            before,
            "write to a pinned column must materialize fresh storage"
        );
        // The pin still sees the pre-write payload.
        assert_eq!(pin.null_count(), 0);
        assert_eq!(solo.column(0).null_count(), 1);
    }

    #[test]
    fn identity_selection_shares_storage() {
        let df = toy_frame(5);
        let idx: Vec<usize> = (0..5).collect();
        let same = df.select_rows(&idx);
        assert_eq!(same, df);
        for col in 0..df.n_cols() {
            assert!(df.shares_column_storage(&same, col));
        }
        // A permuted selection must copy.
        let perm = df.select_rows(&[4, 3, 2, 1, 0]);
        assert!(!df.shares_column_storage(&perm, 0));
    }
}
