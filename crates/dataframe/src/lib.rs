//! A typed columnar relational data structure with per-cell nullability.
//!
//! This crate is the workspace's stand-in for the pandas DataFrame the paper
//! builds on: black box pipelines consume a [`DataFrame`] of raw relational
//! data, and error generators produce corrupted copies of one. Four column
//! types cover the paper's six datasets:
//!
//! * [`ColumnType::Numeric`] — `f64` with missing values,
//! * [`ColumnType::Categorical`] — string categories with missing values,
//! * [`ColumnType::Text`] — free text (tweets),
//! * [`ColumnType::Image`] — small grayscale images (digits / fashion).
//!
//! Every cell can independently be null, which is what most of the paper's
//! error generators exploit. Frames also carry the label column (`labels`)
//! so the experiment harness can compute *true* scores on serving data; the
//! performance predictor itself never reads it.

mod column;
pub mod csv;
mod frame;
mod schema;

pub use column::{CellValue, Column, ImageData};
pub use csv::{read_csv_file, read_csv_str, write_csv_string, CsvOptions};
pub use frame::{toy_frame, ColumnId, DataFrame, DataFrameBuilder};
pub use schema::{ColumnType, Field, Schema};

/// Errors produced by dataframe construction and access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Column lengths or label length disagree.
    LengthMismatch(String),
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// An operation was applied to a column of the wrong type.
    TypeMismatch(String),
    /// Construction input was structurally invalid.
    Invalid(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LengthMismatch(m) => write!(f, "length mismatch: {m}"),
            FrameError::UnknownColumn(m) => write!(f, "unknown column: {m}"),
            FrameError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            FrameError::Invalid(m) => write!(f, "invalid frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}
