//! Column types, fields and schemas.

use serde::{Deserialize, Serialize};

/// The type of a relational attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// Continuous numeric attribute (`f64`).
    Numeric,
    /// Discrete string-valued attribute.
    Categorical,
    /// Free-text attribute (tokenized downstream by hashing vectorizers).
    Text,
    /// Small grayscale image attribute.
    Image,
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Attribute type.
    pub ty: ColumnType,
}

impl Field {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered collection of fields describing a [`crate::DataFrame`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Builds a schema from fields. Names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Self, crate::FrameError> {
        for i in 0..fields.len() {
            for j in (i + 1)..fields.len() {
                if fields[i].name == fields[j].name {
                    return Err(crate::FrameError::Invalid(format!(
                        "duplicate column name '{}'",
                        fields[i].name
                    )));
                }
            }
        }
        Ok(Self { fields })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Position of the column named `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Indices of all columns with the given type.
    pub fn columns_of_type(&self, ty: ColumnType) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.ty == ty)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of numeric columns.
    pub fn numeric_columns(&self) -> Vec<usize> {
        self.columns_of_type(ColumnType::Numeric)
    }

    /// Indices of categorical columns.
    pub fn categorical_columns(&self) -> Vec<usize> {
        self.columns_of_type(ColumnType::Categorical)
    }

    /// Indices of text columns.
    pub fn text_columns(&self) -> Vec<usize> {
        self.columns_of_type(ColumnType::Text)
    }

    /// Indices of image columns.
    pub fn image_columns(&self) -> Vec<usize> {
        self.columns_of_type(ColumnType::Image)
    }

    /// A deterministic fingerprint of the schema: field order, names and
    /// types all contribute. Persisted artifacts record the fit-time
    /// fingerprint so serving systems can reject frames with a different
    /// shape before any featurization happens.
    ///
    /// FNV-1a over the field list, truncated to 53 bits so the value
    /// survives a round trip through JSON numbers exactly.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        let mut eat = |byte: u8| {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        for field in &self.fields {
            for &b in field.name.as_bytes() {
                eat(b);
            }
            // Separator that cannot occur inside a UTF-8 name, so
            // ("ab", Numeric), ("a", ...) cannot collide by concatenation.
            eat(0xff);
            eat(match field.ty {
                ColumnType::Numeric => 0,
                ColumnType::Categorical => 1,
                ColumnType::Text => 2,
                ColumnType::Image => 3,
            });
        }
        hash & ((1 << 53) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("age", ColumnType::Numeric),
            Field::new("job", ColumnType::Categorical),
            Field::new("bio", ColumnType::Text),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![
            Field::new("a", ColumnType::Numeric),
            Field::new("a", ColumnType::Text),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn index_of_finds_columns() {
        let s = schema();
        assert_eq!(s.index_of("job"), Some(1));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn type_filters() {
        let s = schema();
        assert_eq!(s.numeric_columns(), vec![0]);
        assert_eq!(s.categorical_columns(), vec![1]);
        assert_eq!(s.text_columns(), vec![2]);
        assert!(s.image_columns().is_empty());
    }

    #[test]
    fn fingerprint_is_deterministic_and_shape_sensitive() {
        let s = schema();
        assert_eq!(s.fingerprint(), schema().fingerprint());
        // Renaming, retyping or reordering a field changes the fingerprint.
        let renamed = Schema::new(vec![
            Field::new("age2", ColumnType::Numeric),
            Field::new("job", ColumnType::Categorical),
            Field::new("bio", ColumnType::Text),
        ])
        .unwrap();
        let retyped = Schema::new(vec![
            Field::new("age", ColumnType::Categorical),
            Field::new("job", ColumnType::Categorical),
            Field::new("bio", ColumnType::Text),
        ])
        .unwrap();
        let reordered = Schema::new(vec![
            Field::new("job", ColumnType::Categorical),
            Field::new("age", ColumnType::Numeric),
            Field::new("bio", ColumnType::Text),
        ])
        .unwrap();
        assert_ne!(s.fingerprint(), renamed.fingerprint());
        assert_ne!(s.fingerprint(), retyped.fingerprint());
        assert_ne!(s.fingerprint(), reordered.fingerprint());
    }

    #[test]
    fn fingerprint_fits_in_53_bits() {
        assert!(schema().fingerprint() < (1 << 53));
    }

    #[test]
    fn len_and_field_access() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.field(0).name, "age");
        assert!(!s.is_empty());
    }
}
