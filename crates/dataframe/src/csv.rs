//! Minimal CSV ingestion and export for [`DataFrame`]s.
//!
//! Supports the subset of RFC 4180 that real ML training files use:
//! a header row, quoted fields containing commas/newlines/escaped quotes,
//! and empty / `NA` / `?` / `null` markers for missing cells. Column types
//! are inferred (numeric if every non-missing value parses as `f64`,
//! categorical otherwise; columns can be forced to text). The label column
//! is named explicitly and its distinct values become the class names.

use crate::{CellValue, ColumnType, DataFrame, DataFrameBuilder, Field, FrameError, Schema};
use std::collections::BTreeMap;

/// Options controlling CSV parsing.
#[derive(Debug, Clone, Default)]
pub struct CsvOptions {
    /// Columns to load as free text instead of inferring numeric/categorical.
    pub text_columns: Vec<String>,
}

/// Values treated as missing cells.
fn is_missing(raw: &str) -> bool {
    matches!(raw.trim(), "" | "NA" | "na" | "N/A" | "?" | "null" | "NULL")
}

/// Splits CSV content into records of fields, honouring quotes.
fn parse_records(content: &str) -> Result<Vec<Vec<String>>, FrameError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = content.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    if !(record.len() == 1 && record[0].is_empty()) {
                        records.push(std::mem::take(&mut record));
                    } else {
                        record.clear();
                    }
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Invalid("unterminated quoted field".into()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        if !(record.len() == 1 && record[0].is_empty()) {
            records.push(record);
        }
    }
    Ok(records)
}

/// Parses CSV content into a frame. `label_column` names the target
/// attribute; its distinct values (sorted) become the class names.
pub fn read_csv_str(
    content: &str,
    label_column: &str,
    options: &CsvOptions,
) -> Result<DataFrame, FrameError> {
    let records = parse_records(content)?;
    let Some((header, rows)) = records.split_first() else {
        return Err(FrameError::Invalid("empty CSV input".into()));
    };
    let label_idx = header
        .iter()
        .position(|h| h == label_column)
        .ok_or_else(|| FrameError::UnknownColumn(label_column.to_string()))?;
    for (i, row) in rows.iter().enumerate() {
        if row.len() != header.len() {
            return Err(FrameError::Invalid(format!(
                "record {} has {} fields, header has {}",
                i + 1,
                row.len(),
                header.len()
            )));
        }
        if is_missing(&row[label_idx]) {
            return Err(FrameError::Invalid(format!(
                "record {} is missing its label",
                i + 1
            )));
        }
    }

    // Class dictionary from distinct label values, sorted for determinism.
    let mut label_names: Vec<String> = rows.iter().map(|r| r[label_idx].clone()).collect();
    label_names.sort();
    label_names.dedup();
    let label_ids: BTreeMap<&str, u32> = label_names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), i as u32))
        .collect();

    // Infer per-column types over the feature columns.
    let feature_cols: Vec<usize> = (0..header.len()).filter(|&c| c != label_idx).collect();
    let mut fields = Vec::with_capacity(feature_cols.len());
    for &c in &feature_cols {
        let name = header[c].clone();
        let ty = if options.text_columns.contains(&name) {
            ColumnType::Text
        } else {
            let all_numeric = rows
                .iter()
                .map(|r| r[c].as_str())
                .filter(|v| !is_missing(v))
                .all(|v| v.trim().parse::<f64>().is_ok());
            let any_present = rows.iter().any(|r| !is_missing(&r[c]));
            if all_numeric && any_present {
                ColumnType::Numeric
            } else {
                ColumnType::Categorical
            }
        };
        fields.push(Field::new(name, ty));
    }
    let schema = Schema::new(fields)?;
    let mut builder = DataFrameBuilder::new(schema.clone(), label_names.clone());
    for row in rows {
        let mut cells = Vec::with_capacity(feature_cols.len());
        for (fi, &c) in feature_cols.iter().enumerate() {
            let raw = row[c].as_str();
            let cell = if is_missing(raw) {
                CellValue::Null
            } else {
                match schema.field(fi).ty {
                    ColumnType::Numeric => CellValue::Num(
                        raw.trim()
                            .parse::<f64>()
                            .expect("validated during inference"),
                    ),
                    ColumnType::Categorical => CellValue::Cat(raw.to_string()),
                    ColumnType::Text => CellValue::Text(raw.to_string()),
                    ColumnType::Image => CellValue::Null,
                }
            };
            cells.push(cell);
        }
        let label = label_ids[row[label_idx].as_str()];
        builder.push_row(cells, label)?;
    }
    builder.finish()
}

/// Reads a CSV file from disk.
pub fn read_csv_file(
    path: &std::path::Path,
    label_column: &str,
    options: &CsvOptions,
) -> Result<DataFrame, FrameError> {
    let content = std::fs::read_to_string(path)
        .map_err(|e| FrameError::Invalid(format!("cannot read {}: {e}", path.display())))?;
    read_csv_str(&content, label_column, options)
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes a frame (features + trailing `label` column) as CSV.
/// Image columns are not representable and are rejected.
pub fn write_csv_string(df: &DataFrame) -> Result<String, FrameError> {
    if !df.schema().image_columns().is_empty() {
        return Err(FrameError::TypeMismatch(
            "image columns cannot be exported to CSV".into(),
        ));
    }
    let mut out = String::new();
    for field in df.schema().fields() {
        out.push_str(&quote(&field.name));
        out.push(',');
    }
    out.push_str("label\n");
    for r in 0..df.n_rows() {
        for c in 0..df.n_cols() {
            match df.cell(r, c) {
                CellValue::Null => {}
                CellValue::Num(v) => {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{}", v as i64));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                }
                CellValue::Cat(s) | CellValue::Text(s) => out.push_str(&quote(&s)),
                CellValue::Image(_) => unreachable!("image columns rejected above"),
            }
            out.push(',');
        }
        out.push_str(&quote(&df.label_names()[df.labels()[r] as usize]));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "age,job,note,approved\n34,engineer,fine,yes\n51,clerk,\"ok, good\",no\n,manager,NA,yes\n";

    #[test]
    fn reads_header_and_rows() {
        let df = read_csv_str(
            SAMPLE,
            "approved",
            &CsvOptions {
                text_columns: vec!["note".into()],
            },
        )
        .unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.label_names(), &["no".to_string(), "yes".to_string()]);
        assert_eq!(df.labels(), &[1, 0, 1]);
    }

    #[test]
    fn infers_types_and_missing_values() {
        let df = read_csv_str(SAMPLE, "approved", &CsvOptions::default()).unwrap();
        let schema = df.schema();
        assert_eq!(schema.field(0).ty, ColumnType::Numeric); // age
        assert_eq!(schema.field(1).ty, ColumnType::Categorical); // job
        let ages = df.column(0).as_numeric().unwrap();
        assert_eq!(ages[0], Some(34.0));
        assert_eq!(ages[2], None); // empty cell
        let notes = df.column(2).as_categorical().unwrap();
        assert_eq!(notes[1].as_deref(), Some("ok, good")); // quoted comma
        assert_eq!(notes[2], None); // NA
    }

    #[test]
    fn quoted_fields_with_escaped_quotes() {
        let csv = "x,y\n\"he said \"\"hi\"\"\",1\n";
        let df = read_csv_str(csv, "y", &CsvOptions::default()).unwrap();
        assert_eq!(
            df.column(0).as_categorical().unwrap()[0].as_deref(),
            Some("he said \"hi\"")
        );
    }

    #[test]
    fn rejects_unknown_label_column() {
        assert!(matches!(
            read_csv_str(SAMPLE, "nope", &CsvOptions::default()),
            Err(FrameError::UnknownColumn(_))
        ));
    }

    #[test]
    fn rejects_ragged_records() {
        let csv = "a,b\n1,2\n3\n";
        assert!(read_csv_str(csv, "b", &CsvOptions::default()).is_err());
    }

    #[test]
    fn rejects_missing_labels() {
        let csv = "a,b\n1,\n";
        assert!(read_csv_str(csv, "b", &CsvOptions::default()).is_err());
    }

    #[test]
    fn rejects_unterminated_quote() {
        let csv = "a,b\n\"oops,1\n";
        assert!(read_csv_str(csv, "b", &CsvOptions::default()).is_err());
    }

    #[test]
    fn round_trip_preserves_frame() {
        let df = read_csv_str(SAMPLE, "approved", &CsvOptions::default()).unwrap();
        let csv = write_csv_string(&df).unwrap();
        let back = read_csv_str(&csv, "label", &CsvOptions::default()).unwrap();
        assert_eq!(back.n_rows(), df.n_rows());
        assert_eq!(back.labels(), df.labels());
        assert_eq!(
            back.column(0).as_numeric().unwrap(),
            df.column(0).as_numeric().unwrap()
        );
    }

    #[test]
    fn export_rejects_images() {
        use crate::ImageData;
        let schema = Schema::new(vec![Field::new("img", ColumnType::Image)]).unwrap();
        let mut b = DataFrameBuilder::new(schema, vec!["a".into()]);
        b.push_row(vec![CellValue::Image(ImageData::zeros(2, 2))], 0)
            .unwrap();
        let df = b.finish().unwrap();
        assert!(write_csv_string(&df).is_err());
    }

    #[test]
    fn crlf_line_endings_are_handled() {
        let csv = "a,b\r\n1,yes\r\n2,no\r\n";
        let df = read_csv_str(csv, "b", &CsvOptions::default()).unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.column(0).as_numeric().unwrap()[1], Some(2.0));
    }
}
