//! Column storage and cell values.

use crate::{ColumnType, FrameError};
use serde::{Deserialize, Serialize};

/// A small grayscale image with pixel intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageData {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Row-major pixel intensities, `width * height` values.
    pub pixels: Vec<f64>,
}

impl ImageData {
    /// Creates an all-black image.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Pixel at `(x, y)`; out-of-bounds reads return 0.0.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x]
        } else {
            0.0
        }
    }

    /// Sets pixel `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = v;
        }
    }
}

/// A single cell value, used for type-coercing operations such as the
/// swapped-columns error generator.
#[derive(Debug, Clone, PartialEq)]
pub enum CellValue {
    /// Missing value.
    Null,
    /// Numeric value.
    Num(f64),
    /// Categorical value.
    Cat(String),
    /// Text value.
    Text(String),
    /// Image value.
    Image(ImageData),
}

/// Columnar storage for one attribute. Each variant stores one optional
/// value per row; `None` encodes a missing cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numeric attribute values.
    Numeric(Vec<Option<f64>>),
    /// Categorical attribute values.
    Categorical(Vec<Option<String>>),
    /// Text attribute values.
    Text(Vec<Option<String>>),
    /// Image attribute values.
    Image(Vec<Option<ImageData>>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical(v) => v.len(),
            Column::Text(v) => v.len(),
            Column::Image(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn ty(&self) -> ColumnType {
        match self {
            Column::Numeric(_) => ColumnType::Numeric,
            Column::Categorical(_) => ColumnType::Categorical,
            Column::Text(_) => ColumnType::Text,
            Column::Image(_) => ColumnType::Image,
        }
    }

    /// Number of missing cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Categorical(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Text(v) => v.iter().filter(|c| c.is_none()).count(),
            Column::Image(v) => v.iter().filter(|c| c.is_none()).count(),
        }
    }

    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Column {
        match ty {
            ColumnType::Numeric => Column::Numeric(Vec::new()),
            ColumnType::Categorical => Column::Categorical(Vec::new()),
            ColumnType::Text => Column::Text(Vec::new()),
            ColumnType::Image => Column::Image(Vec::new()),
        }
    }

    /// Cell at `row` as a [`CellValue`].
    pub fn cell(&self, row: usize) -> CellValue {
        match self {
            Column::Numeric(v) => v[row].map_or(CellValue::Null, CellValue::Num),
            Column::Categorical(v) => v[row].clone().map_or(CellValue::Null, CellValue::Cat),
            Column::Text(v) => v[row].clone().map_or(CellValue::Null, CellValue::Text),
            Column::Image(v) => v[row].clone().map_or(CellValue::Null, CellValue::Image),
        }
    }

    /// Stores `value` at `row`, coercing across types where a faithful
    /// coercion exists — mirroring what happens when a buggy pipeline swaps
    /// values between object-typed pandas columns:
    ///
    /// * a number written into a categorical/text column becomes its decimal
    ///   string (an unseen category for downstream one-hot encoders),
    /// * a string written into a numeric column is parsed; unparseable
    ///   strings become missing values,
    /// * anything written into an image column other than an image becomes a
    ///   missing image,
    /// * [`CellValue::Null`] always produces a missing cell.
    pub fn set_cell_coercing(&mut self, row: usize, value: CellValue) {
        match self {
            Column::Numeric(v) => {
                v[row] = match value {
                    CellValue::Num(x) => Some(x),
                    CellValue::Cat(s) | CellValue::Text(s) => s.trim().parse::<f64>().ok(),
                    CellValue::Null | CellValue::Image(_) => None,
                };
            }
            Column::Categorical(v) => {
                v[row] = match value {
                    CellValue::Cat(s) | CellValue::Text(s) => Some(s),
                    CellValue::Num(x) => Some(format_num(x)),
                    CellValue::Null | CellValue::Image(_) => None,
                };
            }
            Column::Text(v) => {
                v[row] = match value {
                    CellValue::Cat(s) | CellValue::Text(s) => Some(s),
                    CellValue::Num(x) => Some(format_num(x)),
                    CellValue::Null | CellValue::Image(_) => None,
                };
            }
            Column::Image(v) => {
                v[row] = match value {
                    CellValue::Image(img) => Some(img),
                    _ => None,
                };
            }
        }
    }

    /// Sets the cell at `row` to missing.
    pub fn set_null(&mut self, row: usize) {
        self.set_cell_coercing(row, CellValue::Null);
    }

    /// Returns a new column containing the selected rows, in order.
    pub fn select(&self, indices: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(indices.iter().map(|&i| v[i]).collect()),
            Column::Categorical(v) => {
                Column::Categorical(indices.iter().map(|&i| v[i].clone()).collect())
            }
            Column::Text(v) => Column::Text(indices.iter().map(|&i| v[i].clone()).collect()),
            Column::Image(v) => Column::Image(indices.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Borrows the numeric values, failing on other column types.
    pub fn as_numeric(&self) -> Result<&[Option<f64>], FrameError> {
        match self {
            Column::Numeric(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected numeric column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Mutably borrows the numeric values, failing on other column types.
    pub fn as_numeric_mut(&mut self) -> Result<&mut Vec<Option<f64>>, FrameError> {
        match self {
            Column::Numeric(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected numeric column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Borrows the categorical values, failing on other column types.
    pub fn as_categorical(&self) -> Result<&[Option<String>], FrameError> {
        match self {
            Column::Categorical(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected categorical column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Mutably borrows the categorical values, failing on other column types.
    pub fn as_categorical_mut(&mut self) -> Result<&mut Vec<Option<String>>, FrameError> {
        match self {
            Column::Categorical(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected categorical column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Borrows the text values, failing on other column types.
    pub fn as_text(&self) -> Result<&[Option<String>], FrameError> {
        match self {
            Column::Text(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected text column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Mutably borrows the text values, failing on other column types.
    pub fn as_text_mut(&mut self) -> Result<&mut Vec<Option<String>>, FrameError> {
        match self {
            Column::Text(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected text column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Borrows the image values, failing on other column types.
    pub fn as_image(&self) -> Result<&[Option<ImageData>], FrameError> {
        match self {
            Column::Image(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected image column, found {:?}",
                other.ty()
            ))),
        }
    }

    /// Mutably borrows the image values, failing on other column types.
    pub fn as_image_mut(&mut self) -> Result<&mut Vec<Option<ImageData>>, FrameError> {
        match self {
            Column::Image(v) => Ok(v),
            other => Err(FrameError::TypeMismatch(format!(
                "expected image column, found {:?}",
                other.ty()
            ))),
        }
    }
}

/// Renders a number the way a CSV round-trip would: integers without a
/// decimal point, everything else in shortest form.
fn format_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_get_set_in_bounds() {
        let mut img = ImageData::zeros(4, 3);
        img.set(2, 1, 0.5);
        assert_eq!(img.get(2, 1), 0.5);
        assert_eq!(img.get(3, 2), 0.0);
    }

    #[test]
    fn image_out_of_bounds_is_safe() {
        let mut img = ImageData::zeros(2, 2);
        img.set(5, 5, 1.0);
        assert_eq!(img.get(5, 5), 0.0);
    }

    #[test]
    fn null_count_per_variant() {
        let c = Column::Numeric(vec![Some(1.0), None, Some(2.0)]);
        assert_eq!(c.null_count(), 1);
        let c = Column::Categorical(vec![None, None]);
        assert_eq!(c.null_count(), 2);
    }

    #[test]
    fn coerce_number_into_categorical_becomes_string() {
        let mut c = Column::Categorical(vec![Some("a".into())]);
        c.set_cell_coercing(0, CellValue::Num(42.0));
        assert_eq!(c.as_categorical().unwrap()[0], Some("42".into()));
    }

    #[test]
    fn coerce_parseable_string_into_numeric() {
        let mut c = Column::Numeric(vec![Some(1.0)]);
        c.set_cell_coercing(0, CellValue::Cat(" 3.5 ".into()));
        assert_eq!(c.as_numeric().unwrap()[0], Some(3.5));
    }

    #[test]
    fn coerce_unparseable_string_into_numeric_is_null() {
        let mut c = Column::Numeric(vec![Some(1.0)]);
        c.set_cell_coercing(0, CellValue::Cat("married".into()));
        assert_eq!(c.as_numeric().unwrap()[0], None);
    }

    #[test]
    fn coerce_image_rejects_scalars() {
        let mut c = Column::Image(vec![Some(ImageData::zeros(1, 1))]);
        c.set_cell_coercing(0, CellValue::Num(1.0));
        assert_eq!(c.as_image().unwrap()[0], None);
    }

    #[test]
    fn set_null_clears_cell() {
        let mut c = Column::Text(vec![Some("hi".into())]);
        c.set_null(0);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn select_reorders_and_duplicates() {
        let c = Column::Numeric(vec![Some(1.0), Some(2.0), Some(3.0)]);
        let s = c.select(&[2, 0, 2]);
        assert_eq!(s.as_numeric().unwrap(), &[Some(3.0), Some(1.0), Some(3.0)]);
    }

    #[test]
    fn cell_round_trip() {
        let c = Column::Numeric(vec![Some(7.0), None]);
        assert_eq!(c.cell(0), CellValue::Num(7.0));
        assert_eq!(c.cell(1), CellValue::Null);
    }

    #[test]
    fn typed_accessors_reject_wrong_type() {
        let c = Column::Numeric(vec![]);
        assert!(c.as_categorical().is_err());
        assert!(c.as_text().is_err());
        assert!(c.as_image().is_err());
    }

    #[test]
    fn format_num_integers_have_no_decimal_point() {
        let mut c = Column::Text(vec![None]);
        c.set_cell_coercing(0, CellValue::Num(1234.0));
        assert_eq!(c.as_text().unwrap()[0], Some("1234".into()));
        c.set_cell_coercing(0, CellValue::Num(12.5));
        assert_eq!(c.as_text().unwrap()[0], Some("12.5".into()));
    }
}
