//! Generators for the two 28×28 image datasets (digits 3-vs-5 and fashion
//! sneaker-vs-ankle-boot).
//!
//! Images are rendered with parametric strokes plus per-sample jitter
//! (translation, scale, stroke thickness, pixel noise), producing a task
//! that convolutional and linear models can learn well but not perfectly —
//! matching the role of the MNIST/Fashion-MNIST subsets in the paper.

use lvp_dataframe::{CellValue, ColumnType, DataFrame, DataFrameBuilder, Field, ImageData, Schema};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Side length of the generated images (the paper uses 28×28).
pub const IMAGE_SIDE: usize = 28;

/// Stamps a filled disc with soft edges onto the image.
fn stamp_disc(img: &mut ImageData, cx: f64, cy: f64, radius: f64, intensity: f64) {
    let r_ceil = radius.ceil() as i64 + 1;
    let (icx, icy) = (cx.round() as i64, cy.round() as i64);
    for dy in -r_ceil..=r_ceil {
        for dx in -r_ceil..=r_ceil {
            let (x, y) = (icx + dx, icy + dy);
            if x < 0 || y < 0 || x as usize >= img.width || y as usize >= img.height {
                continue;
            }
            let dist = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
            if dist <= radius {
                let falloff = (1.0 - (dist / radius).powi(2)).max(0.3);
                let v = img.get(x as usize, y as usize);
                img.set(x as usize, y as usize, (v + intensity * falloff).min(1.0));
            }
        }
    }
}

/// Rasterizes a parametric curve `t ∈ [0,1] → (x, y)` with a round brush.
fn draw_curve(
    img: &mut ImageData,
    curve: impl Fn(f64) -> (f64, f64),
    thickness: f64,
    intensity: f64,
) {
    const STEPS: usize = 60;
    for s in 0..=STEPS {
        let t = s as f64 / STEPS as f64;
        let (x, y) = curve(t);
        stamp_disc(img, x, y, thickness, intensity / 3.0);
    }
}

/// Per-sample geometric jitter shared by both datasets.
struct Jitter {
    dx: f64,
    dy: f64,
    scale: f64,
    thickness: f64,
}

impl Jitter {
    fn sample(rng: &mut impl Rng) -> Self {
        Self {
            dx: rng.gen_range(-2.0..2.0),
            dy: rng.gen_range(-2.0..2.0),
            scale: rng.gen_range(0.85..1.12),
            thickness: rng.gen_range(1.0..1.7),
        }
    }

    fn apply(&self, x: f64, y: f64) -> (f64, f64) {
        let c = IMAGE_SIDE as f64 / 2.0;
        (
            c + (x - c) * self.scale + self.dx,
            c + (y - c) * self.scale + self.dy,
        )
    }
}

fn add_pixel_noise(img: &mut ImageData, rng: &mut impl Rng, std: f64) {
    let noise = Normal::new(0.0, std).expect("finite parameters");
    for p in &mut img.pixels {
        *p = (*p + noise.sample(rng)).clamp(0.0, 1.0);
    }
}

/// Renders a digit "3": two right-bulging arcs stacked vertically.
fn render_three(rng: &mut impl Rng) -> ImageData {
    let mut img = ImageData::zeros(IMAGE_SIDE, IMAGE_SIDE);
    let j = Jitter::sample(rng);
    // Upper arc: from (9,5) bulging right to (9,14).
    draw_curve(
        &mut img,
        |t| {
            let angle = -std::f64::consts::FRAC_PI_2 + t * std::f64::consts::PI;
            let (x, y) = (12.0 + 6.5 * angle.cos(), 9.5 + 4.5 * angle.sin());
            j.apply(x, y)
        },
        j.thickness,
        1.0,
    );
    // Lower arc: from (9,14) bulging right to (9,23).
    draw_curve(
        &mut img,
        |t| {
            let angle = -std::f64::consts::FRAC_PI_2 + t * std::f64::consts::PI;
            let (x, y) = (12.0 + 6.5 * angle.cos(), 18.5 + 4.5 * angle.sin());
            j.apply(x, y)
        },
        j.thickness,
        1.0,
    );
    add_pixel_noise(&mut img, rng, 0.04);
    img
}

/// Renders a digit "5": top bar, upper-left vertical, lower right-bulging
/// bowl.
fn render_five(rng: &mut impl Rng) -> ImageData {
    let mut img = ImageData::zeros(IMAGE_SIDE, IMAGE_SIDE);
    let j = Jitter::sample(rng);
    // Top horizontal bar from (9,6) to (19,6).
    draw_curve(&mut img, |t| j.apply(9.0 + 10.0 * t, 6.0), j.thickness, 1.0);
    // Left vertical from (9,6) to (9,13).
    draw_curve(&mut img, |t| j.apply(9.0, 6.0 + 7.0 * t), j.thickness, 1.0);
    // Lower bowl from (9,13) bulging right down to (8,22).
    draw_curve(
        &mut img,
        |t| {
            let angle = -std::f64::consts::FRAC_PI_2 + t * std::f64::consts::PI;
            let (x, y) = (11.0 + 7.0 * angle.cos(), 17.5 + 4.8 * angle.sin());
            j.apply(x, y)
        },
        j.thickness,
        1.0,
    );
    add_pixel_noise(&mut img, rng, 0.04);
    img
}

/// Renders a sneaker: long low sole with a low rounded body.
fn render_sneaker(rng: &mut impl Rng) -> ImageData {
    let mut img = ImageData::zeros(IMAGE_SIDE, IMAGE_SIDE);
    let j = Jitter::sample(rng);
    // Sole: thick horizontal band near the bottom.
    draw_curve(
        &mut img,
        |t| j.apply(3.0 + 22.0 * t, 21.0),
        j.thickness + 1.0,
        1.0,
    );
    // Low body: gentle hump from heel to toe.
    draw_curve(
        &mut img,
        |t| {
            let x = 4.0 + 20.0 * t;
            let y = 18.5 - 3.5 * (std::f64::consts::PI * t).sin();
            j.apply(x, y)
        },
        j.thickness,
        0.9,
    );
    // Laces: short diagonal ticks in the mid-body.
    for k in 0..3 {
        let base_x = 11.0 + 3.0 * k as f64;
        draw_curve(
            &mut img,
            move |t| (base_x + 2.0 * t, 16.0 + 1.5 * t),
            0.8,
            0.7,
        );
    }
    add_pixel_noise(&mut img, rng, 0.05);
    img
}

/// Renders an ankle boot: sole plus a tall shaft rising on the heel side.
fn render_boot(rng: &mut impl Rng) -> ImageData {
    let mut img = ImageData::zeros(IMAGE_SIDE, IMAGE_SIDE);
    let j = Jitter::sample(rng);
    // Sole.
    draw_curve(
        &mut img,
        |t| j.apply(4.0 + 20.0 * t, 22.0),
        j.thickness + 1.0,
        1.0,
    );
    // Tall shaft on the heel (left) side: vertical column rows 6..=20.
    for col in 0..3 {
        let x = 6.0 + 2.0 * col as f64;
        draw_curve(&mut img, move |t| (x, 6.0 + 14.0 * t), 1.2, 0.85);
    }
    // Foot part sloping down to the toe.
    draw_curve(
        &mut img,
        |t| {
            let x = 11.0 + 12.0 * t;
            let y = 17.0 + 3.0 * t;
            j.apply(x, y)
        },
        j.thickness,
        0.9,
    );
    add_pixel_noise(&mut img, rng, 0.05);
    img
}

/// MNIST-like dataset restricted to the digits 3 and 5.
pub fn digits(n: usize, rng: &mut impl Rng) -> DataFrame {
    let schema =
        Schema::new(vec![Field::new("image", ColumnType::Image)]).expect("static schema is valid");
    let mut b = DataFrameBuilder::new(schema, vec!["three".into(), "five".into()]);
    for i in 0..n {
        let y = (i % 2) as u32;
        let img = if y == 0 {
            render_three(rng)
        } else {
            render_five(rng)
        };
        b.push_row(vec![CellValue::Image(img)], y)
            .expect("row matches schema");
    }
    b.finish().expect("builder output is valid")
}

/// Fashion-MNIST-like dataset restricted to sneakers and ankle boots.
pub fn fashion(n: usize, rng: &mut impl Rng) -> DataFrame {
    let schema =
        Schema::new(vec![Field::new("image", ColumnType::Image)]).expect("static schema is valid");
    let mut b = DataFrameBuilder::new(schema, vec!["sneaker".into(), "ankle-boot".into()]);
    for i in 0..n {
        let y = (i % 2) as u32;
        let img = if y == 0 {
            render_sneaker(rng)
        } else {
            render_boot(rng)
        };
        b.push_row(vec![CellValue::Image(img)], y)
            .expect("row matches schema");
    }
    b.finish().expect("builder output is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_pixels(df: &DataFrame, label: u32) -> Vec<f64> {
        let imgs = df.column(0).as_image().unwrap();
        let mut acc = vec![0.0; IMAGE_SIDE * IMAGE_SIDE];
        let mut count = 0;
        for (img, &l) in imgs.iter().zip(df.labels()) {
            if l == label {
                for (a, p) in acc.iter_mut().zip(&img.as_ref().unwrap().pixels) {
                    *a += p;
                }
                count += 1;
            }
        }
        for a in &mut acc {
            *a /= count as f64;
        }
        acc
    }

    #[test]
    fn digits_images_have_correct_geometry() {
        let mut rng = StdRng::seed_from_u64(1);
        let df = digits(10, &mut rng);
        for img in df.column(0).as_image().unwrap() {
            let img = img.as_ref().unwrap();
            assert_eq!(img.width, IMAGE_SIDE);
            assert_eq!(img.height, IMAGE_SIDE);
            assert!(img.pixels.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn digit_classes_are_visually_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let df = digits(200, &mut rng);
        let m3 = mean_pixels(&df, 0);
        let m5 = mean_pixels(&df, 1);
        let l1: f64 = m3.iter().zip(&m5).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 > 10.0, "class means too similar: L1={l1}");
    }

    #[test]
    fn fashion_classes_are_visually_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let df = fashion(200, &mut rng);
        let ms = mean_pixels(&df, 0);
        let mb = mean_pixels(&df, 1);
        let l1: f64 = ms.iter().zip(&mb).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 > 10.0, "class means too similar: L1={l1}");
    }

    #[test]
    fn boot_has_more_mass_in_upper_half_than_sneaker() {
        let mut rng = StdRng::seed_from_u64(4);
        let df = fashion(300, &mut rng);
        let ms = mean_pixels(&df, 0);
        let mb = mean_pixels(&df, 1);
        let upper = |m: &[f64]| -> f64 { m[..IMAGE_SIDE * IMAGE_SIDE / 2].iter().sum() };
        assert!(upper(&mb) > upper(&ms), "shaft should add upper-half mass");
    }

    #[test]
    fn images_are_not_blank() {
        let mut rng = StdRng::seed_from_u64(5);
        let df = digits(20, &mut rng);
        for img in df.column(0).as_image().unwrap() {
            let sum: f64 = img.as_ref().unwrap().pixels.iter().sum();
            assert!(sum > 5.0, "stroke mass too low: {sum}");
        }
    }
}
