//! Synthetic stand-ins for the paper's six evaluation datasets.
//!
//! The paper evaluates on publicly available datasets (UCI adult income,
//! cardiovascular disease, bank marketing, cyber-troll tweets, MNIST digits
//! 3-vs-5 and Fashion-MNIST sneaker-vs-ankle-boot). Those files are not
//! available in this environment, so each dataset is replaced by a seeded
//! generator with the *same schema shape, size and difficulty role*:
//!
//! * class-conditional feature distributions with deliberate overlap and
//!   label noise, so trained models land in the paper's accuracy regime
//!   rather than at 100%,
//! * the same column-type mix (numeric + categorical for the tabular tasks,
//!   free text for tweets, 28×28 grayscale images for digits/fashion),
//!   so every error generator acts through the same mechanism as in the
//!   paper (e.g. scaling corrupts a numeric column a fitted scaler depends
//!   on; typos create unseen categories that one-hot encode to zero).
//!
//! All generators draw balanced classes (the paper resamples for balance)
//! and are deterministic given the RNG.

mod images;
mod tabular;
mod text;

pub use images::{digits, fashion};
pub use tabular::{bank, heart, income};
pub use text::tweets;

use lvp_dataframe::DataFrame;
use rand::Rng;

/// Identifier for one of the six benchmark datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Adult-income-like mixed tabular data (48,842 records in the paper).
    Income,
    /// Cardiovascular-disease-like tabular data (70,001 records).
    Heart,
    /// Bank-marketing-like tabular data (45,212 records).
    Bank,
    /// Cyber-troll-tweet-like short text (20,002 records).
    Tweets,
    /// Handwritten-digit-like 3-vs-5 images (14,000 records).
    Digits,
    /// Fashion-product-like sneaker-vs-ankle-boot images (14,000 records).
    Fashion,
}

impl DatasetKind {
    /// All six datasets.
    pub const ALL: [DatasetKind; 6] = [
        DatasetKind::Income,
        DatasetKind::Heart,
        DatasetKind::Bank,
        DatasetKind::Tweets,
        DatasetKind::Digits,
        DatasetKind::Fashion,
    ];

    /// The paper's lowercase dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Income => "income",
            DatasetKind::Heart => "heart",
            DatasetKind::Bank => "bank",
            DatasetKind::Tweets => "tweets",
            DatasetKind::Digits => "digits",
            DatasetKind::Fashion => "fashion",
        }
    }

    /// The dataset size used in the paper.
    pub fn paper_size(self) -> usize {
        match self {
            DatasetKind::Income => 48_842,
            DatasetKind::Heart => 70_001,
            DatasetKind::Bank => 45_212,
            DatasetKind::Tweets => 20_002,
            DatasetKind::Digits | DatasetKind::Fashion => 14_000,
        }
    }

    /// Whether this is one of the image datasets.
    pub fn is_image(self) -> bool {
        matches!(self, DatasetKind::Digits | DatasetKind::Fashion)
    }
}

/// Generates `n` records of the given dataset.
pub fn generate(kind: DatasetKind, n: usize, rng: &mut impl Rng) -> DataFrame {
    match kind {
        DatasetKind::Income => income(n, rng),
        DatasetKind::Heart => heart(n, rng),
        DatasetKind::Bank => bank(n, rng),
        DatasetKind::Tweets => tweets(n, rng),
        DatasetKind::Digits => digits(n, rng),
        DatasetKind::Fashion => fashion(n, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_datasets_generate_requested_size() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in DatasetKind::ALL {
            let df = generate(kind, 60, &mut rng);
            assert_eq!(df.n_rows(), 60, "{}", kind.name());
            assert_eq!(df.n_classes(), 2, "{}", kind.name());
        }
    }

    #[test]
    fn all_datasets_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        for kind in DatasetKind::ALL {
            let df = generate(kind, 400, &mut rng);
            let pos = df.labels().iter().filter(|&&l| l == 1).count();
            assert!(
                (120..=280).contains(&pos),
                "{}: {} positives of 400",
                kind.name(),
                pos
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let df1 = income(50, &mut StdRng::seed_from_u64(7));
        let df2 = income(50, &mut StdRng::seed_from_u64(7));
        assert_eq!(df1, df2);
    }

    #[test]
    fn paper_sizes_match_section_6() {
        assert_eq!(DatasetKind::Income.paper_size(), 48_842);
        assert_eq!(DatasetKind::Heart.paper_size(), 70_001);
        assert_eq!(DatasetKind::Bank.paper_size(), 45_212);
        assert_eq!(DatasetKind::Tweets.paper_size(), 20_002);
        assert_eq!(DatasetKind::Digits.paper_size(), 14_000);
    }

    #[test]
    fn image_flag() {
        assert!(DatasetKind::Digits.is_image());
        assert!(!DatasetKind::Bank.is_image());
    }
}
