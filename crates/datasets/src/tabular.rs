//! Generators for the three mixed tabular datasets (income, heart, bank).
//!
//! Each record first draws a balanced class label, then samples features
//! from class-conditional distributions with deliberate overlap, and finally
//! flips a small fraction of labels — giving trained classifiers accuracies
//! in the 0.75–0.9 regime of the paper rather than a trivially separable
//! task.

use lvp_dataframe::{CellValue, ColumnType, DataFrame, DataFrameBuilder, Field, Schema};
use rand::Rng;
use rand_distr::{Distribution, LogNormal, Normal};

/// Samples from a normal with the given mean/std, clamped to `[lo, hi]`.
fn clamped_normal(rng: &mut impl Rng, mean: f64, std: f64, lo: f64, hi: f64) -> f64 {
    let n = Normal::new(mean, std).expect("finite parameters");
    n.sample(rng).clamp(lo, hi)
}

/// Draws an index from unnormalized class-conditional weights.
fn weighted_choice(rng: &mut impl Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

fn flip_label(rng: &mut impl Rng, label: u32, p: f64) -> u32 {
    if rng.gen::<f64>() < p {
        1 - label
    } else {
        label
    }
}

/// Adult-income-like dataset: predict whether a person earns more than
/// 50K dollars per year. Five numeric and five categorical attributes.
pub fn income(n: usize, rng: &mut impl Rng) -> DataFrame {
    let schema = Schema::new(vec![
        Field::new("age", ColumnType::Numeric),
        Field::new("education_num", ColumnType::Numeric),
        Field::new("hours_per_week", ColumnType::Numeric),
        Field::new("capital_gain", ColumnType::Numeric),
        Field::new("capital_loss", ColumnType::Numeric),
        Field::new("workclass", ColumnType::Categorical),
        Field::new("education", ColumnType::Categorical),
        Field::new("marital_status", ColumnType::Categorical),
        Field::new("occupation", ColumnType::Categorical),
        Field::new("sex", ColumnType::Categorical),
    ])
    .expect("static schema is valid");

    const WORKCLASS: [&str; 6] = [
        "Private",
        "Self-emp",
        "Federal-gov",
        "Local-gov",
        "State-gov",
        "Without-pay",
    ];
    const EDUCATION: [&str; 8] = [
        "HS-grad",
        "Some-college",
        "Bachelors",
        "Masters",
        "Doctorate",
        "Assoc",
        "11th",
        "7th-8th",
    ];
    const MARITAL: [&str; 5] = [
        "Married-civ-spouse",
        "Never-married",
        "Divorced",
        "Separated",
        "Widowed",
    ];
    const OCCUPATION: [&str; 8] = [
        "Exec-managerial",
        "Prof-specialty",
        "Craft-repair",
        "Adm-clerical",
        "Sales",
        "Other-service",
        "Machine-op-inspct",
        "Handlers-cleaners",
    ];
    const SEX: [&str; 2] = ["Male", "Female"];

    let gain_dist: LogNormal<f64> = LogNormal::new(8.0, 1.2).expect("finite parameters");
    let mut b = DataFrameBuilder::new(schema, vec!["<=50K".into(), ">50K".into()]);
    for i in 0..n {
        let y = (i % 2) as u32; // exactly balanced
        let yf = f64::from(y);
        let age = clamped_normal(rng, 36.0 + 8.0 * yf, 11.0, 17.0, 90.0).round();
        let edu_num = clamped_normal(rng, 9.3 + 2.3 * yf, 2.4, 1.0, 16.0).round();
        let hours = clamped_normal(rng, 38.0 + 6.0 * yf, 10.0, 1.0, 99.0).round();
        let capital_gain = if rng.gen::<f64>() < 0.08 + 0.22 * yf {
            gain_dist.sample(rng).min(99_999.0).round()
        } else {
            0.0
        };
        let capital_loss = if rng.gen::<f64>() < 0.05 {
            clamped_normal(rng, 1_800.0, 400.0, 0.0, 4_500.0).round()
        } else {
            0.0
        };
        let workclass = if y == 1 {
            WORKCLASS[weighted_choice(rng, &[60.0, 14.0, 8.0, 8.0, 9.0, 1.0])]
        } else {
            WORKCLASS[weighted_choice(rng, &[74.0, 6.0, 4.0, 6.0, 6.0, 4.0])]
        };
        let education = if y == 1 {
            EDUCATION[weighted_choice(rng, &[18.0, 18.0, 28.0, 16.0, 6.0, 10.0, 2.0, 2.0])]
        } else {
            EDUCATION[weighted_choice(rng, &[36.0, 24.0, 10.0, 3.0, 1.0, 10.0, 9.0, 7.0])]
        };
        let marital = if y == 1 {
            MARITAL[weighted_choice(rng, &[76.0, 8.0, 9.0, 4.0, 3.0])]
        } else {
            MARITAL[weighted_choice(rng, &[36.0, 38.0, 15.0, 6.0, 5.0])]
        };
        let occupation = if y == 1 {
            OCCUPATION[weighted_choice(rng, &[26.0, 26.0, 12.0, 8.0, 14.0, 5.0, 5.0, 4.0])]
        } else {
            OCCUPATION[weighted_choice(rng, &[8.0, 9.0, 16.0, 16.0, 12.0, 16.0, 12.0, 11.0])]
        };
        let sex = SEX[weighted_choice(rng, if y == 1 { &[78.0, 22.0] } else { &[62.0, 38.0] })];
        b.push_row(
            vec![
                CellValue::Num(age),
                CellValue::Num(edu_num),
                CellValue::Num(hours),
                CellValue::Num(capital_gain),
                CellValue::Num(capital_loss),
                CellValue::Cat(workclass.into()),
                CellValue::Cat(education.into()),
                CellValue::Cat(marital.into()),
                CellValue::Cat(occupation.into()),
                CellValue::Cat(sex.into()),
            ],
            flip_label(rng, y, 0.08),
        )
        .expect("row matches schema");
    }
    b.finish().expect("builder output is valid")
}

/// Cardiovascular-disease-like dataset: predict the presence of a heart
/// condition from examination measurements.
pub fn heart(n: usize, rng: &mut impl Rng) -> DataFrame {
    let schema = Schema::new(vec![
        Field::new("age_years", ColumnType::Numeric),
        Field::new("height_cm", ColumnType::Numeric),
        Field::new("weight_kg", ColumnType::Numeric),
        Field::new("ap_hi", ColumnType::Numeric),
        Field::new("ap_lo", ColumnType::Numeric),
        Field::new("cholesterol", ColumnType::Categorical),
        Field::new("glucose", ColumnType::Categorical),
        Field::new("smoke", ColumnType::Categorical),
        Field::new("alcohol", ColumnType::Categorical),
        Field::new("active", ColumnType::Categorical),
    ])
    .expect("static schema is valid");

    const LEVELS: [&str; 3] = ["normal", "above-normal", "well-above-normal"];
    const YESNO: [&str; 2] = ["no", "yes"];

    let mut b = DataFrameBuilder::new(schema, vec!["healthy".into(), "cardio".into()]);
    for i in 0..n {
        let y = (i % 2) as u32;
        let yf = f64::from(y);
        let age = clamped_normal(rng, 50.0 + 5.0 * yf, 7.0, 29.0, 65.0).round();
        let height = clamped_normal(rng, 165.0, 8.0, 140.0, 200.0).round();
        let weight = clamped_normal(rng, 71.0 + 8.0 * yf, 13.0, 40.0, 160.0).round();
        let ap_hi = clamped_normal(rng, 119.0 + 16.0 * yf, 14.0, 80.0, 220.0).round();
        let ap_lo = clamped_normal(rng, 78.0 + 8.0 * yf, 9.0, 50.0, 140.0).round();
        let chol = if y == 1 {
            LEVELS[weighted_choice(rng, &[55.0, 25.0, 20.0])]
        } else {
            LEVELS[weighted_choice(rng, &[82.0, 12.0, 6.0])]
        };
        let gluc = if y == 1 {
            LEVELS[weighted_choice(rng, &[72.0, 15.0, 13.0])]
        } else {
            LEVELS[weighted_choice(rng, &[88.0, 7.0, 5.0])]
        };
        let smoke = YESNO[weighted_choice(rng, if y == 1 { &[90.0, 10.0] } else { &[91.0, 9.0] })];
        let alco = YESNO[weighted_choice(rng, &[95.0, 5.0])];
        let active =
            YESNO[weighted_choice(rng, if y == 1 { &[25.0, 75.0] } else { &[18.0, 82.0] })];
        b.push_row(
            vec![
                CellValue::Num(age),
                CellValue::Num(height),
                CellValue::Num(weight),
                CellValue::Num(ap_hi),
                CellValue::Num(ap_lo),
                CellValue::Cat(chol.into()),
                CellValue::Cat(gluc.into()),
                CellValue::Cat(smoke.into()),
                CellValue::Cat(alco.into()),
                CellValue::Cat(active.into()),
            ],
            flip_label(rng, y, 0.12),
        )
        .expect("row matches schema");
    }
    b.finish().expect("builder output is valid")
}

/// Bank-marketing-like dataset: predict whether a customer subscribes a
/// term deposit after a campaign call.
pub fn bank(n: usize, rng: &mut impl Rng) -> DataFrame {
    let schema = Schema::new(vec![
        Field::new("age", ColumnType::Numeric),
        Field::new("balance", ColumnType::Numeric),
        Field::new("duration", ColumnType::Numeric),
        Field::new("campaign", ColumnType::Numeric),
        Field::new("pdays", ColumnType::Numeric),
        Field::new("job", ColumnType::Categorical),
        Field::new("marital", ColumnType::Categorical),
        Field::new("education", ColumnType::Categorical),
        Field::new("housing", ColumnType::Categorical),
        Field::new("contact", ColumnType::Categorical),
        Field::new("poutcome", ColumnType::Categorical),
    ])
    .expect("static schema is valid");

    const JOB: [&str; 8] = [
        "admin",
        "blue-collar",
        "technician",
        "services",
        "management",
        "retired",
        "student",
        "entrepreneur",
    ];
    const MARITAL: [&str; 3] = ["married", "single", "divorced"];
    const EDUCATION: [&str; 4] = ["primary", "secondary", "tertiary", "unknown"];
    const YESNO: [&str; 2] = ["no", "yes"];
    const CONTACT: [&str; 3] = ["cellular", "telephone", "unknown"];
    const POUTCOME: [&str; 4] = ["unknown", "failure", "other", "success"];

    let balance_dist: LogNormal<f64> = LogNormal::new(6.8, 1.1).expect("finite parameters");
    let mut b = DataFrameBuilder::new(schema, vec!["no".into(), "yes".into()]);
    for i in 0..n {
        let y = (i % 2) as u32;
        let yf = f64::from(y);
        let age = clamped_normal(rng, 40.0 + 3.0 * yf, 11.0, 18.0, 95.0).round();
        let balance = (balance_dist.sample(rng) * (1.0 + 0.5 * yf) - 400.0)
            .clamp(-8_000.0, 100_000.0)
            .round();
        let duration = clamped_normal(rng, 210.0 + 190.0 * yf, 150.0, 0.0, 3_000.0).round();
        let campaign = (1.0 + rng.gen::<f64>() * (5.0 - 2.5 * yf)).round();
        let pdays = if rng.gen::<f64>() < 0.15 + 0.25 * yf {
            clamped_normal(rng, 180.0, 90.0, 1.0, 871.0).round()
        } else {
            -1.0
        };
        let job = if y == 1 {
            JOB[weighted_choice(rng, &[14.0, 10.0, 14.0, 8.0, 22.0, 14.0, 12.0, 6.0])]
        } else {
            JOB[weighted_choice(rng, &[12.0, 26.0, 16.0, 12.0, 16.0, 6.0, 4.0, 8.0])]
        };
        let marital = MARITAL[weighted_choice(
            rng,
            if y == 1 {
                &[52.0, 36.0, 12.0]
            } else {
                &[61.0, 27.0, 12.0]
            },
        )];
        let education = EDUCATION[weighted_choice(
            rng,
            if y == 1 {
                &[10.0, 44.0, 40.0, 6.0]
            } else {
                &[17.0, 53.0, 24.0, 6.0]
            },
        )];
        let housing =
            YESNO[weighted_choice(rng, if y == 1 { &[63.0, 37.0] } else { &[43.0, 57.0] })];
        let contact = CONTACT[weighted_choice(
            rng,
            if y == 1 {
                &[83.0, 8.0, 9.0]
            } else {
                &[62.0, 7.0, 31.0]
            },
        )];
        let poutcome = POUTCOME[weighted_choice(
            rng,
            if y == 1 {
                &[46.0, 12.0, 8.0, 34.0]
            } else {
                &[78.0, 14.0, 6.0, 2.0]
            },
        )];
        b.push_row(
            vec![
                CellValue::Num(age),
                CellValue::Num(balance),
                CellValue::Num(duration),
                CellValue::Num(campaign),
                CellValue::Num(pdays),
                CellValue::Cat(job.into()),
                CellValue::Cat(marital.into()),
                CellValue::Cat(education.into()),
                CellValue::Cat(housing.into()),
                CellValue::Cat(contact.into()),
                CellValue::Cat(poutcome.into()),
            ],
            flip_label(rng, y, 0.09),
        )
        .expect("row matches schema");
    }
    b.finish().expect("builder output is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn income_schema_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let df = income(100, &mut rng);
        assert_eq!(df.schema().numeric_columns().len(), 5);
        assert_eq!(df.schema().categorical_columns().len(), 5);
        assert_eq!(df.label_names(), &["<=50K".to_string(), ">50K".to_string()]);
    }

    #[test]
    fn heart_schema_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let df = heart(100, &mut rng);
        assert_eq!(df.schema().numeric_columns().len(), 5);
        assert_eq!(df.schema().categorical_columns().len(), 5);
    }

    #[test]
    fn bank_schema_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let df = bank(100, &mut rng);
        assert_eq!(df.schema().numeric_columns().len(), 5);
        assert_eq!(df.schema().categorical_columns().len(), 6);
    }

    #[test]
    fn income_class_signal_exists() {
        // Class-conditional means must differ on key columns, otherwise the
        // task would be unlearnable.
        let mut rng = StdRng::seed_from_u64(3);
        let df = income(4000, &mut rng);
        let ages = df.column_by_name("age").unwrap().as_numeric().unwrap();
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for (a, &l) in ages.iter().zip(df.labels()) {
            sums[l as usize] += a.unwrap();
            counts[l as usize] += 1;
        }
        let mean0 = sums[0] / counts[0] as f64;
        let mean1 = sums[1] / counts[1] as f64;
        assert!(
            mean1 - mean0 > 3.0,
            "mean age gap too small: {mean0} vs {mean1}"
        );
    }

    #[test]
    fn bank_duration_signal_exists() {
        let mut rng = StdRng::seed_from_u64(4);
        let df = bank(4000, &mut rng);
        let durs = df.column_by_name("duration").unwrap().as_numeric().unwrap();
        let mut sums = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for (d, &l) in durs.iter().zip(df.labels()) {
            sums[l as usize] += d.unwrap();
            counts[l as usize] += 1;
        }
        assert!(sums[1] / counts[1] as f64 - sums[0] / counts[0] as f64 > 100.0);
    }

    #[test]
    fn no_missing_values_in_fresh_data() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(income(200, &mut rng).total_null_count(), 0);
        assert_eq!(heart(200, &mut rng).total_null_count(), 0);
        assert_eq!(bank(200, &mut rng).total_null_count(), 0);
    }

    #[test]
    fn numeric_ranges_are_plausible() {
        let mut rng = StdRng::seed_from_u64(6);
        let df = heart(500, &mut rng);
        let ap_hi = df.column_by_name("ap_hi").unwrap().as_numeric().unwrap();
        for v in ap_hi.iter().flatten() {
            assert!((80.0..=220.0).contains(v));
        }
    }
}
