//! Generator for the tweets dataset (troll detection on short text).

use lvp_dataframe::{CellValue, ColumnType, DataFrame, DataFrameBuilder, Field, Schema};
use rand::Rng;

const TROLL_VOCAB: [&str; 36] = [
    "idiot",
    "loser",
    "stupid",
    "dumb",
    "pathetic",
    "moron",
    "clown",
    "trash",
    "garbage",
    "worthless",
    "shut",
    "ratio",
    "cope",
    "seethe",
    "cry",
    "fraud",
    "fake",
    "liar",
    "clueless",
    "braindead",
    "disgusting",
    "embarrassing",
    "joke",
    "failure",
    "hate",
    "ugly",
    "annoying",
    "cringe",
    "delusional",
    "toxic",
    "troll",
    "block",
    "reported",
    "nobody",
    "irrelevant",
    "washed",
];

const NEUTRAL_VOCAB: [&str; 60] = [
    "today",
    "morning",
    "coffee",
    "weather",
    "sunny",
    "rain",
    "game",
    "match",
    "team",
    "score",
    "music",
    "album",
    "song",
    "concert",
    "movie",
    "film",
    "series",
    "episode",
    "book",
    "reading",
    "travel",
    "trip",
    "flight",
    "city",
    "food",
    "dinner",
    "lunch",
    "recipe",
    "cooking",
    "garden",
    "running",
    "workout",
    "training",
    "project",
    "work",
    "meeting",
    "launch",
    "update",
    "release",
    "photo",
    "picture",
    "beautiful",
    "amazing",
    "great",
    "love",
    "happy",
    "excited",
    "weekend",
    "friday",
    "holiday",
    "family",
    "friends",
    "birthday",
    "party",
    "news",
    "article",
    "thread",
    "thanks",
    "congrats",
    "awesome",
];

const STOPWORDS: [&str; 20] = [
    "the", "a", "to", "and", "of", "in", "is", "it", "you", "that", "for", "on", "with", "this",
    "so", "just", "my", "me", "are", "what",
];

fn pick<'a>(rng: &mut impl Rng, words: &[&'a str]) -> &'a str {
    words[rng.gen_range(0..words.len())]
}

fn compose_tweet(rng: &mut impl Rng, troll: bool) -> String {
    let len = rng.gen_range(6..=18);
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        let u: f64 = rng.gen();
        let w = if troll {
            if u < 0.34 {
                pick(rng, &TROLL_VOCAB)
            } else if u < 0.72 {
                pick(rng, &NEUTRAL_VOCAB)
            } else {
                pick(rng, &STOPWORDS)
            }
        } else if u < 0.03 {
            // Non-troll tweets occasionally use a harsh word too.
            pick(rng, &TROLL_VOCAB)
        } else if u < 0.65 {
            pick(rng, &NEUTRAL_VOCAB)
        } else {
            pick(rng, &STOPWORDS)
        };
        words.push(w);
    }
    words.join(" ")
}

/// Cyber-troll-like dataset: a single free-text column; the target denotes
/// whether the tweet has trolling character.
pub fn tweets(n: usize, rng: &mut impl Rng) -> DataFrame {
    let schema =
        Schema::new(vec![Field::new("tweet", ColumnType::Text)]).expect("static schema is valid");
    let mut b = DataFrameBuilder::new(schema, vec!["normal".into(), "troll".into()]);
    for i in 0..n {
        let y = (i % 2) as u32;
        let text = compose_tweet(rng, y == 1);
        // ~5% label noise: mislabeled tweets exist in the real corpus too.
        let label = if rng.gen::<f64>() < 0.05 { 1 - y } else { y };
        b.push_row(vec![CellValue::Text(text)], label)
            .expect("row matches schema");
    }
    b.finish().expect("builder output is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tweets_have_single_text_column() {
        let mut rng = StdRng::seed_from_u64(1);
        let df = tweets(50, &mut rng);
        assert_eq!(df.n_cols(), 1);
        assert_eq!(df.schema().text_columns(), vec![0]);
    }

    #[test]
    fn troll_tweets_use_troll_vocabulary_more() {
        let mut rng = StdRng::seed_from_u64(2);
        let df = tweets(2000, &mut rng);
        let texts = df.column(0).as_text().unwrap();
        let mut troll_hits = [0usize; 2];
        let mut word_counts = [0usize; 2];
        for (t, &l) in texts.iter().zip(df.labels()) {
            let text = t.as_ref().unwrap();
            for w in text.split(' ') {
                word_counts[l as usize] += 1;
                if TROLL_VOCAB.contains(&w) {
                    troll_hits[l as usize] += 1;
                }
            }
        }
        let rate0 = troll_hits[0] as f64 / word_counts[0] as f64;
        let rate1 = troll_hits[1] as f64 / word_counts[1] as f64;
        assert!(rate1 > 5.0 * rate0, "troll rate {rate1} vs normal {rate0}");
    }

    #[test]
    fn tweets_are_nonempty() {
        let mut rng = StdRng::seed_from_u64(3);
        let df = tweets(100, &mut rng);
        for t in df.column(0).as_text().unwrap() {
            assert!(!t.as_ref().unwrap().is_empty());
        }
    }
}
