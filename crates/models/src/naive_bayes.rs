//! Gaussian naive Bayes — an additional cheap black box model family.
//!
//! Useful to the workspace for two reasons: it broadens the set of "varied
//! black box models" the validator is exercised against (its output
//! distribution is very unlike the margin-based models'), and it gives the
//! AutoML searchers a low-cost candidate family.

use crate::{Classifier, ModelError};
use lvp_linalg::{softmax_in_place, CsrMatrix, DenseMatrix};

/// Configuration for [`GaussianNaiveBayes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveBayesConfig {
    /// Variance smoothing added to every per-feature variance, as a
    /// fraction of the largest feature variance (scikit-learn's
    /// `var_smoothing`).
    pub var_smoothing: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        Self {
            var_smoothing: 1e-9,
        }
    }
}

/// A fitted Gaussian naive Bayes classifier over (sparse) feature vectors.
///
/// Implicit zeros of the CSR input participate in the per-feature Gaussian
/// estimates, which matches how standardized/one-hot pipelines encode
/// missing data.
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianNaiveBayes {
    // Per class: prior log-probability, per-feature mean and variance.
    log_priors: Vec<f64>,
    means: DenseMatrix,     // m × d
    variances: DenseMatrix, // m × d
    n_classes: usize,
}

impl GaussianNaiveBayes {
    /// Fits per-class feature Gaussians and class priors.
    #[allow(clippy::needless_range_loop)] // loops index several parallel per-class arrays
    pub fn fit(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        config: &NaiveBayesConfig,
    ) -> Result<Self, ModelError> {
        if x.rows() != labels.len() {
            return Err(ModelError::new("feature/label row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        let (n, d, m) = (x.rows(), x.cols(), n_classes);
        let mut counts = vec![0usize; m];
        let mut means = DenseMatrix::zeros(m, d);
        for r in 0..n {
            let k = labels[r] as usize;
            counts[k] += 1;
            let (idx, vals) = x.row(r);
            let mean_row = means.row_mut(k);
            for (&c, &v) in idx.iter().zip(vals) {
                mean_row[c as usize] += v;
            }
        }
        for k in 0..m {
            if counts[k] == 0 {
                continue;
            }
            let inv = 1.0 / counts[k] as f64;
            for v in means.row_mut(k) {
                *v *= inv;
            }
        }
        // Variances, implicit zeros included: accumulate (v - mean)² for
        // stored entries, then add mean² for the implicit-zero rows.
        let mut variances = DenseMatrix::zeros(m, d);
        let mut nnz_per_class_feature = vec![vec![0usize; d]; m];
        for r in 0..n {
            let k = labels[r] as usize;
            let (idx, vals) = x.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                let c = c as usize;
                let diff = v - means.get(k, c);
                variances.set(k, c, variances.get(k, c) + diff * diff);
                nnz_per_class_feature[k][c] += 1;
            }
        }
        for k in 0..m {
            if counts[k] == 0 {
                continue;
            }
            for c in 0..d {
                let zeros = counts[k] - nnz_per_class_feature[k][c];
                let mean = means.get(k, c);
                let acc = variances.get(k, c) + zeros as f64 * mean * mean;
                variances.set(k, c, acc / counts[k] as f64);
            }
        }
        let max_var = variances
            .data()
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let eps = config.var_smoothing * max_var + 1e-12;
        for v in variances.data_mut() {
            *v += eps;
        }
        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| ((c.max(1)) as f64 / n as f64).ln())
            .collect();
        Ok(Self {
            log_priors,
            means,
            variances,
            n_classes: m,
        })
    }
}

impl Classifier for GaussianNaiveBayes {
    #[allow(clippy::needless_range_loop)] // loops index several parallel per-class arrays
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
        let (m, d) = (self.n_classes, self.means.cols());
        let mut out = DenseMatrix::zeros(x.rows(), m);
        // Precompute the log-likelihood of an all-zero row per class; each
        // stored entry then only needs a correction term.
        let mut zero_ll = vec![0.0; m];
        for k in 0..m {
            let mut acc = 0.0;
            for c in 0..d {
                let var = self.variances.get(k, c);
                let mean = self.means.get(k, c);
                acc += -0.5 * (2.0 * std::f64::consts::PI * var).ln() - 0.5 * mean * mean / var;
            }
            zero_ll[k] = acc;
        }
        for r in 0..x.rows() {
            let (idx, vals) = x.row(r);
            let row = out.row_mut(r);
            for k in 0..m {
                let mut ll = self.log_priors[k] + zero_ll[k];
                for (&c, &v) in idx.iter().zip(vals) {
                    let c = c as usize;
                    let var = self.variances.get(k, c);
                    let mean = self.means.get(k, c);
                    // Replace the zero-value contribution with the actual one.
                    ll += -0.5 * (v - mean) * (v - mean) / var + 0.5 * mean * mean / var;
                }
                row[k] = ll;
            }
            softmax_in_place(row);
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_linalg::SparseVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = (i % 2) as u32;
            let cx = if y == 0 { -1.5 } else { 1.5 };
            rows.push(
                SparseVec::from_pairs(
                    2,
                    vec![
                        (0, cx + rng.gen_range(-0.7..0.7)),
                        (1, cx + rng.gen_range(-0.7..0.7)),
                    ],
                )
                .unwrap(),
            );
            labels.push(y);
        }
        (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_gaussian_blobs() {
        let (x, y) = blobs(300, 1);
        let model = GaussianNaiveBayes::fit(&x, &y, 2, &NaiveBayesConfig::default()).unwrap();
        let pred = model.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        assert!(lvp_stats::accuracy(&pred, &labels) > 0.95);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = blobs(50, 2);
        let model = GaussianNaiveBayes::fit(&x, &y, 2, &NaiveBayesConfig::default()).unwrap();
        for row in model.predict_proba(&x).row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_zero_handling_matches_dense() {
        // A dataset where zeros are meaningful: class 0 rows are all-zero.
        let rows = vec![
            SparseVec::from_pairs(2, vec![]).unwrap(),
            SparseVec::from_pairs(2, vec![(0, 2.0), (1, 2.0)]).unwrap(),
            SparseVec::from_pairs(2, vec![]).unwrap(),
            SparseVec::from_pairs(2, vec![(0, 2.2), (1, 1.8)]).unwrap(),
        ];
        let x = CsrMatrix::from_sparse_rows(&rows).unwrap();
        let y = vec![0, 1, 0, 1];
        let model = GaussianNaiveBayes::fit(&x, &y, 2, &NaiveBayesConfig::default()).unwrap();
        let pred = model.predict_proba(&x).argmax_rows();
        assert_eq!(pred, vec![0, 1, 0, 1]);
    }

    #[test]
    fn rejects_empty_input() {
        let x = CsrMatrix::from_sparse_rows(&[]).unwrap();
        assert!(GaussianNaiveBayes::fit(&x, &[], 2, &NaiveBayesConfig::default()).is_err());
    }

    #[test]
    fn handles_single_class_training_data() {
        let (x, _) = blobs(20, 3);
        let y = vec![0u32; 20];
        let model = GaussianNaiveBayes::fit(&x, &y, 2, &NaiveBayesConfig::default()).unwrap();
        let p = model.predict_proba(&x);
        assert!(p.data().iter().all(|v| v.is_finite()));
    }
}
