//! Fault tolerance for the remote serving path.
//!
//! The paper's capstone experiment (§6.3.2) validates a model hosted by a
//! third-party cloud service, and related work on assessing black-box
//! models under query budgets presupposes a client layer that survives
//! flaky, metered endpoints. This module supplies that layer:
//!
//! * [`ResilientModel`] wraps any [`BlackBoxModel`] with retry + seeded
//!   exponential backoff, per-call attempt budgets and deadlines, a
//!   circuit breaker (closed → open → half-open), automatic request
//!   chunking with partial-result reassembly, and a response validator
//!   that rejects malformed probability matrices at the trust boundary;
//! * [`VirtualClock`] replaces wall-clock time everywhere, so backoff
//!   schedules, deadlines and breaker cooldowns are exactly reproducible
//!   in tests and chaos runs — "sleeping" advances the clock instead of
//!   blocking a thread;
//! * [`validate_probability_matrix`] is the shared contract check, also
//!   enforced at the [`RemoteModel`](crate::cloud::RemoteModel) boundary
//!   for non-resilient callers.
//!
//! # Determinism
//!
//! Nothing here reads ambient time or randomness. Backoff jitter is a pure
//! function of `(jitter_seed, request key, attempt)`, where the request
//! key ([`frame_content_key`]) hashes the batch *content* — not its
//! arrival order — so the retry schedule of a given logical request is
//! identical at any thread count. Circuit-breaker state, by contrast,
//! depends on the *interleaving* of call outcomes across threads, so its
//! metrics are registered as volatile and excluded from deterministic
//! telemetry views.

use crate::{BlackBoxModel, ModelError, ModelErrorKind};
use lvp_dataframe::{Column, DataFrame};
use lvp_linalg::DenseMatrix;
use lvp_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically advancing virtual clock in nanoseconds, shared between
/// a fault-injecting service (simulated latency) and the resilience layer
/// (backoff, deadlines, breaker cooldowns). Cloning shares the underlying
/// cell.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Advances the clock (a virtual "sleep" or simulated latency).
    pub fn advance(&self, nanos: u64) {
        self.0.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// Mixes inputs through two rounds of the splitmix64 finalizer; the same
/// construction the generation engine uses for per-run seeds. Public so
/// other admission-control layers (e.g. the `lvpd` daemon's per-tenant
/// shedding) can derive deterministic retry-after jitter the same way the
/// retry backoff here does.
pub fn mix64(mut z: u64) -> u64 {
    for _ in 0..2 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Content key of a batch request: an FNV-1a hash over the frame's schema
/// fingerprint, labels and every cell value.
///
/// Fault plans and backoff jitter key on this instead of a request arrival
/// counter, so the fault/retry schedule of a logical request does not
/// depend on how rayon interleaves requests across threads.
pub fn frame_content_key(frame: &DataFrame) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325 ^ frame.schema().fingerprint();
    let mut eat = |word: u64| {
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            hash ^= (word >> shift) & 0xFF;
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    eat(frame.n_rows() as u64);
    for &label in frame.labels() {
        eat(u64::from(label));
    }
    let eat_opt_f64 = |hash: &mut u64, v: Option<f64>| {
        let word = v.map_or(u64::MAX, f64::to_bits);
        for shift in [0u32, 8, 16, 24, 32, 40, 48, 56] {
            *hash ^= (word >> shift) & 0xFF;
            *hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    let eat_opt_str = |hash: &mut u64, v: Option<&String>| match v {
        None => {
            *hash ^= 0xFF;
            *hash = hash.wrapping_mul(FNV_PRIME);
        }
        Some(s) => {
            for &b in s.as_bytes() {
                *hash ^= u64::from(b);
                *hash = hash.wrapping_mul(FNV_PRIME);
            }
            *hash ^= 0xFE;
            *hash = hash.wrapping_mul(FNV_PRIME);
        }
    };
    for col in 0..frame.n_cols() {
        match frame.column(col) {
            Column::Numeric(values) => {
                for &v in values {
                    eat_opt_f64(&mut hash, v);
                }
            }
            Column::Categorical(values) | Column::Text(values) => {
                for v in values {
                    eat_opt_str(&mut hash, v.as_ref());
                }
            }
            Column::Image(values) => {
                for v in values {
                    match v {
                        None => eat_opt_f64(&mut hash, None),
                        Some(img) => {
                            eat_opt_f64(&mut hash, Some(img.width as f64));
                            eat_opt_f64(&mut hash, Some(img.height as f64));
                            for &px in &img.pixels {
                                eat_opt_f64(&mut hash, Some(px));
                            }
                        }
                    }
                }
            }
        }
    }
    mix64(hash)
}

/// Row-sum tolerance of [`validate_probability_matrix`]. Softmax and
/// logistic outputs normalize to well within this; corrupted rows (scaled,
/// non-finite) are far outside it.
pub const ROW_SUM_TOLERANCE: f64 = 1e-4;

/// Checks a prediction response against the probability contract: the
/// matrix must have exactly `expected_rows × n_classes` entries, every
/// entry must be finite and in `[0, 1]` (within tolerance), and every row
/// must sum to 1 within [`ROW_SUM_TOLERANCE`].
///
/// This is the trust boundary between a remote service and the predictor:
/// a malformed response becomes a typed, retryable
/// [`ModelErrorKind::InvalidResponse`] instead of garbage flowing into
/// `prediction_statistics`.
pub fn validate_probability_matrix(
    proba: &DenseMatrix,
    expected_rows: usize,
    n_classes: usize,
) -> Result<(), ModelError> {
    if proba.rows() != expected_rows {
        return Err(ModelError::invalid_response(format!(
            "truncated response: {} rows returned for a {expected_rows}-row request",
            proba.rows()
        )));
    }
    if proba.cols() != n_classes {
        return Err(ModelError::invalid_response(format!(
            "response has {} class columns, expected {n_classes}",
            proba.cols()
        )));
    }
    for (i, row) in proba.row_iter().enumerate() {
        let mut sum = 0.0;
        for &p in row {
            if !p.is_finite() || !(-ROW_SUM_TOLERANCE..=1.0 + ROW_SUM_TOLERANCE).contains(&p) {
                return Err(ModelError::invalid_response(format!(
                    "corrupted response: row {i} contains probability {p}"
                )));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > ROW_SUM_TOLERANCE {
            return Err(ModelError::invalid_response(format!(
                "corrupted response: row {i} sums to {sum}"
            )));
        }
    }
    Ok(())
}

/// Circuit breaker configuration of a [`ResilientModel`].
///
/// The breaker watches *call-level* outcomes (a call that exhausts its
/// retry budget counts as one failure; a successful call resets the run),
/// not individual attempt failures — concurrent callers would otherwise
/// interleave their attempt failures into spuriously long runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive terminally-failed calls that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual nanoseconds the breaker stays open before admitting
    /// half-open probe calls.
    pub cooldown_nanos: u64,
    /// Successful half-open probes required to close the breaker again.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown_nanos: 30_000_000_000, // 30 virtual seconds
            half_open_successes: 2,
        }
    }
}

/// Retry, chunking and breaker knobs of a [`ResilientModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Attempts per chunk before the call fails terminally (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is
    /// `min(base · 2^(k−1), max) · jitter`, with jitter in `[0.5, 1.5)`
    /// derived from `(jitter_seed, request key, k)`.
    pub base_backoff_nanos: u64,
    /// Cap on the un-jittered exponential backoff.
    pub max_backoff_nanos: u64,
    /// Seed of the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// Per-call budget on the virtual clock across all chunks and retries;
    /// 0 disables the deadline.
    pub call_deadline_nanos: u64,
    /// Rows per request chunk; 0 sends each call as a single request.
    pub chunk_rows: usize,
    /// Circuit breaker policy.
    pub breaker: BreakerConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_nanos: 10_000_000, // 10 virtual ms
            max_backoff_nanos: 1_000_000_000,
            jitter_seed: 0x5EED_1E55,
            call_deadline_nanos: 0,
            chunk_rows: 0,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Circuit breaker state of a [`ResilientModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitState {
    /// Calls flow through; consecutive terminal failures are counted.
    Closed,
    /// Calls are rejected without touching the endpoint until the cooldown
    /// elapses on the virtual clock.
    Open,
    /// Probe calls are admitted; enough successes close the breaker, any
    /// failure re-opens it.
    HalfOpen,
}

impl CircuitState {
    fn gauge_value(self) -> f64 {
        match self {
            CircuitState::Closed => 0.0,
            CircuitState::Open => 1.0,
            CircuitState::HalfOpen => 2.0,
        }
    }
}

struct BreakerState {
    state: CircuitState,
    consecutive_failures: u32,
    opened_at_nanos: u64,
    half_open_successes: u32,
}

/// Pre-resolved telemetry handles. Retry/attempt counters derive from the
/// content-keyed fault schedule and are deterministic at any thread count;
/// breaker metrics depend on cross-thread interleaving and are volatile.
struct ResilienceMetrics {
    /// `resilience.calls` — predict calls entering the wrapper.
    calls: Counter,
    /// `resilience.call_failures` — calls that failed terminally.
    call_failures: Counter,
    /// `resilience.attempts` — individual endpoint attempts (per chunk).
    attempts: Counter,
    /// `resilience.retries` — attempts beyond the first for a chunk.
    retries: Counter,
    /// `resilience.chunks` — request chunks issued.
    chunks: Counter,
    /// `resilience.transient_errors` — attempts failed with a transient error.
    transient: Counter,
    /// `resilience.rate_limited` — attempts rejected by rate limiting.
    rate_limited: Counter,
    /// `resilience.invalid_responses` — responses rejected by the validator.
    invalid: Counter,
    /// `resilience.backoff` — virtual backoff durations slept before retries.
    backoff: Histogram,
    /// `resilience.breaker_state` — 0 closed / 1 open / 2 half-open (volatile).
    breaker_state: Gauge,
    /// `resilience.breaker_transitions` — state changes (volatile).
    breaker_transitions: Counter,
    /// `resilience.breaker_rejections` — calls rejected while open (volatile).
    breaker_rejections: Counter,
}

impl ResilienceMetrics {
    fn resolve(registry: &Registry) -> Self {
        Self {
            calls: registry.counter("resilience.calls"),
            call_failures: registry.counter("resilience.call_failures"),
            attempts: registry.counter("resilience.attempts"),
            retries: registry.counter("resilience.retries"),
            chunks: registry.counter("resilience.chunks"),
            transient: registry.counter("resilience.transient_errors"),
            rate_limited: registry.counter("resilience.rate_limited"),
            invalid: registry.counter("resilience.invalid_responses"),
            backoff: registry.histogram("resilience.backoff"),
            breaker_state: registry.volatile_gauge("resilience.breaker_state"),
            breaker_transitions: registry.volatile_counter("resilience.breaker_transitions"),
            breaker_rejections: registry.volatile_counter("resilience.breaker_rejections"),
        }
    }
}

/// A fault-tolerant [`BlackBoxModel`] wrapper for flaky remote endpoints.
///
/// Every `predict_proba` call is split into row chunks (optional), each
/// chunk is retried with deterministic seeded-jitter exponential backoff
/// under a per-call attempt budget and virtual-clock deadline, responses
/// are checked against the probability contract before reassembly, and a
/// circuit breaker sheds load after sustained terminal failures.
///
/// Successfully validated chunks are kept across retries of their
/// neighbours (partial-result reassembly): a 1000-row call with one flaky
/// chunk re-requests only that chunk.
pub struct ResilientModel {
    inner: Arc<dyn BlackBoxModel>,
    config: ResilienceConfig,
    clock: VirtualClock,
    breaker: Mutex<BreakerState>,
    name: String,
    metrics: Option<ResilienceMetrics>,
}

impl ResilientModel {
    /// Wraps `inner` with the given policy, on a fresh virtual clock.
    pub fn new(inner: Arc<dyn BlackBoxModel>, config: ResilienceConfig) -> Self {
        Self::with_clock(inner, config, VirtualClock::new())
    }

    /// Wraps `inner`, sharing `clock` with (for instance) a fault-injecting
    /// service that simulates latency on the same timeline.
    pub fn with_clock(
        inner: Arc<dyn BlackBoxModel>,
        config: ResilienceConfig,
        clock: VirtualClock,
    ) -> Self {
        let name = format!("resilient({})", inner.name());
        Self {
            inner,
            config,
            clock,
            breaker: Mutex::new(BreakerState {
                state: CircuitState::Closed,
                consecutive_failures: 0,
                opened_at_nanos: 0,
                half_open_successes: 0,
            }),
            name,
            metrics: None,
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The configured policy.
    pub fn config(&self) -> &ResilienceConfig {
        &self.config
    }

    /// Current circuit-breaker state. A poisoned breaker lock (a peer
    /// thread panicked mid-transition) reads as [`CircuitState::Open`]:
    /// the conservative answer for a breaker whose state is unknowable.
    pub fn circuit_state(&self) -> CircuitState {
        self.breaker
            .lock()
            .map(|b| b.state)
            .unwrap_or(CircuitState::Open)
    }

    /// Un-jittered exponential backoff before retry `attempt` (1-based).
    fn raw_backoff_nanos(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(62);
        self.config
            .base_backoff_nanos
            .saturating_mul(1u64 << doublings)
            .min(self.config.max_backoff_nanos)
    }

    /// Deterministic jittered backoff: `raw · [0.5, 1.5)`, derived from
    /// `(jitter_seed, key, attempt)` — a pure function, so the schedule is
    /// identical across runs and thread counts.
    fn backoff_nanos(&self, key: u64, attempt: u32) -> u64 {
        let raw = self.raw_backoff_nanos(attempt) as f64;
        let h = mix64(
            self.config.jitter_seed.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ key
                ^ u64::from(attempt).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        (raw * (0.5 + unit)) as u64
    }

    /// Breaker admission check; transitions open → half-open after the
    /// cooldown. Returns an error when calls must be shed.
    fn admit(&self) -> Result<(), ModelError> {
        let mut b = self
            .breaker
            .lock()
            .map_err(|_| ModelError::new("circuit breaker state poisoned by a panicked thread"))?;
        if b.state == CircuitState::Open {
            if self.clock.now_nanos() >= b.opened_at_nanos + self.config.breaker.cooldown_nanos {
                b.state = CircuitState::HalfOpen;
                b.half_open_successes = 0;
                self.record_breaker(&b);
            } else {
                if let Some(m) = &self.metrics {
                    m.breaker_rejections.inc();
                }
                return Err(ModelError::transient(
                    "circuit breaker open: calls are being shed until the cooldown elapses",
                ));
            }
        }
        Ok(())
    }

    fn record_breaker(&self, b: &BreakerState) {
        if let Some(m) = &self.metrics {
            m.breaker_state.set(b.state.gauge_value());
            m.breaker_transitions.inc();
        }
    }

    fn on_call_success(&self) {
        if let Ok(mut b) = self.breaker.lock() {
            b.consecutive_failures = 0;
            if b.state == CircuitState::HalfOpen {
                b.half_open_successes += 1;
                if b.half_open_successes >= self.config.breaker.half_open_successes {
                    b.state = CircuitState::Closed;
                    self.record_breaker(&b);
                }
            }
        }
    }

    fn on_call_failure(&self) {
        if let Ok(mut b) = self.breaker.lock() {
            match b.state {
                CircuitState::HalfOpen => {
                    b.state = CircuitState::Open;
                    b.opened_at_nanos = self.clock.now_nanos();
                    self.record_breaker(&b);
                }
                CircuitState::Closed => {
                    b.consecutive_failures += 1;
                    if b.consecutive_failures >= self.config.breaker.failure_threshold {
                        b.state = CircuitState::Open;
                        b.opened_at_nanos = self.clock.now_nanos();
                        self.record_breaker(&b);
                    }
                }
                CircuitState::Open => {}
            }
        }
    }

    /// One chunk with retries. `deadline` is the absolute virtual-clock
    /// cutoff for the whole call (`u64::MAX` when disabled).
    fn predict_chunk(&self, chunk: &DataFrame, deadline: u64) -> Result<DenseMatrix, ModelError> {
        let key = frame_content_key(chunk);
        let n_classes = self.inner.n_classes();
        let mut last_error = None;
        if let Some(m) = &self.metrics {
            m.chunks.inc();
        }
        for attempt in 1..=self.config.max_attempts.max(1) {
            if attempt > 1 {
                let backoff = self.backoff_nanos(key, attempt - 1);
                if self.clock.now_nanos().saturating_add(backoff) > deadline {
                    return Err(ModelError::transient(format!(
                        "call deadline exceeded after {} attempts; last error: {}",
                        attempt - 1,
                        last_error.map_or_else(|| "none".into(), |e: ModelError| e.message)
                    )));
                }
                self.clock.advance(backoff);
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                    m.backoff.record(Duration::from_nanos(backoff));
                }
            }
            if let Some(m) = &self.metrics {
                m.attempts.inc();
            }
            let outcome = self.inner.try_predict_proba(chunk).and_then(|proba| {
                validate_probability_matrix(&proba, chunk.n_rows(), n_classes)?;
                Ok(proba)
            });
            match outcome {
                Ok(proba) => return Ok(proba),
                Err(e) => {
                    if let Some(m) = &self.metrics {
                        match e.kind {
                            ModelErrorKind::Transient => m.transient.inc(),
                            ModelErrorKind::RateLimited => m.rate_limited.inc(),
                            ModelErrorKind::InvalidResponse => m.invalid.inc(),
                            _ => {}
                        }
                    }
                    if !e.is_retryable() {
                        return Err(e);
                    }
                    last_error = Some(e);
                }
            }
        }
        Err(ModelError::transient(format!(
            "retry budget of {} attempts exhausted; last error: {}",
            self.config.max_attempts.max(1),
            last_error.map_or_else(|| "none".into(), |e| e.message)
        )))
    }
}

impl BlackBoxModel for ResilientModel {
    /// Infallible trait entry point; panics if the call fails terminally
    /// even after retries. Serving paths that must survive terminal
    /// failures (the batch monitor, the generation engine) go through
    /// [`Self::try_predict_proba`] instead.
    fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
        self.try_predict_proba(data)
            .unwrap_or_else(|e| panic!("resilient call failed terminally: {e}"))
    }

    fn try_predict_proba(&self, data: &DataFrame) -> Result<DenseMatrix, ModelError> {
        if let Some(m) = &self.metrics {
            m.calls.inc();
        }
        let fail = |this: &Self, e: ModelError| {
            this.on_call_failure();
            if let Some(m) = &this.metrics {
                m.call_failures.inc();
            }
            Err(e)
        };
        if let Err(e) = self.admit() {
            // A shed call is a terminal failure for the caller but must not
            // extend the breaker's failure run (it never reached the
            // endpoint), so it bypasses `fail`.
            if let Some(m) = &self.metrics {
                m.call_failures.inc();
            }
            return Err(e);
        }
        let deadline = if self.config.call_deadline_nanos == 0 {
            u64::MAX
        } else {
            self.clock
                .now_nanos()
                .saturating_add(self.config.call_deadline_nanos)
        };
        let n = data.n_rows();
        let chunk_rows = if self.config.chunk_rows == 0 {
            n.max(1)
        } else {
            self.config.chunk_rows
        };
        if n <= chunk_rows {
            return match self.predict_chunk(data, deadline) {
                Ok(proba) => {
                    self.on_call_success();
                    Ok(proba)
                }
                Err(e) => fail(self, e),
            };
        }
        // Chunked path: completed chunks are retained while later chunks
        // retry, then reassembled in row order.
        let mut parts = Vec::with_capacity(n.div_ceil(chunk_rows));
        let mut start = 0;
        while start < n {
            let end = (start + chunk_rows).min(n);
            let indices: Vec<usize> = (start..end).collect();
            let chunk = data.select_rows(&indices);
            match self.predict_chunk(&chunk, deadline) {
                Ok(proba) => parts.push(proba),
                Err(e) => {
                    return fail(
                        self,
                        ModelError::with_kind(
                            format!(
                                "chunk {}..{} of a {n}-row request failed terminally \
                                 ({} chunks already reassembled): {}",
                                start,
                                end,
                                parts.len(),
                                e.message
                            ),
                            e.kind,
                        ),
                    )
                }
            }
            start = end;
        }
        let views: Vec<&DenseMatrix> = parts.iter().collect();
        let assembled = DenseMatrix::vstack(&views)
            .map_err(|e| ModelError::new(format!("chunk reassembly failed: {e}")))?;
        self.on_call_success();
        Ok(assembled)
    }

    fn n_classes(&self) -> usize {
        self.inner.n_classes()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn attach_telemetry(&mut self, registry: &Registry) {
        let metrics = ResilienceMetrics::resolve(registry);
        metrics
            .breaker_state
            .set(CircuitState::Closed.gauge_value());
        self.metrics = Some(metrics);
    }

    fn publish_telemetry(&self) {
        self.inner.publish_telemetry();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use std::sync::atomic::AtomicUsize;

    /// A scripted inner model: fails the first `failures_per_call` attempts
    /// of every call (keyed per request), or fails always when
    /// `always_fail` is set.
    struct Scripted {
        n_classes: usize,
        attempts: AtomicUsize,
        fail_first: usize,
        always_fail: bool,
        corrupt_instead: bool,
    }

    impl Scripted {
        fn healthy_after(fail_first: usize) -> Self {
            Self {
                n_classes: 2,
                attempts: AtomicUsize::new(0),
                fail_first,
                always_fail: false,
                corrupt_instead: false,
            }
        }

        fn broken() -> Self {
            Self {
                always_fail: true,
                ..Self::healthy_after(0)
            }
        }

        fn uniform(&self, n: usize) -> DenseMatrix {
            DenseMatrix::from_vec(n, self.n_classes, vec![0.5; n * self.n_classes]).unwrap()
        }
    }

    impl BlackBoxModel for Scripted {
        fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
            self.try_predict_proba(data).unwrap()
        }

        fn try_predict_proba(&self, data: &DataFrame) -> Result<DenseMatrix, ModelError> {
            let attempt = self.attempts.fetch_add(1, Ordering::SeqCst);
            if self.always_fail || attempt < self.fail_first {
                if self.corrupt_instead {
                    let mut bad = self.uniform(data.n_rows());
                    bad.set(0, 0, f64::NAN);
                    return Ok(bad);
                }
                return Err(ModelError::transient("injected"));
            }
            Ok(self.uniform(data.n_rows()))
        }

        fn n_classes(&self) -> usize {
            self.n_classes
        }

        fn name(&self) -> &str {
            "scripted"
        }
    }

    fn resilient(inner: Scripted, config: ResilienceConfig) -> ResilientModel {
        ResilientModel::new(Arc::new(inner), config)
    }

    #[test]
    fn validator_enforces_the_probability_contract() {
        let good = DenseMatrix::from_rows(&[vec![0.25, 0.75], vec![1.0, 0.0]]).unwrap();
        assert!(validate_probability_matrix(&good, 2, 2).is_ok());
        // Truncated.
        let err = validate_probability_matrix(&good, 3, 2).unwrap_err();
        assert_eq!(err.kind, ModelErrorKind::InvalidResponse);
        assert!(err.message.contains("truncated"), "{err}");
        // Wrong width.
        assert!(validate_probability_matrix(&good, 2, 3).is_err());
        // Non-finite.
        let nan = DenseMatrix::from_rows(&[vec![f64::NAN, 1.0]]).unwrap();
        assert!(validate_probability_matrix(&nan, 1, 2).is_err());
        // Non-normalized.
        let scaled = DenseMatrix::from_rows(&[vec![0.9, 0.9]]).unwrap();
        let err = validate_probability_matrix(&scaled, 1, 2).unwrap_err();
        assert!(err.message.contains("sums to"), "{err}");
        // Negative probability.
        let neg = DenseMatrix::from_rows(&[vec![-0.2, 1.2]]).unwrap();
        assert!(validate_probability_matrix(&neg, 1, 2).is_err());
        // All retryable: a healthy replica may answer correctly.
        assert!(validate_probability_matrix(&neg, 1, 2)
            .unwrap_err()
            .is_retryable());
    }

    #[test]
    fn retries_recover_from_transient_failures() {
        let model = resilient(Scripted::healthy_after(3), ResilienceConfig::default());
        let df = toy_frame(12);
        let proba = model.try_predict_proba(&df).unwrap();
        assert_eq!(proba.rows(), 12);
        assert_eq!(model.circuit_state(), CircuitState::Closed);
        // Three backoffs were slept on the virtual clock.
        assert!(model.clock().now_nanos() > 0);
    }

    #[test]
    fn retry_budget_exhaustion_is_a_typed_terminal_error() {
        let model = resilient(
            Scripted::broken(),
            ResilienceConfig {
                max_attempts: 3,
                breaker: BreakerConfig {
                    failure_threshold: 100,
                    ..BreakerConfig::default()
                },
                ..ResilienceConfig::default()
            },
        );
        let err = model.try_predict_proba(&toy_frame(5)).unwrap_err();
        assert!(err.message.contains("retry budget"), "{err}");
        assert!(err.is_retryable());
    }

    #[test]
    fn corrupted_responses_are_rejected_and_retried() {
        let inner = Scripted {
            corrupt_instead: true,
            ..Scripted::healthy_after(2)
        };
        let model = resilient(inner, ResilienceConfig::default());
        let proba = model.try_predict_proba(&toy_frame(8)).unwrap();
        // The NaN-poisoned responses never escaped the trust boundary.
        assert!(proba.data().iter().all(|p| p.is_finite()));
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let model = resilient(Scripted::broken(), ResilienceConfig::default());
        let key = frame_content_key(&toy_frame(7));
        let schedule: Vec<u64> = (1..=6).map(|a| model.backoff_nanos(key, a)).collect();
        // Deterministic: recomputing yields the identical schedule.
        let again: Vec<u64> = (1..=6).map(|a| model.backoff_nanos(key, a)).collect();
        assert_eq!(schedule, again);
        // Jitter stays within [0.5, 1.5) of the raw exponential value.
        for (i, &b) in schedule.iter().enumerate() {
            let raw = model.raw_backoff_nanos(i as u32 + 1) as f64;
            assert!(
                (b as f64) >= raw * 0.5 && (b as f64) < raw * 1.5,
                "{i}: {b}"
            );
        }
        // A different key re-rolls the jitter.
        let other: Vec<u64> = (1..=6)
            .map(|a| model.backoff_nanos(key ^ 0xDEAD, a))
            .collect();
        assert_ne!(schedule, other);
    }

    #[test]
    fn deadline_bounds_the_virtual_time_spent_retrying() {
        let model = resilient(
            Scripted::broken(),
            ResilienceConfig {
                max_attempts: 100,
                base_backoff_nanos: 1_000_000,
                call_deadline_nanos: 10_000_000,
                breaker: BreakerConfig {
                    failure_threshold: 100,
                    ..BreakerConfig::default()
                },
                ..ResilienceConfig::default()
            },
        );
        let start = model.clock().now_nanos();
        let err = model.try_predict_proba(&toy_frame(4)).unwrap_err();
        assert!(err.message.contains("deadline"), "{err}");
        assert!(model.clock().now_nanos() - start <= 10_000_000);
    }

    #[test]
    fn breaker_walks_closed_open_half_open_closed() {
        let inner = Scripted::healthy_after(2 * 3); // first two calls fail terminally
        let model = resilient(
            inner,
            ResilienceConfig {
                max_attempts: 3,
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown_nanos: 1_000,
                    half_open_successes: 2,
                },
                ..ResilienceConfig::default()
            },
        );
        let df = toy_frame(6);
        assert_eq!(model.circuit_state(), CircuitState::Closed);
        // Two terminal call failures trip the breaker.
        assert!(model.try_predict_proba(&df).is_err());
        assert_eq!(model.circuit_state(), CircuitState::Closed);
        assert!(model.try_predict_proba(&df).is_err());
        assert_eq!(model.circuit_state(), CircuitState::Open);
        // While open, calls are shed without touching the endpoint.
        let before = model.clock().now_nanos();
        let err = model.try_predict_proba(&df).unwrap_err();
        assert!(err.message.contains("circuit breaker open"), "{err}");
        assert_eq!(model.clock().now_nanos(), before, "no endpoint attempt");
        // After the cooldown the breaker admits half-open probes.
        model.clock().advance(1_000);
        assert!(model.try_predict_proba(&df).is_ok());
        assert_eq!(model.circuit_state(), CircuitState::HalfOpen);
        assert!(model.try_predict_proba(&df).is_ok());
        assert_eq!(model.circuit_state(), CircuitState::Closed);
    }

    #[test]
    fn half_open_failure_reopens_the_breaker() {
        let model = resilient(
            Scripted::broken(),
            ResilienceConfig {
                max_attempts: 1,
                breaker: BreakerConfig {
                    failure_threshold: 1,
                    cooldown_nanos: 500,
                    half_open_successes: 1,
                },
                ..ResilienceConfig::default()
            },
        );
        let df = toy_frame(3);
        assert!(model.try_predict_proba(&df).is_err());
        assert_eq!(model.circuit_state(), CircuitState::Open);
        model.clock().advance(500);
        assert!(model.try_predict_proba(&df).is_err());
        assert_eq!(model.circuit_state(), CircuitState::Open, "probe failed");
    }

    #[test]
    fn chunked_calls_reassemble_in_row_order() {
        // An order-sensitive inner model: probability of class 1 encodes
        // the row's numeric feature, so reassembly errors are visible.
        struct RowEcho;
        impl BlackBoxModel for RowEcho {
            fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
                let values = data.column(0).as_numeric().unwrap();
                let rows: Vec<Vec<f64>> = values
                    .iter()
                    .map(|v| {
                        let p = (v.unwrap_or(0.0).abs() % 100.0) / 200.0;
                        vec![1.0 - p, p]
                    })
                    .collect();
                DenseMatrix::from_rows(&rows).unwrap()
            }
            fn n_classes(&self) -> usize {
                2
            }
            fn name(&self) -> &str {
                "row-echo"
            }
        }
        let df = toy_frame(37);
        let unchunked = RowEcho.predict_proba(&df);
        let model = ResilientModel::new(
            Arc::new(RowEcho),
            ResilienceConfig {
                chunk_rows: 8,
                ..ResilienceConfig::default()
            },
        );
        assert_eq!(model.try_predict_proba(&df).unwrap(), unchunked);
    }

    #[test]
    fn telemetry_counts_attempts_retries_and_breaker_state() {
        let mut model = resilient(Scripted::healthy_after(2), ResilienceConfig::default());
        let registry = Registry::new();
        model.attach_telemetry(&registry);
        let df = toy_frame(9);
        assert!(model.try_predict_proba(&df).is_ok());
        let snap = registry.snapshot();
        assert_eq!(snap.counters["resilience.calls"], 1);
        assert_eq!(snap.counters["resilience.attempts"], 3);
        assert_eq!(snap.counters["resilience.retries"], 2);
        assert_eq!(snap.counters["resilience.transient_errors"], 2);
        assert_eq!(snap.counters["resilience.call_failures"], 0);
        assert_eq!(snap.histograms["resilience.backoff"].count, 2);
        assert_eq!(snap.gauges["resilience.breaker_state"], 0.0);
        // Breaker metrics are scheduling-dependent → volatile; the retry
        // counters derive from the content-keyed schedule → deterministic.
        assert!(snap.volatile.contains(&"resilience.breaker_state".into()));
        assert!(!snap.volatile.contains(&"resilience.retries".into()));
    }

    #[test]
    fn frame_content_key_tracks_content_not_identity() {
        let a = toy_frame(20);
        let b = toy_frame(20);
        assert_eq!(frame_content_key(&a), frame_content_key(&b));
        assert_ne!(frame_content_key(&a), frame_content_key(&toy_frame(21)));
        let mut mutated = a.clone();
        mutated.column_mut(1).set_null(3);
        assert_ne!(frame_content_key(&a), frame_content_key(&mutated));
    }
}
