//! K-fold cross-validation and grid-search helpers.
//!
//! The paper trains every model with five-fold cross-validation and a grid
//! search over its key hyperparameters (§6 "Models", §4 for the random
//! forest meta-model). These helpers implement that protocol generically.

use rand::seq::SliceRandom;
use rand::Rng;

/// Produces `k` (train, validation) index partitions of `0..n`.
///
/// Rows are shuffled once, then each fold takes a contiguous slice as its
/// validation set; folds are disjoint and cover all rows.
pub fn kfold_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "need at least two folds");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let lo = n * f / k;
        let hi = n * (f + 1) / k;
        let val: Vec<usize> = idx[lo..hi].to_vec();
        let train: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        folds.push((train, val));
    }
    folds
}

/// Exhaustive grid search: evaluates `score_fn(candidate)` (higher is
/// better) for every candidate and returns the best one with its score.
///
/// NaN scores lose explicitly: a NaN never replaces an incumbent, and any
/// non-NaN score replaces a NaN incumbent. (With a plain `s > best`
/// comparison a NaN incumbent — e.g. from an accuracy over an empty
/// validation fold — would silently win against every later candidate.)
///
/// Panics on an empty grid — a grid search without candidates is a bug at
/// the call site.
pub fn grid_search_max<C: Clone>(
    candidates: &[C],
    mut score_fn: impl FnMut(&C) -> f64,
) -> (C, f64) {
    assert!(!candidates.is_empty(), "empty hyperparameter grid");
    let mut best: Option<(C, f64)> = None;
    for c in candidates {
        let s = score_fn(c);
        let better = match &best {
            None => true,
            Some((_, bs)) => s > *bs || (bs.is_nan() && !s.is_nan()),
        };
        if better {
            best = Some((c.clone(), s));
        }
    }
    best.expect("non-empty grid produced a winner")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folds_partition_all_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = kfold_indices(103, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 103];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 103);
            for &i in val {
                assert!(!seen[i], "row {i} in two validation folds");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every row validates exactly once");
    }

    #[test]
    fn train_and_val_are_disjoint() {
        let mut rng = StdRng::seed_from_u64(2);
        for (train, val) in kfold_indices(50, 5, &mut rng) {
            for v in &val {
                assert!(!train.contains(v));
            }
        }
    }

    #[test]
    fn grid_search_picks_maximum() {
        let grid = [1, 5, 3];
        let (best, score) = grid_search_max(&grid, |&c| f64::from(c));
        assert_eq!(best, 5);
        assert_eq!(score, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty hyperparameter grid")]
    fn grid_search_rejects_empty_grid() {
        grid_search_max::<u8>(&[], |_| 0.0);
    }

    /// Satellite-2 regression test: a NaN score for the first candidate
    /// must not shadow every later finite score.
    #[test]
    fn nan_incumbent_loses_to_any_finite_score() {
        let grid = [1, 2, 3];
        let (best, score) = grid_search_max(&grid, |&c| match c {
            1 => f64::NAN,
            2 => -5.0,
            _ => -7.0,
        });
        assert_eq!(best, 2);
        assert_eq!(score, -5.0);
    }

    #[test]
    fn nan_candidate_never_replaces_finite_incumbent() {
        let grid = [1, 2];
        let (best, score) = grid_search_max(&grid, |&c| if c == 1 { 0.5 } else { f64::NAN });
        assert_eq!(best, 1);
        assert_eq!(score, 0.5);
    }

    #[test]
    fn all_nan_scores_fall_back_to_first_candidate() {
        let grid = [7, 8];
        let (best, score) = grid_search_max(&grid, |_| f64::NAN);
        assert_eq!(best, 7);
        assert!(score.is_nan());
    }
}
