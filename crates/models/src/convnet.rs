//! Convolutional network for the image tasks (the paper's `conv` model):
//! two 3×3 convolutional layers with ReLU, 2×2 max pooling, a dense layer,
//! dropout regularization and a softmax output.
//!
//! The paper's architecture uses 32 and 64 convolution channels and a dense
//! width of 128 ([`ConvNetConfig::paper`]). Training that from scratch on a
//! single CPU core is slow, so experiments default to a proportionally
//! scaled variant ([`ConvNetConfig::small`]) with the identical topology;
//! the substitution is recorded in DESIGN.md.
//!
//! Input is the flattened pixel CSR matrix produced by the image feature
//! pipeline; the network reshapes rows back to `side × side` internally.

use crate::opt::Adam;
use crate::{one_hot_labels, Classifier, ModelError};
use lvp_linalg::{relu, relu_grad, softmax_in_place, CsrMatrix, DenseMatrix};
use rand::seq::SliceRandom;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Architecture and training configuration for [`ConvNet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvNetConfig {
    /// Input image side length (images are `side × side`).
    pub side: usize,
    /// Channels of the first convolution.
    pub c1: usize,
    /// Channels of the second convolution.
    pub c2: usize,
    /// Width of the dense layer.
    pub dense: usize,
    /// Dropout probability on the dense activations during training.
    pub dropout: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
}

impl ConvNetConfig {
    /// The architecture exactly as described in the paper (§6 "Models").
    pub fn paper(side: usize) -> Self {
        Self {
            side,
            c1: 32,
            c2: 64,
            dense: 128,
            dropout: 0.25,
            learning_rate: 1e-3,
            epochs: 6,
            batch_size: 32,
        }
    }

    /// A proportionally scaled variant for single-core experiment runs.
    pub fn small(side: usize) -> Self {
        Self {
            side,
            c1: 6,
            c2: 12,
            dense: 32,
            dropout: 0.25,
            learning_rate: 1e-3,
            epochs: 5,
            batch_size: 32,
        }
    }

    /// A minimal variant for unit tests.
    pub fn tiny(side: usize) -> Self {
        Self {
            side,
            c1: 3,
            c2: 6,
            dense: 16,
            dropout: 0.2,
            learning_rate: 2e-3,
            epochs: 4,
            batch_size: 16,
        }
    }
}

const K: usize = 3; // kernel side
const POOL: usize = 2;

/// A fitted convolutional network.
pub struct ConvNet {
    cfg: ConvNetConfig,
    // conv1: [c1][1][K][K] flattened; conv2: [c2][c1][K][K] flattened.
    w_conv1: Vec<f64>,
    b_conv1: Vec<f64>,
    w_conv2: Vec<f64>,
    b_conv2: Vec<f64>,
    // fc1: [flat][dense], fc2: [dense][m]; both row-major.
    w_fc1: Vec<f64>,
    b_fc1: Vec<f64>,
    w_fc2: Vec<f64>,
    b_fc2: Vec<f64>,
    n_classes: usize,
}

/// Per-image activations retained for the backward pass.
struct Activations {
    input: Vec<f64>,      // side²
    z1: Vec<f64>,         // c1 × side²
    a1: Vec<f64>,         // c1 × side²
    z2: Vec<f64>,         // c2 × side²
    pooled: Vec<f64>,     // c2 × (side/2)²
    pool_idx: Vec<usize>, // argmax offsets into a2
    z_fc1: Vec<f64>,      // dense
    a_fc1: Vec<f64>,      // dense (after dropout mask during training)
    drop_mask: Vec<f64>,
    probs: Vec<f64>, // m
}

impl ConvNet {
    /// Fits the network with Adam on minibatches.
    pub fn fit(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        cfg: &ConvNetConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ModelError> {
        if x.rows() != labels.len() {
            return Err(ModelError::new("feature/label row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        if x.cols() != cfg.side * cfg.side {
            return Err(ModelError::new(format!(
                "expected {}x{} flattened images ({} dims), got {}",
                cfg.side,
                cfg.side,
                cfg.side * cfg.side,
                x.cols()
            )));
        }
        let side = cfg.side;
        let half = side / POOL;
        let flat = cfg.c2 * half * half;
        let m = n_classes;

        let init = |fan_in: usize, len: usize, rng: &mut dyn rand::RngCore| -> Vec<f64> {
            let std = (2.0 / fan_in.max(1) as f64).sqrt();
            let normal = Normal::new(0.0, std).expect("finite parameters");
            (0..len).map(|_| normal.sample(rng)).collect()
        };

        let mut net = Self {
            cfg: *cfg,
            w_conv1: init(K * K, cfg.c1 * K * K, rng),
            b_conv1: vec![0.0; cfg.c1],
            w_conv2: init(cfg.c1 * K * K, cfg.c2 * cfg.c1 * K * K, rng),
            b_conv2: vec![0.0; cfg.c2],
            w_fc1: init(flat, flat * cfg.dense, rng),
            b_fc1: vec![0.0; cfg.dense],
            w_fc2: init(cfg.dense, cfg.dense * m, rng),
            b_fc2: vec![0.0; m],
            n_classes: m,
        };

        let y = one_hot_labels(labels, m);
        let mut opt_c1 = Adam::new(net.w_conv1.len(), cfg.learning_rate);
        let mut opt_bc1 = Adam::new(net.b_conv1.len(), cfg.learning_rate);
        let mut opt_c2 = Adam::new(net.w_conv2.len(), cfg.learning_rate);
        let mut opt_bc2 = Adam::new(net.b_conv2.len(), cfg.learning_rate);
        let mut opt_f1 = Adam::new(net.w_fc1.len(), cfg.learning_rate);
        let mut opt_bf1 = Adam::new(net.b_fc1.len(), cfg.learning_rate);
        let mut opt_f2 = Adam::new(net.w_fc2.len(), cfg.learning_rate);
        let mut opt_bf2 = Adam::new(net.b_fc2.len(), cfg.learning_rate);

        let mut order: Vec<usize> = (0..x.rows()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(rng);
            for batch in order.chunks(cfg.batch_size) {
                let mut g_c1 = vec![0.0; net.w_conv1.len()];
                let mut g_bc1 = vec![0.0; net.b_conv1.len()];
                let mut g_c2 = vec![0.0; net.w_conv2.len()];
                let mut g_bc2 = vec![0.0; net.b_conv2.len()];
                let mut g_f1 = vec![0.0; net.w_fc1.len()];
                let mut g_bf1 = vec![0.0; net.b_fc1.len()];
                let mut g_f2 = vec![0.0; net.w_fc2.len()];
                let mut g_bf2 = vec![0.0; net.b_fc2.len()];

                for &r in batch {
                    let acts = net.forward_row(x, r, Some(rng));
                    net.backward(
                        &acts,
                        y.row(r),
                        (&mut g_c1, &mut g_bc1),
                        (&mut g_c2, &mut g_bc2),
                        (&mut g_f1, &mut g_bf1),
                        (&mut g_f2, &mut g_bf2),
                    );
                }
                let scale = 1.0 / batch.len() as f64;
                for g in [
                    &mut g_c1, &mut g_bc1, &mut g_c2, &mut g_bc2, &mut g_f1, &mut g_bf1, &mut g_f2,
                    &mut g_bf2,
                ] {
                    for v in g.iter_mut() {
                        *v *= scale;
                    }
                }
                opt_c1.step(&mut net.w_conv1, &g_c1);
                opt_bc1.step(&mut net.b_conv1, &g_bc1);
                opt_c2.step(&mut net.w_conv2, &g_c2);
                opt_bc2.step(&mut net.b_conv2, &g_bc2);
                opt_f1.step(&mut net.w_fc1, &g_f1);
                opt_bf1.step(&mut net.b_fc1, &g_bf1);
                opt_f2.step(&mut net.w_fc2, &g_f2);
                opt_bf2.step(&mut net.b_fc2, &g_bf2);
            }
        }
        Ok(net)
    }

    /// Forward pass for one CSR row. `dropout_rng` enables dropout
    /// (training); `None` disables it (inference).
    fn forward_row(
        &self,
        x: &CsrMatrix,
        row: usize,
        dropout_rng: Option<&mut dyn rand::RngCore>,
    ) -> Activations {
        let cfg = &self.cfg;
        let side = cfg.side;
        let area = side * side;
        let half = side / POOL;
        let flat = cfg.c2 * half * half;
        let m = self.n_classes;

        let mut input = vec![0.0; area];
        let (idx, vals) = x.row(row);
        for (&c, &v) in idx.iter().zip(vals) {
            input[c as usize] = v;
        }

        // conv1: 1 input channel → c1 channels, same padding.
        let mut z1 = vec![0.0; cfg.c1 * area];
        conv_same(
            &input,
            1,
            side,
            &self.w_conv1,
            &self.b_conv1,
            cfg.c1,
            &mut z1,
        );
        let a1: Vec<f64> = z1.iter().map(|&v| relu(v)).collect();

        // conv2: c1 → c2 channels, same padding.
        let mut z2 = vec![0.0; cfg.c2 * area];
        conv_same(
            &a1,
            cfg.c1,
            side,
            &self.w_conv2,
            &self.b_conv2,
            cfg.c2,
            &mut z2,
        );
        let a2: Vec<f64> = z2.iter().map(|&v| relu(v)).collect();

        // 2×2 max pooling.
        let mut pooled = vec![0.0; flat];
        let mut pool_idx = vec![0usize; flat];
        for ch in 0..cfg.c2 {
            for py in 0..half {
                for px in 0..half {
                    let mut best = f64::NEG_INFINITY;
                    let mut best_off = 0;
                    for dy in 0..POOL {
                        for dx in 0..POOL {
                            let yy = py * POOL + dy;
                            let xx = px * POOL + dx;
                            let off = ch * area + yy * side + xx;
                            if a2[off] > best {
                                best = a2[off];
                                best_off = off;
                            }
                        }
                    }
                    let p_off = ch * half * half + py * half + px;
                    pooled[p_off] = best;
                    pool_idx[p_off] = best_off;
                }
            }
        }

        // Dense layer with optional dropout.
        let mut z_fc1 = self.b_fc1.clone();
        for (i, &p) in pooled.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let w_row = &self.w_fc1[i * cfg.dense..(i + 1) * cfg.dense];
            for (z, &w) in z_fc1.iter_mut().zip(w_row) {
                *z += p * w;
            }
        }
        let mut drop_mask = vec![1.0; cfg.dense];
        if let Some(rng) = dropout_rng {
            let keep = 1.0 - cfg.dropout;
            for dm in &mut drop_mask {
                use rand::Rng as _;
                *dm = if rng.gen::<f64>() < cfg.dropout {
                    0.0
                } else {
                    1.0 / keep
                };
            }
        }
        let a_fc1: Vec<f64> = z_fc1
            .iter()
            .zip(&drop_mask)
            .map(|(&z, &dm)| relu(z) * dm)
            .collect();

        // Output layer.
        let mut probs = self.b_fc2.clone();
        for (i, &a) in a_fc1.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let w_row = &self.w_fc2[i * m..(i + 1) * m];
            for (z, &w) in probs.iter_mut().zip(w_row) {
                *z += a * w;
            }
        }
        softmax_in_place(&mut probs);

        Activations {
            input,
            z1,
            a1,
            z2,
            pooled,
            pool_idx,
            z_fc1,
            a_fc1,
            drop_mask,
            probs,
        }
    }

    /// Accumulates gradients for one example into the provided buffers.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        acts: &Activations,
        y_row: &[f64],
        (g_c1, g_bc1): (&mut [f64], &mut [f64]),
        (g_c2, g_bc2): (&mut [f64], &mut [f64]),
        (g_f1, g_bf1): (&mut [f64], &mut [f64]),
        (g_f2, g_bf2): (&mut [f64], &mut [f64]),
    ) {
        let cfg = &self.cfg;
        let side = cfg.side;
        let area = side * side;
        let half = side / POOL;
        let flat = cfg.c2 * half * half;
        let m = self.n_classes;

        // dL/dlogits = p - y.
        let d_logits: Vec<f64> = acts.probs.iter().zip(y_row).map(|(&p, &t)| p - t).collect();

        // fc2 gradients and upstream.
        let mut d_afc1 = vec![0.0; cfg.dense];
        for (i, &a) in acts.a_fc1.iter().enumerate() {
            let w_row = &self.w_fc2[i * m..(i + 1) * m];
            let g_row = &mut g_f2[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for ((g, &w), &dl) in g_row.iter_mut().zip(w_row).zip(&d_logits) {
                *g += a * dl;
                acc += w * dl;
            }
            d_afc1[i] = acc;
        }
        for (g, &dl) in g_bf2.iter_mut().zip(&d_logits) {
            *g += dl;
        }

        // Through dropout + ReLU of fc1.
        let d_zfc1: Vec<f64> = d_afc1
            .iter()
            .zip(&acts.drop_mask)
            .zip(&acts.z_fc1)
            .map(|((&d, &dm), &z)| d * dm * relu_grad(z))
            .collect();

        // fc1 gradients and upstream into pooled.
        let mut d_pooled = vec![0.0; flat];
        for (i, &p) in acts.pooled.iter().enumerate() {
            let w_row = &self.w_fc1[i * cfg.dense..(i + 1) * cfg.dense];
            let g_row = &mut g_f1[i * cfg.dense..(i + 1) * cfg.dense];
            let mut acc = 0.0;
            for ((g, &w), &dz) in g_row.iter_mut().zip(w_row).zip(&d_zfc1) {
                *g += p * dz;
                acc += w * dz;
            }
            d_pooled[i] = acc;
        }
        for (g, &dz) in g_bf1.iter_mut().zip(&d_zfc1) {
            *g += dz;
        }

        // Unpool: route gradient to the argmax positions.
        let mut d_a2 = vec![0.0; cfg.c2 * area];
        for (p_off, &src) in acts.pool_idx.iter().enumerate() {
            d_a2[src] += d_pooled[p_off];
        }
        let d_z2: Vec<f64> = d_a2
            .iter()
            .zip(&acts.z2)
            .map(|(&d, &z)| d * relu_grad(z))
            .collect();

        // conv2 gradients and upstream into a1.
        let mut d_a1 = vec![0.0; cfg.c1 * area];
        conv_same_backward(
            &acts.a1,
            cfg.c1,
            side,
            &self.w_conv2,
            cfg.c2,
            &d_z2,
            g_c2,
            g_bc2,
            Some(&mut d_a1),
        );
        let d_z1: Vec<f64> = d_a1
            .iter()
            .zip(&acts.z1)
            .map(|(&d, &z)| d * relu_grad(z))
            .collect();

        // conv1 gradients (no upstream needed below the input).
        conv_same_backward(
            &acts.input,
            1,
            side,
            &self.w_conv1,
            cfg.c1,
            &d_z1,
            g_c1,
            g_bc1,
            None,
        );
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &ConvNetConfig {
        &self.cfg
    }
}

/// Same-padding 3×3 convolution: `input` has `c_in` channels of `side²`,
/// `weights` is `[c_out][c_in][K][K]`, output `c_out × side²`.
fn conv_same(
    input: &[f64],
    c_in: usize,
    side: usize,
    weights: &[f64],
    bias: &[f64],
    c_out: usize,
    out: &mut [f64],
) {
    let area = side * side;
    let pad = K / 2;
    for co in 0..c_out {
        let out_ch = &mut out[co * area..(co + 1) * area];
        for v in out_ch.iter_mut() {
            *v = bias[co];
        }
        for ci in 0..c_in {
            let in_ch = &input[ci * area..(ci + 1) * area];
            let w = &weights[(co * c_in + ci) * K * K..(co * c_in + ci + 1) * K * K];
            for y in 0..side {
                for x in 0..side {
                    let mut acc = 0.0;
                    for ky in 0..K {
                        let yy = y + ky;
                        if yy < pad || yy - pad >= side {
                            continue;
                        }
                        let in_row = (yy - pad) * side;
                        for kx in 0..K {
                            let xx = x + kx;
                            if xx < pad || xx - pad >= side {
                                continue;
                            }
                            acc += w[ky * K + kx] * in_ch[in_row + (xx - pad)];
                        }
                    }
                    out_ch[y * side + x] += acc;
                }
            }
        }
    }
}

/// Backward pass of [`conv_same`]: accumulates weight/bias gradients and
/// optionally the gradient w.r.t. the input.
#[allow(clippy::too_many_arguments)]
fn conv_same_backward(
    input: &[f64],
    c_in: usize,
    side: usize,
    weights: &[f64],
    c_out: usize,
    d_out: &[f64],
    g_w: &mut [f64],
    g_b: &mut [f64],
    mut d_input: Option<&mut Vec<f64>>,
) {
    let area = side * side;
    let pad = K / 2;
    for co in 0..c_out {
        let d_ch = &d_out[co * area..(co + 1) * area];
        g_b[co] += d_ch.iter().sum::<f64>();
        for ci in 0..c_in {
            let in_ch = &input[ci * area..(ci + 1) * area];
            let w = &weights[(co * c_in + ci) * K * K..(co * c_in + ci + 1) * K * K];
            let g = &mut g_w[(co * c_in + ci) * K * K..(co * c_in + ci + 1) * K * K];
            for y in 0..side {
                for x in 0..side {
                    let d = d_ch[y * side + x];
                    if d == 0.0 {
                        continue;
                    }
                    for ky in 0..K {
                        let yy = y + ky;
                        if yy < pad || yy - pad >= side {
                            continue;
                        }
                        let in_row = (yy - pad) * side;
                        for kx in 0..K {
                            let xx = x + kx;
                            if xx < pad || xx - pad >= side {
                                continue;
                            }
                            let in_off = in_row + (xx - pad);
                            g[ky * K + kx] += d * in_ch[in_off];
                            if let Some(di) = d_input.as_deref_mut() {
                                di[ci * area + in_off] += d * w[ky * K + kx];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Classifier for ConvNet {
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
        let m = self.n_classes;
        let mut out = DenseMatrix::zeros(x.rows(), m);
        for r in 0..x.rows() {
            let acts = self.forward_row(x, r, None);
            out.row_mut(r).copy_from_slice(&acts.probs);
        }
        out
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_linalg::SparseVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Tiny image task: bright top half vs bright bottom half, 8×8.
    fn halves(n: usize, side: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = (i % 2) as u32;
            let mut pairs = Vec::new();
            for yy in 0..side {
                for xx in 0..side {
                    let bright = if y == 0 {
                        yy < side / 2
                    } else {
                        yy >= side / 2
                    };
                    let base: f64 = if bright { 0.8 } else { 0.1 };
                    let v = (base + rng.gen_range(-0.05..0.05)).clamp(0.0, 1.0);
                    if v > 0.0 {
                        pairs.push(((yy * side + xx) as u32, v));
                    }
                }
            }
            rows.push(SparseVec::from_pairs(side * side, pairs).unwrap());
            labels.push(y);
        }
        (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_half_images() {
        let side = 8;
        let (x, y) = halves(80, side, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let net = ConvNet::fit(&x, &y, 2, &ConvNetConfig::tiny(side), &mut rng).unwrap();
        let pred = net.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        let acc = lvp_stats::accuracy(&pred, &labels);
        assert!(acc > 0.9, "halves accuracy {acc}");
    }

    #[test]
    fn probabilities_normalized() {
        let side = 8;
        let (x, y) = halves(20, side, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let net = ConvNet::fit(&x, &y, 2, &ConvNetConfig::tiny(side), &mut rng).unwrap();
        for row in net.predict_proba(&x).row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_wrong_geometry() {
        let (x, y) = halves(10, 8, 5);
        let mut rng = StdRng::seed_from_u64(6);
        // Config says 10×10 but the data is 8×8.
        assert!(ConvNet::fit(&x, &y, 2, &ConvNetConfig::tiny(10), &mut rng).is_err());
    }

    #[test]
    fn conv_same_identity_kernel_preserves_input() {
        let side = 4;
        let input: Vec<f64> = (0..16).map(|i| i as f64).collect();
        // Kernel with 1 in the center.
        let mut w = vec![0.0; 9];
        w[4] = 1.0;
        let mut out = vec![0.0; 16];
        conv_same(&input, 1, side, &w, &[0.0], 1, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_gradcheck_on_weights() {
        // Finite-difference check of conv_same_backward weight gradients.
        let side = 5;
        let input: Vec<f64> = (0..25).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut w: Vec<f64> = (0..9).map(|i| (i as f64 * 0.11).cos() * 0.3).collect();
        let bias = [0.1];
        let loss = |w: &[f64]| -> f64 {
            let mut out = vec![0.0; 25];
            conv_same(&input, 1, side, w, &bias, 1, &mut out);
            out.iter().map(|v| v * v).sum::<f64>() * 0.5
        };
        // Analytic gradient: dL/dout = out.
        let mut out = vec![0.0; 25];
        conv_same(&input, 1, side, &w, &bias, 1, &mut out);
        let mut g_w = vec![0.0; 9];
        let mut g_b = vec![0.0; 1];
        conv_same_backward(&input, 1, side, &w, 1, &out, &mut g_w, &mut g_b, None);
        // Numeric gradient.
        let eps = 1e-6;
        for i in 0..9 {
            let orig = w[i];
            w[i] = orig + eps;
            let up = loss(&w);
            w[i] = orig - eps;
            let down = loss(&w);
            w[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - g_w[i]).abs() < 1e-5,
                "weight {i}: analytic {} vs numeric {}",
                g_w[i],
                numeric
            );
        }
    }
}
