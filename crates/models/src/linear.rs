//! Multinomial logistic regression trained with minibatch SGD (the paper's
//! `lr` model, mirroring scikit-learn's `SGDClassifier` with grid-searched
//! regularization and learning rate).

use crate::cv::{grid_search_max, kfold_indices};
use crate::{one_hot_labels, Classifier, ModelError};
use lvp_linalg::{stable_softmax, CsrMatrix, DenseMatrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Regularization penalty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Penalty {
    /// Ridge penalty with the given strength.
    L2(f64),
    /// Lasso penalty with the given strength (applied proximally).
    L1(f64),
}

/// Training configuration for [`LogisticRegression`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrConfig {
    /// Regularization type and strength.
    pub penalty: Penalty,
    /// Constant SGD learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for LrConfig {
    fn default() -> Self {
        Self {
            penalty: Penalty::L2(1e-4),
            learning_rate: 0.1,
            epochs: 15,
            batch_size: 32,
        }
    }
}

/// The paper's default hyperparameter grid: regularization type/strength ×
/// learning rate.
pub fn default_lr_grid() -> Vec<LrConfig> {
    let mut grid = Vec::new();
    for penalty in [Penalty::L2(1e-4), Penalty::L2(1e-3), Penalty::L1(1e-4)] {
        for learning_rate in [0.1, 0.03] {
            grid.push(LrConfig {
                penalty,
                learning_rate,
                ..LrConfig::default()
            });
        }
    }
    grid
}

/// A fitted multinomial logistic regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: DenseMatrix, // d × m
    bias: Vec<f64>,       // m
    n_classes: usize,
}

impl LogisticRegression {
    /// Fits the model with minibatch SGD under the given configuration.
    pub fn fit(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        config: &LrConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ModelError> {
        if x.rows() != labels.len() {
            return Err(ModelError::new("feature/label row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        let d = x.cols();
        let m = n_classes;
        let y = one_hot_labels(labels, m);
        let mut weights = DenseMatrix::zeros(d, m);
        let mut bias = vec![0.0; m];
        let mut order: Vec<usize> = (0..x.rows()).collect();

        for _epoch in 0..config.epochs {
            order.shuffle(rng);
            for batch in order.chunks(config.batch_size) {
                // Forward: logits and probabilities for the batch.
                let mut grad_w: Vec<(usize, usize, f64)> = Vec::new();
                let mut grad_b = vec![0.0; m];
                for &r in batch {
                    let (idx, vals) = x.row(r);
                    let mut logits = bias.clone();
                    for (&c, &v) in idx.iter().zip(vals) {
                        let w_row = weights.row(c as usize);
                        for (l, &w) in logits.iter_mut().zip(w_row) {
                            *l += v * w;
                        }
                    }
                    lvp_linalg::softmax_in_place(&mut logits);
                    for k in 0..m {
                        let err = logits[k] - y.get(r, k);
                        grad_b[k] += err;
                        for (&c, &v) in idx.iter().zip(vals) {
                            grad_w.push((c as usize, k, v * err));
                        }
                    }
                }
                let scale = config.learning_rate / batch.len() as f64;
                for (c, k, g) in grad_w {
                    let w = weights.get(c, k);
                    weights.set(c, k, w - scale * g);
                }
                for (b, g) in bias.iter_mut().zip(&grad_b) {
                    *b -= scale * g;
                }
                // Regularization, applied densely once per batch.
                match config.penalty {
                    Penalty::L2(l2) => {
                        let decay = 1.0 - config.learning_rate * l2;
                        weights.scale(decay.max(0.0));
                    }
                    Penalty::L1(l1) => {
                        let t = config.learning_rate * l1;
                        for w in weights.data_mut() {
                            *w = w.signum() * (w.abs() - t).max(0.0);
                        }
                    }
                }
            }
        }
        Ok(Self {
            weights,
            bias,
            n_classes: m,
        })
    }

    /// Fits with k-fold cross-validation over the hyperparameter grid,
    /// then refits the winning configuration on the full data.
    pub fn fit_cv(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        grid: &[LrConfig],
        k_folds: usize,
        rng: &mut impl Rng,
    ) -> Result<(Self, LrConfig), ModelError> {
        let folds = kfold_indices(x.rows(), k_folds, rng);
        let mut fold_rngs: Vec<u64> = (0..grid.len()).map(|_| rng.gen()).collect();
        let (best, _) = grid_search_max(grid, |cfg| {
            let seed = fold_rngs.pop().unwrap_or(0);
            let mut local = rand::rngs::StdRng::seed_from_u64(seed);
            let mut acc = 0.0;
            for (train_idx, val_idx) in &folds {
                let xt = x.select_rows(train_idx);
                let yt: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
                let Ok(model) = Self::fit(&xt, &yt, n_classes, cfg, &mut local) else {
                    return f64::NEG_INFINITY;
                };
                let xv = x.select_rows(val_idx);
                let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i] as usize).collect();
                let pred = model.predict_proba(&xv).argmax_rows();
                acc += lvp_stats::accuracy(&pred, &yv);
            }
            acc / folds.len() as f64
        });
        let model = Self::fit(x, labels, n_classes, &best, rng)?;
        Ok((model, best))
    }

    /// The fitted weight matrix (d × m), exposed for tests and diagnostics.
    pub fn weights(&self) -> &DenseMatrix {
        &self.weights
    }
}

use rand::SeedableRng;

impl Classifier for LogisticRegression {
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
        let mut logits = x
            .matmul_dense(&self.weights)
            .expect("weight dimensionality fixed at fit time");
        logits
            .add_row_vector(&self.bias)
            .expect("bias length equals class count");
        stable_softmax(&logits)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_linalg::SparseVec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable blobs in 2D.
    fn blobs(n: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = (i % 2) as u32;
            let cx = if y == 0 { -1.0 } else { 1.0 };
            let x0 = cx + rng.gen_range(-0.5..0.5);
            let x1 = cx + rng.gen_range(-0.5..0.5);
            rows.push(SparseVec::from_pairs(2, vec![(0, x0), (1, x1)]).unwrap());
            labels.push(y);
        }
        (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_separable_blobs() {
        let (x, y) = blobs(200, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = LogisticRegression::fit(&x, &y, 2, &LrConfig::default(), &mut rng).unwrap();
        let pred = model.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        assert!(lvp_stats::accuracy(&pred, &labels) > 0.97);
    }

    #[test]
    fn probabilities_are_normalized() {
        let (x, y) = blobs(50, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let model = LogisticRegression::fit(&x, &y, 2, &LrConfig::default(), &mut rng).unwrap();
        let p = model.predict_proba(&x);
        for row in p.row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cv_grid_search_returns_good_model() {
        let (x, y) = blobs(120, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let (model, cfg) =
            LogisticRegression::fit_cv(&x, &y, 2, &default_lr_grid(), 3, &mut rng).unwrap();
        assert!(default_lr_grid().contains(&cfg));
        let pred = model.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        assert!(lvp_stats::accuracy(&pred, &labels) > 0.95);
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_features() {
        // Two informative dims plus one pure-noise dim; strong L1 should
        // kill the noise dimension (this is the L1-regularization scale
        // invariance the paper's problem statement points at).
        let mut rng = StdRng::seed_from_u64(8);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..300 {
            let y = (i % 2) as u32;
            let cx = if y == 0 { -1.0 } else { 1.0 };
            rows.push(
                SparseVec::from_pairs(
                    3,
                    vec![
                        (0, cx + rng.gen_range(-0.3..0.3)),
                        (1, cx + rng.gen_range(-0.3..0.3)),
                        (2, rng.gen_range(-1.0..1.0)),
                    ],
                )
                .unwrap(),
            );
            labels.push(y);
        }
        let x = CsrMatrix::from_sparse_rows(&rows).unwrap();
        let strong_l1 = LrConfig {
            penalty: Penalty::L1(0.02),
            ..LrConfig::default()
        };
        let model = LogisticRegression::fit(&x, &labels, 2, &strong_l1, &mut rng).unwrap();
        // Noise-feature weights (row 2) must be much smaller than the
        // informative ones.
        let noise_mag: f64 = model.weights().row(2).iter().map(|w| w.abs()).sum();
        let signal_mag: f64 = model.weights().row(0).iter().map(|w| w.abs()).sum();
        assert!(
            noise_mag < 0.3 * signal_mag,
            "noise {noise_mag} vs signal {signal_mag}"
        );
    }

    #[test]
    fn rejects_empty_and_mismatched_input() {
        let x = CsrMatrix::from_sparse_rows(&[]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(LogisticRegression::fit(&x, &[], 2, &LrConfig::default(), &mut rng).is_err());
        let (x, _) = blobs(10, 1);
        assert!(LogisticRegression::fit(&x, &[0, 1], 2, &LrConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn extreme_inputs_do_not_produce_nan() {
        // Scaling corruption can blow up feature magnitudes; predictions
        // must saturate rather than turn NaN (cf. the paper's footnote on
        // SGDClassifier overflows).
        let (x, y) = blobs(100, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let model = LogisticRegression::fit(&x, &y, 2, &LrConfig::default(), &mut rng).unwrap();
        let huge =
            CsrMatrix::from_sparse_rows(&[
                SparseVec::from_pairs(2, vec![(0, 1e12), (1, -1e12)]).unwrap()
            ])
            .unwrap();
        let p = model.predict_proba(&huge);
        assert!(p.data().iter().all(|v| v.is_finite()));
    }
}
