//! Random forest regression — the meta-model of the paper's performance
//! predictor (§4: `RandomForestRegressor` with five-fold cross-validation
//! and a grid search over the number of trees, minimizing MAE).

use crate::cv::{grid_search_max, kfold_indices};
use crate::gbdt::PREDICT_ROW_BLOCK;
use crate::tree::{RegressionTree, SplitMethod, TrainingColumns, TreeParams};
use crate::{ModelError, Regressor};
use lvp_linalg::{row_blocks, DenseMatrix};
use rand::Rng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration for [`RandomForestRegressor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees in the ensemble.
    pub n_trees: usize,
    /// Maximum depth per tree.
    pub max_depth: usize,
    /// Minimum examples per leaf.
    pub min_samples_leaf: usize,
    /// Fraction of features considered per split.
    pub colsample: f64,
    /// Split-candidate enumeration strategy (histogram by default; exact
    /// enumeration is kept as the oracle).
    pub split_method: SplitMethod,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            max_depth: 12,
            min_samples_leaf: 2,
            colsample: 0.4,
            split_method: SplitMethod::default(),
        }
    }
}

/// The paper's grid over the number of trees.
pub fn default_forest_grid() -> Vec<ForestConfig> {
    [25, 50, 100]
        .into_iter()
        .map(|n_trees| ForestConfig {
            n_trees,
            ..ForestConfig::default()
        })
        .collect()
}

/// A fitted random forest regressor (bagging + per-split feature
/// subsampling; prediction is the mean over trees).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RandomForestRegressor {
    trees: Vec<RegressionTree>,
}

impl RandomForestRegressor {
    /// Fits `config.n_trees` trees on bootstrap samples.
    pub fn fit(
        x: &DenseMatrix,
        targets: &[f64],
        config: &ForestConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ModelError> {
        if x.rows() != targets.len() {
            return Err(ModelError::new("feature/target row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        let n = x.rows();
        let columns = TrainingColumns::from_dense(x, config.split_method);
        // Regression via the Newton formulation: grad = -y, hess = 1.
        let grad: Vec<f64> = targets.iter().map(|t| -t).collect();
        let hess = vec![1.0; n];
        let params = TreeParams {
            max_depth: config.max_depth,
            min_samples_leaf: config.min_samples_leaf,
            lambda: 0.0,
            colsample: config.colsample,
            min_gain: 1e-12,
        };
        let seeds: Vec<u64> = (0..config.n_trees).map(|_| rng.gen()).collect();
        let trees: Vec<RegressionTree> = seeds
            .into_par_iter()
            .map(|seed| {
                let mut tree_rng = rand::rngs::StdRng::seed_from_u64(seed);
                let bootstrap: Vec<usize> = (0..n).map(|_| tree_rng.gen_range(0..n)).collect();
                RegressionTree::fit(&columns, &grad, &hess, &bootstrap, &params, &mut tree_rng)
            })
            .collect();
        Ok(Self { trees })
    }

    /// Fits with k-fold CV over the tree-count grid, selecting the
    /// configuration with lowest validation MAE (the paper's objective),
    /// then refits on all data.
    pub fn fit_cv(
        x: &DenseMatrix,
        targets: &[f64],
        grid: &[ForestConfig],
        k_folds: usize,
        rng: &mut impl Rng,
    ) -> Result<(Self, ForestConfig), ModelError> {
        if x.rows() < k_folds {
            // Too little data to cross-validate; fall back to the first
            // configuration.
            let cfg = grid
                .first()
                .copied()
                .ok_or_else(|| ModelError::new("empty forest grid"))?;
            return Ok((Self::fit(x, targets, &cfg, rng)?, cfg));
        }
        let folds = kfold_indices(x.rows(), k_folds, rng);
        let mut seeds: Vec<u64> = (0..grid.len()).map(|_| rng.gen()).collect();
        let (best, _) = grid_search_max(grid, |cfg| {
            let mut local = rand::rngs::StdRng::seed_from_u64(seeds.pop().unwrap_or(0));
            let mut neg_mae = 0.0;
            for (train_idx, val_idx) in &folds {
                let xt = x.select_rows(train_idx);
                let yt: Vec<f64> = train_idx.iter().map(|&i| targets[i]).collect();
                let Ok(model) = Self::fit(&xt, &yt, cfg, &mut local) else {
                    return f64::NEG_INFINITY;
                };
                let xv = x.select_rows(val_idx);
                let yv: Vec<f64> = val_idx.iter().map(|&i| targets[i]).collect();
                let pred = model.predict(&xv);
                neg_mae -= lvp_stats::mean_absolute_error(&pred, &yv);
            }
            neg_mae / folds.len() as f64
        });
        let model = Self::fit(x, targets, &best, rng)?;
        Ok((model, best))
    }

    /// Number of trees in the fitted ensemble.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-tree predictions for one dense feature row, in tree order.
    ///
    /// The ensemble's point prediction is the mean of this vector, summed
    /// in the same tree order as [`Regressor::predict`], so
    /// `mean(predict_per_tree_row(row))` is bit-identical to
    /// `predict(row)`. The spread of the vector is the ensemble's own
    /// uncertainty — the raw material for quantile prediction intervals.
    pub fn predict_per_tree_row(&self, row: &[f64]) -> Vec<f64> {
        self.trees
            .iter()
            .map(|t| t.predict_dense_row(row))
            .collect()
    }

    /// Per-tree predictions for every row of `x` as an
    /// `n_rows × n_trees` matrix, computed with blocked traversal. Row `r`
    /// equals [`Self::predict_per_tree_row`] on `x.row(r)` bit-for-bit.
    pub fn predict_per_tree(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(x.rows(), self.trees.len());
        for block in row_blocks(x.rows(), PREDICT_ROW_BLOCK) {
            for (t, tree) in self.trees.iter().enumerate() {
                for r in block.clone() {
                    out.set(r, t, tree.predict_dense_row(x.row(r)));
                }
            }
        }
        out
    }
}

impl Regressor for RandomForestRegressor {
    /// Blocked traversal (all trees per row block); per row the tree
    /// outputs still sum in tree order, so the mean is bit-identical to
    /// row-at-a-time prediction.
    fn predict(&self, x: &DenseMatrix) -> Vec<f64> {
        let mut sums = vec![0.0; x.rows()];
        for block in row_blocks(x.rows(), PREDICT_ROW_BLOCK) {
            for tree in &self.trees {
                for r in block.clone() {
                    sums[r] += tree.predict_dense_row(x.row(r));
                }
            }
        }
        let k = self.trees.len() as f64;
        sums.into_iter().map(|s| s / k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn friedman_like(n: usize, seed: u64) -> (DenseMatrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            let c: f64 = rng.gen();
            rows.push(vec![a, b, c]);
            y.push(2.0 * a + (std::f64::consts::PI * b).sin() - c * c);
        }
        (DenseMatrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn fits_nonlinear_regression() {
        let (x, y) = friedman_like(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let pred = model.predict(&x);
        let mae = lvp_stats::mean_absolute_error(&pred, &y);
        assert!(mae < 0.15, "MAE {mae}");
    }

    #[test]
    fn prediction_is_mean_of_trees_in_range() {
        let (x, y) = friedman_like(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let model = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let (lo, hi) = y
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
        for p in model.predict(&x) {
            assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "{p} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (x, y) = friedman_like(50, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = ForestConfig {
            n_trees: 9,
            ..ForestConfig::default()
        };
        let model = RandomForestRegressor::fit(&x, &y, &cfg, &mut rng).unwrap();
        assert_eq!(model.n_trees(), 9);
    }

    #[test]
    fn cv_selects_grid_member() {
        let (x, y) = friedman_like(90, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let grid = default_forest_grid();
        let (_, cfg) = RandomForestRegressor::fit_cv(&x, &y, &grid, 3, &mut rng).unwrap();
        assert!(grid.contains(&cfg));
    }

    #[test]
    fn tiny_dataset_falls_back_without_cv() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let (model, _) =
            RandomForestRegressor::fit_cv(&x, &[1.0, 2.0], &default_forest_grid(), 5, &mut rng)
                .unwrap();
        assert!(model.n_trees() > 0);
    }

    #[test]
    fn per_tree_predictions_mean_matches_ensemble_prediction_bitwise() {
        let (x, y) = friedman_like(120, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let model = RandomForestRegressor::fit(&x, &y, &ForestConfig::default(), &mut rng).unwrap();
        let ensemble = model.predict(&x);
        let per_tree_matrix = model.predict_per_tree(&x);
        assert_eq!(per_tree_matrix.cols(), model.n_trees());
        for (r, expected) in ensemble.iter().enumerate() {
            let per_tree = model.predict_per_tree_row(x.row(r));
            assert_eq!(per_tree.len(), model.n_trees());
            let mean = per_tree.iter().sum::<f64>() / per_tree.len() as f64;
            assert_eq!(mean.to_bits(), expected.to_bits());
            // The batch matrix is the row-at-a-time vector, bit for bit.
            for (t, v) in per_tree.iter().enumerate() {
                assert_eq!(per_tree_matrix.get(r, t).to_bits(), v.to_bits());
            }
        }
    }

    #[test]
    fn exact_and_histogram_splits_reach_similar_error() {
        let (x, y) = friedman_like(400, 13);
        let mut mae = [0.0f64; 2];
        for (slot, method) in [SplitMethod::Exact, SplitMethod::Histogram]
            .into_iter()
            .enumerate()
        {
            let cfg = ForestConfig {
                split_method: method,
                ..ForestConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(14);
            let model = RandomForestRegressor::fit(&x, &y, &cfg, &mut rng).unwrap();
            mae[slot] = lvp_stats::mean_absolute_error(&model.predict(&x), &y);
        }
        assert!(mae[0] < 0.15, "exact MAE {}", mae[0]);
        assert!(mae[1] < 0.15, "histogram MAE {}", mae[1]);
        assert!((mae[0] - mae[1]).abs() < 0.05, "parity gap {mae:?}");
    }

    #[test]
    fn rejects_empty_input() {
        let x = DenseMatrix::zeros(0, 2);
        let mut rng = StdRng::seed_from_u64(10);
        assert!(RandomForestRegressor::fit(&x, &[], &ForestConfig::default(), &mut rng).is_err());
    }
}
