//! Black box pipelines: a private feature map plus a private classifier,
//! exposed only through [`BlackBoxModel`].

use crate::convnet::{ConvNet, ConvNetConfig};
use crate::gbdt::{default_gbdt_grid, GbdtClassifier};
use crate::linear::{default_lr_grid, LogisticRegression};
use crate::mlp::{default_mlp_grid, NeuralNet};
use crate::{BlackBoxModel, Classifier, ModelError};
use lvp_dataframe::DataFrame;
use lvp_featurize::{CacheStats, FeaturePipeline, PipelineConfig, ShardedEncodingCache};
use lvp_linalg::DenseMatrix;
use lvp_telemetry::{Counter, Histogram, Registry, Span};
use rand::Rng;

/// A feature pipeline and classifier bundled behind the black box contract.
///
/// Neither the fitted feature map nor the classifier is reachable from the
/// outside — downstream consumers can only call
/// [`BlackBoxModel::predict_proba`] on raw tuples, matching the paper's
/// problem statement.
///
/// Internally, featurization runs through a sharded, identity-keyed
/// [`ShardedEncodingCache`]: copy-on-write copies of an already-seen frame
/// re-encode only the columns they actually rewrote. The cache is invisible
/// through [`BlackBoxModel`] — cached blocks are bit-identical to freshly
/// encoded ones, so `predict_proba` returns the same probabilities with or
/// without it, on any thread schedule.
pub struct PipelineModel {
    featurizer: FeaturePipeline,
    classifier: Box<dyn Classifier>,
    name: String,
    /// Interior mutability keeps the `&self` black box contract while each
    /// worker thread populates its own shard.
    encoding_cache: ShardedEncodingCache,
    telemetry: Option<PredictTelemetry>,
}

/// Pre-resolved registry handles for the `predict_proba` hot path: pure
/// atomics per call, no name lookups.
struct PredictTelemetry {
    calls: Counter,
    rows: Counter,
    latency: Histogram,
}

impl PipelineModel {
    /// Bundles a fitted featurizer and classifier under a display name.
    pub fn new(
        featurizer: FeaturePipeline,
        classifier: Box<dyn Classifier>,
        name: impl Into<String>,
    ) -> Self {
        Self {
            featurizer,
            classifier,
            name: name.into(),
            encoding_cache: ShardedEncodingCache::with_default_shards(),
            telemetry: None,
        }
    }

    /// Aggregated hit/miss/eviction counters of the internal encoding cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.encoding_cache.stats()
    }

    /// Drops every cached column block (e.g. between unrelated datasets).
    pub fn clear_encoding_cache(&self) {
        self.encoding_cache.clear();
    }
}

impl BlackBoxModel for PipelineModel {
    fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
        let _span = self.telemetry.as_ref().map(|t| {
            t.calls.inc();
            t.rows.add(data.n_rows() as u64);
            Span::new(t.latency.clone())
        });
        let x = self
            .encoding_cache
            .with_worker_cache(|cache| self.featurizer.transform_cached(data, cache));
        self.classifier.predict_proba(&x)
    }

    fn n_classes(&self) -> usize {
        self.classifier.n_classes()
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Registers `model.predict.{calls,rows,latency}` plus the encoding
    /// cache's `model.cache.*` counters. Call/row totals are deterministic
    /// for a seeded workload; latency buckets are wall-clock and cache
    /// counters shard-scheduling-dependent, so those stay out of
    /// deterministic snapshot views.
    fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = Some(PredictTelemetry {
            calls: registry.counter("model.predict.calls"),
            rows: registry.counter("model.predict.rows"),
            latency: registry.histogram("model.predict.latency"),
        });
        self.encoding_cache
            .attach_telemetry(registry, "model.cache");
    }

    fn publish_telemetry(&self) {
        self.encoding_cache.publish_stats();
    }
}

/// The model families evaluated in the paper (§6 "Models").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Logistic regression (`lr`).
    Lr,
    /// Feed-forward neural network (`dnn`).
    Dnn,
    /// Gradient-boosted decision trees (`xgb`).
    Xgb,
    /// Convolutional network (`conv`), image data only.
    Conv,
}

impl ModelKind {
    /// The tabular model families (everything except `conv`).
    pub const TABULAR: [ModelKind; 3] = [ModelKind::Lr, ModelKind::Dnn, ModelKind::Xgb];

    /// The paper's short name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Lr => "lr",
            ModelKind::Dnn => "dnn",
            ModelKind::Xgb => "xgb",
            ModelKind::Conv => "conv",
        }
    }
}

/// Number of folds used for every cross-validated fit (the paper uses 5).
pub const CV_FOLDS: usize = 5;

fn image_side(train: &DataFrame) -> usize {
    for i in train.schema().image_columns() {
        if let Ok(images) = train.column(i).as_image() {
            if let Some(img) = images.iter().flatten().next() {
                return img.width;
            }
        }
    }
    0
}

/// Trains a cross-validated logistic regression pipeline on the frame.
pub fn train_logistic_regression(
    train: &DataFrame,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let (model, _) = LogisticRegression::fit_cv(
        &x,
        train.labels(),
        train.n_classes(),
        &default_lr_grid(),
        CV_FOLDS,
        rng,
    )?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        Box::new(model),
        "lr",
    )))
}

/// Trains a cross-validated feed-forward network pipeline on the frame.
pub fn train_neural_net(
    train: &DataFrame,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let (model, _) = NeuralNet::fit_cv(
        &x,
        train.labels(),
        train.n_classes(),
        &default_mlp_grid(),
        CV_FOLDS,
        rng,
    )?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        Box::new(model),
        "dnn",
    )))
}

/// Trains a cross-validated gradient-boosted tree pipeline on the frame.
pub fn train_gbdt(
    train: &DataFrame,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let (model, _) = GbdtClassifier::fit_cv(
        &x,
        train.labels(),
        train.n_classes(),
        &default_gbdt_grid(),
        CV_FOLDS,
        rng,
    )?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        Box::new(model),
        "xgb",
    )))
}

/// Trains a convolutional network pipeline on an image frame.
///
/// `paper_scale` selects the paper's 32/64/128 architecture; otherwise the
/// proportionally scaled single-core variant is used (see DESIGN.md).
pub fn train_convnet(
    train: &DataFrame,
    paper_scale: bool,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let side = image_side(train);
    if side == 0 {
        return Err(ModelError::new("convnet requires an image column"));
    }
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let cfg = if paper_scale {
        ConvNetConfig::paper(side)
    } else {
        ConvNetConfig::small(side)
    };
    let model = ConvNet::fit(&x, train.labels(), train.n_classes(), &cfg, rng)?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        Box::new(model),
        "conv",
    )))
}

/// Trains the requested model family with its default CV protocol.
pub fn train_model(
    kind: ModelKind,
    train: &DataFrame,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    match kind {
        ModelKind::Lr => train_logistic_regression(train, rng),
        ModelKind::Dnn => train_neural_net(train, rng),
        ModelKind::Xgb => train_gbdt(train, rng),
        ModelKind::Conv => train_convnet(train, false, rng),
    }
}

/// Trains the requested model family with fixed default hyperparameters,
/// skipping the cross-validated grid search. Used by the smoke-scale
/// experiment harness where wall-clock matters more than the last accuracy
/// point; `--scale paper` runs keep the full CV protocol via
/// [`train_model`].
pub fn train_model_quick(
    kind: ModelKind,
    train: &DataFrame,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    // High-dimensional hashed text blows up exact-split tree training;
    // quick mode trades hash buckets for wall-clock (the full CV protocol
    // of `train_model` keeps the default dimensionality).
    let has_text = !train.schema().text_columns().is_empty();
    let pipeline_config = if has_text {
        PipelineConfig {
            text_buckets: 512,
            ..PipelineConfig::default()
        }
    } else {
        PipelineConfig::default()
    };
    let featurizer = FeaturePipeline::fit(train, &pipeline_config);
    let x = featurizer.transform(train);
    let (labels, m) = (train.labels(), train.n_classes());
    let classifier: Box<dyn crate::Classifier> = match kind {
        ModelKind::Lr => Box::new(LogisticRegression::fit(
            &x,
            labels,
            m,
            &crate::linear::LrConfig::default(),
            rng,
        )?),
        ModelKind::Dnn => Box::new(NeuralNet::fit(
            &x,
            labels,
            m,
            &crate::mlp::MlpConfig::default(),
            rng,
        )?),
        ModelKind::Xgb => Box::new(GbdtClassifier::fit(
            &x,
            labels,
            m,
            &crate::gbdt::GbdtConfig {
                colsample: if has_text { 0.2 } else { 0.8 },
                ..crate::gbdt::GbdtConfig::default()
            },
            rng,
        )?),
        ModelKind::Conv => {
            let side = image_side(train);
            if side == 0 {
                return Err(ModelError::new("convnet requires an image column"));
            }
            Box::new(ConvNet::fit(
                &x,
                labels,
                m,
                &ConvNetConfig::small(side),
                rng,
            )?)
        }
    };
    Ok(Box::new(PipelineModel::new(
        featurizer,
        classifier,
        kind.name(),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_accuracy;
    use lvp_dataframe::toy_frame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pipeline_model_hides_internals_and_predicts() {
        let df = toy_frame(60);
        let mut rng = StdRng::seed_from_u64(1);
        let model = train_logistic_regression(&df, &mut rng).unwrap();
        assert_eq!(model.name(), "lr");
        assert_eq!(model.n_classes(), 2);
        let p = model.predict_proba(&df);
        assert_eq!(p.rows(), 60);
        assert_eq!(p.cols(), 2);
        // toy_frame's label is perfectly encoded in the categorical column.
        assert!(model_accuracy(model.as_ref(), &df) > 0.95);
    }

    #[test]
    fn encoding_cache_is_invisible_through_the_black_box() {
        let df = toy_frame(40);
        let mut rng = StdRng::seed_from_u64(3);
        let featurizer = FeaturePipeline::fit(&df, &PipelineConfig::default());
        let x = featurizer.transform(&df);
        let (lr, _) = crate::linear::LogisticRegression::fit_cv(
            &x,
            df.labels(),
            df.n_classes(),
            &crate::linear::default_lr_grid(),
            CV_FOLDS,
            &mut rng,
        )
        .unwrap();
        let model = PipelineModel::new(featurizer.clone(), Box::new(lr.clone()), "lr");
        // Cold reference: featurize without any cache, classify directly.
        let reference = lr.predict_proba(&featurizer.transform(&df));
        // Two cached calls (second fully hits) must match it bit for bit.
        assert_eq!(model.predict_proba(&df), reference);
        assert_eq!(model.predict_proba(&df), reference);
        let stats = model.cache_stats();
        assert_eq!(stats.misses, df.n_cols() as u64);
        assert_eq!(stats.hits, df.n_cols() as u64);
        // A copy-on-write corruption re-encodes only the touched column.
        let mut corrupted = df.clone();
        corrupted.column_mut(0).set_null(5);
        let expected = lr.predict_proba(&featurizer.transform(&corrupted));
        assert_eq!(model.predict_proba(&corrupted), expected);
        let stats = model.cache_stats();
        assert_eq!(stats.misses, df.n_cols() as u64 + 1);
        model.clear_encoding_cache();
        assert_eq!(model.cache_stats().entries, 0);
    }

    #[test]
    fn attached_telemetry_counts_calls_rows_and_cache_traffic() {
        let df = toy_frame(40);
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = train_logistic_regression(&df, &mut rng).unwrap();
        let registry = Registry::new();
        model.attach_telemetry(&registry);
        let reference = {
            let mut rng = StdRng::seed_from_u64(4);
            train_logistic_regression(&df, &mut rng)
                .unwrap()
                .predict_proba(&df)
        };
        // Instrumentation must not change the outputs.
        assert_eq!(model.predict_proba(&df), reference);
        assert_eq!(model.predict_proba(&df), reference);
        model.publish_telemetry();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["model.predict.calls"], 2);
        assert_eq!(snap.counters["model.predict.rows"], 80);
        let h = &snap.histograms["model.predict.latency"];
        assert_eq!(h.count, 2);
        assert_eq!(h.bucket_total(), h.count);
        // The second call hit the cache for every column.
        assert_eq!(snap.counters["model.cache.hits"], df.n_cols() as u64);
        assert_eq!(snap.counters["model.cache.misses"], df.n_cols() as u64);
        // Uninstrumented models stay silent.
        let quiet = train_logistic_regression(&df, &mut rng).unwrap();
        quiet.publish_telemetry();
        quiet.predict_proba(&df);
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::Lr.name(), "lr");
        assert_eq!(ModelKind::Conv.name(), "conv");
        assert_eq!(ModelKind::TABULAR.len(), 3);
    }

    #[test]
    fn convnet_requires_images() {
        let df = toy_frame(10);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(train_convnet(&df, false, &mut rng).is_err());
    }
}
