//! AutoML-style searchers producing opaque black box pipelines (§6.3).
//!
//! The paper validates its approach on models produced by auto-sklearn,
//! TPOT and auto-keras. What matters for the experiment is that the model
//! was chosen by an *automated search the validator knows nothing about*;
//! these searchers reproduce the three archetypes over our model families:
//!
//! * [`auto_sklearn_like`] — budgeted candidate evaluation with successive
//!   halving across all tabular families and their hyperparameter grids,
//! * [`tpot_like`] — a small evolutionary search mutating pipeline genomes
//!   (model family, hyperparameters, featurization variant),
//! * [`auto_keras_like`] — architecture search over convolutional network
//!   widths,
//! * [`large_convnet`] — the larger hand-specified convnet of Figure 6.

use crate::convnet::{ConvNet, ConvNetConfig};
use crate::gbdt::{GbdtClassifier, GbdtConfig};
use crate::linear::{LogisticRegression, LrConfig, Penalty};
use crate::mlp::{MlpConfig, NeuralNet};
use crate::pipeline::PipelineModel;
use crate::{BlackBoxModel, Classifier, ModelError};
use lvp_dataframe::DataFrame;
use lvp_featurize::{FeaturePipeline, PipelineConfig};
use lvp_linalg::CsrMatrix;
use rand::Rng;

/// One candidate pipeline genome: a model family configuration plus a
/// featurization variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Genome {
    /// Logistic regression candidate.
    Lr(LrConfig),
    /// Neural network candidate.
    Mlp(MlpConfig),
    /// Gradient-boosted trees candidate.
    Gbdt(GbdtConfig),
}

impl Genome {
    fn random(rng: &mut impl Rng) -> Self {
        match rng.gen_range(0..3) {
            0 => Genome::Lr(LrConfig {
                penalty: if rng.gen_bool(0.5) {
                    Penalty::L2(10f64.powf(rng.gen_range(-5.0..-2.0)))
                } else {
                    Penalty::L1(10f64.powf(rng.gen_range(-5.0..-2.0)))
                },
                learning_rate: 10f64.powf(rng.gen_range(-2.0..-0.5)),
                epochs: rng.gen_range(8..20),
                batch_size: 32,
            }),
            1 => Genome::Mlp(MlpConfig {
                hidden1: *[16, 32, 64].get(rng.gen_range(0..3)).unwrap(),
                hidden2: *[8, 16, 32].get(rng.gen_range(0..3)).unwrap(),
                learning_rate: 10f64.powf(rng.gen_range(-3.0..-1.5)),
                epochs: rng.gen_range(6..14),
                batch_size: 32,
            }),
            _ => Genome::Gbdt(GbdtConfig {
                n_rounds: rng.gen_range(10..40),
                max_depth: rng.gen_range(2..5),
                learning_rate: rng.gen_range(0.1..0.5),
                ..GbdtConfig::default()
            }),
        }
    }

    /// Randomly perturbs one hyperparameter.
    fn mutate(&self, rng: &mut impl Rng) -> Self {
        let mut g = self.clone();
        match &mut g {
            Genome::Lr(cfg) => match rng.gen_range(0..2) {
                0 => cfg.learning_rate = (cfg.learning_rate * rng.gen_range(0.5..2.0)).min(0.5),
                _ => cfg.epochs = (cfg.epochs + rng.gen_range(0..6)).clamp(5, 25),
            },
            Genome::Mlp(cfg) => match rng.gen_range(0..2) {
                0 => cfg.hidden1 = (cfg.hidden1 * if rng.gen_bool(0.5) { 2 } else { 1 }).min(128),
                _ => cfg.learning_rate = (cfg.learning_rate * rng.gen_range(0.5..2.0)).min(0.1),
            },
            Genome::Gbdt(cfg) => match rng.gen_range(0..3) {
                0 => cfg.n_rounds = (cfg.n_rounds + rng.gen_range(1..15)).min(60),
                1 => cfg.max_depth = (cfg.max_depth + 1).min(6),
                _ => cfg.learning_rate = (cfg.learning_rate * rng.gen_range(0.5..1.5)).min(0.8),
            },
        }
        g
    }

    fn fit(
        &self,
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        rng: &mut impl Rng,
    ) -> Result<Box<dyn Classifier>, ModelError> {
        Ok(match self {
            Genome::Lr(cfg) => Box::new(LogisticRegression::fit(x, labels, n_classes, cfg, rng)?),
            Genome::Mlp(cfg) => Box::new(NeuralNet::fit(x, labels, n_classes, cfg, rng)?),
            Genome::Gbdt(cfg) => Box::new(GbdtClassifier::fit(x, labels, n_classes, cfg, rng)?),
        })
    }
}

fn holdout_accuracy(
    genome: &Genome,
    x_train: &CsrMatrix,
    y_train: &[u32],
    x_val: &CsrMatrix,
    y_val: &[usize],
    n_classes: usize,
    rng: &mut impl Rng,
) -> f64 {
    match genome.fit(x_train, y_train, n_classes, rng) {
        Ok(model) => lvp_stats::accuracy(&model.predict_proba(x_val).argmax_rows(), y_val),
        Err(_) => f64::NEG_INFINITY,
    }
}

/// Splits featurized data into (train, validation) index sets.
fn holdout_split(n: usize, rng: &mut impl Rng) -> (Vec<usize>, Vec<usize>) {
    use rand::seq::SliceRandom;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let cut = (n as f64 * 0.8).round() as usize;
    (idx[..cut].to_vec(), idx[cut..].to_vec())
}

/// Successive-halving search over random candidates (auto-sklearn
/// archetype): evaluates `budget` random genomes on a subsample, keeps the
/// better half on the full training split, and deploys the winner.
pub fn auto_sklearn_like(
    train: &DataFrame,
    budget: usize,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let labels = train.labels();
    let (train_idx, val_idx) = holdout_split(x.rows(), rng);
    let xt = x.select_rows(&train_idx);
    let yt: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
    let xv = x.select_rows(&val_idx);
    let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i] as usize).collect();

    // Round 1: cheap evaluation on a subsample of the training split.
    let sub: Vec<usize> = (0..xt.rows()).step_by(2).collect();
    let xs = xt.select_rows(&sub);
    let ys: Vec<u32> = sub.iter().map(|&i| yt[i]).collect();
    let mut candidates: Vec<(Genome, f64)> = (0..budget.max(2))
        .map(|_| {
            let g = Genome::random(rng);
            let score = holdout_accuracy(&g, &xs, &ys, &xv, &yv, train.n_classes(), rng);
            (g, score)
        })
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    candidates.truncate((candidates.len() / 2).max(1));

    // Round 2: full training split for the survivors.
    let (best, _) = candidates
        .into_iter()
        .map(|(g, _)| {
            let score = holdout_accuracy(&g, &xt, &yt, &xv, &yv, train.n_classes(), rng);
            (g, score)
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one survivor");

    let classifier = best.fit(&x, labels, train.n_classes(), rng)?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        classifier,
        "auto-sklearn",
    )))
}

/// Evolutionary pipeline search (TPOT archetype): a small population evolved
/// by mutation with truncation selection on holdout accuracy.
pub fn tpot_like(
    train: &DataFrame,
    generations: usize,
    population: usize,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let labels = train.labels();
    let (train_idx, val_idx) = holdout_split(x.rows(), rng);
    let xt = x.select_rows(&train_idx);
    let yt: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
    let xv = x.select_rows(&val_idx);
    let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i] as usize).collect();

    let population = population.max(2);
    let mut pop: Vec<(Genome, f64)> = (0..population)
        .map(|_| {
            let g = Genome::random(rng);
            let s = holdout_accuracy(&g, &xt, &yt, &xv, &yv, train.n_classes(), rng);
            (g, s)
        })
        .collect();

    for _gen in 0..generations {
        pop.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pop.truncate((population / 2).max(1));
        let parents: Vec<Genome> = pop.iter().map(|(g, _)| g.clone()).collect();
        for parent in parents {
            if pop.len() >= population {
                break;
            }
            let child = parent.mutate(rng);
            let s = holdout_accuracy(&child, &xt, &yt, &xv, &yv, train.n_classes(), rng);
            pop.push((child, s));
        }
    }
    pop.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let best = pop.remove(0).0;
    let classifier = best.fit(&x, labels, train.n_classes(), rng)?;
    Ok(Box::new(PipelineModel::new(featurizer, classifier, "tpot")))
}

/// Neural architecture search over convnet widths (auto-keras archetype).
pub fn auto_keras_like(
    train: &DataFrame,
    trials: usize,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let side = train
        .schema()
        .image_columns()
        .first()
        .and_then(|&i| {
            train
                .column(i)
                .as_image()
                .ok()
                .and_then(|imgs| imgs.iter().flatten().next().map(|img| img.width))
        })
        .ok_or_else(|| ModelError::new("auto-keras search requires an image column"))?;
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let labels = train.labels();
    let (train_idx, val_idx) = holdout_split(x.rows(), rng);
    let xt = x.select_rows(&train_idx);
    let yt: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
    let xv = x.select_rows(&val_idx);
    let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i] as usize).collect();

    let mut best: Option<(ConvNetConfig, f64)> = None;
    for _ in 0..trials.max(1) {
        let cfg = ConvNetConfig {
            c1: *[3, 4, 6].get(rng.gen_range(0..3)).unwrap(),
            c2: *[6, 8, 12].get(rng.gen_range(0..3)).unwrap(),
            dense: *[16, 32].get(rng.gen_range(0..2)).unwrap(),
            ..ConvNetConfig::small(side)
        };
        let score = match ConvNet::fit(&xt, &yt, train.n_classes(), &cfg, rng) {
            Ok(net) => lvp_stats::accuracy(&net.predict_proba(&xv).argmax_rows(), &yv),
            Err(_) => f64::NEG_INFINITY,
        };
        if best.as_ref().is_none_or(|(_, s)| score > *s) {
            best = Some((cfg, score));
        }
    }
    let (cfg, _) = best.expect("at least one trial ran");
    let net = ConvNet::fit(&x, labels, train.n_classes(), &cfg, rng)?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        Box::new(net),
        "auto-keras",
    )))
}

/// The hand-specified larger convnet of Figure 6.
pub fn large_convnet(
    train: &DataFrame,
    rng: &mut impl Rng,
) -> Result<Box<dyn BlackBoxModel>, ModelError> {
    let side = train
        .schema()
        .image_columns()
        .first()
        .and_then(|&i| {
            train
                .column(i)
                .as_image()
                .ok()
                .and_then(|imgs| imgs.iter().flatten().next().map(|img| img.width))
        })
        .ok_or_else(|| ModelError::new("large-convnet requires an image column"))?;
    let featurizer = FeaturePipeline::fit(train, &PipelineConfig::default());
    let x = featurizer.transform(train);
    let cfg = ConvNetConfig {
        c1: 8,
        c2: 16,
        dense: 48,
        ..ConvNetConfig::small(side)
    };
    let net = ConvNet::fit(&x, train.labels(), train.n_classes(), &cfg, rng)?;
    Ok(Box::new(PipelineModel::new(
        featurizer,
        Box::new(net),
        "large-convnet",
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_accuracy;
    use lvp_dataframe::toy_frame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auto_sklearn_like_finds_a_working_model() {
        let df = toy_frame(80);
        let mut rng = StdRng::seed_from_u64(1);
        let model = auto_sklearn_like(&df, 4, &mut rng).unwrap();
        assert_eq!(model.name(), "auto-sklearn");
        assert!(model_accuracy(model.as_ref(), &df) > 0.8);
    }

    #[test]
    fn tpot_like_finds_a_working_model() {
        let df = toy_frame(80);
        let mut rng = StdRng::seed_from_u64(2);
        let model = tpot_like(&df, 2, 4, &mut rng).unwrap();
        assert_eq!(model.name(), "tpot");
        assert!(model_accuracy(model.as_ref(), &df) > 0.8);
    }

    #[test]
    fn auto_keras_requires_images() {
        let df = toy_frame(20);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(auto_keras_like(&df, 1, &mut rng).is_err());
        assert!(large_convnet(&df, &mut rng).is_err());
    }

    #[test]
    fn genome_mutation_changes_something_eventually() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = Genome::random(&mut rng);
        let changed = (0..20).any(|_| g.mutate(&mut rng) != g);
        assert!(changed);
    }
}
