//! Platt-scaling probability calibration.
//!
//! The performance predictor reads the *distribution* of a model's output
//! probabilities, so how well those probabilities are calibrated plausibly
//! affects prediction quality. This wrapper fits the classic Platt sigmoid
//! `σ(a·s + b)` on held-out scores and recalibrates a binary classifier's
//! outputs, enabling the calibrated-vs-raw ablation.

use crate::{Classifier, ModelError};
use lvp_linalg::{sigmoid, CsrMatrix, DenseMatrix};

/// A binary classifier whose positive-class score is recalibrated with a
/// fitted Platt sigmoid.
pub struct PlattCalibrated<C: Classifier> {
    inner: C,
    a: f64,
    b: f64,
}

impl<C: Classifier> PlattCalibrated<C> {
    /// Fits the sigmoid parameters on held-out calibration data by
    /// gradient descent on the log loss (Platt 1999, with the standard
    /// label smoothing prior).
    pub fn fit(inner: C, x_calibration: &CsrMatrix, labels: &[u32]) -> Result<Self, ModelError> {
        if inner.n_classes() != 2 {
            return Err(ModelError::new(
                "Platt scaling requires a binary classifier",
            ));
        }
        if x_calibration.rows() != labels.len() {
            return Err(ModelError::new("feature/label row count mismatch"));
        }
        if x_calibration.rows() == 0 {
            return Err(ModelError::new("empty calibration set"));
        }
        let scores: Vec<f64> = inner.predict_proba(x_calibration).column(1);
        // Platt's smoothed targets.
        let n_pos = labels.iter().filter(|&&l| l == 1).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l == 1 { t_pos } else { t_neg })
            .collect();

        let (mut a, mut b) = (1.0f64, 0.0f64);
        let lr = 0.1;
        for _ in 0..500 {
            let mut ga = 0.0;
            let mut gb = 0.0;
            for (&s, &t) in scores.iter().zip(&targets) {
                let p = sigmoid(a * s + b);
                let err = p - t;
                ga += err * s;
                gb += err;
            }
            let n = scores.len() as f64;
            a -= lr * ga / n;
            b -= lr * gb / n;
        }
        Ok(Self { inner, a, b })
    }

    /// The fitted sigmoid parameters `(a, b)`.
    pub fn parameters(&self) -> (f64, f64) {
        (self.a, self.b)
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Classifier> Classifier for PlattCalibrated<C> {
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
        let raw = self.inner.predict_proba(x);
        let mut out = DenseMatrix::zeros(raw.rows(), 2);
        for r in 0..raw.rows() {
            let p = sigmoid(self.a * raw.get(r, 1) + self.b);
            out.set(r, 0, 1.0 - p);
            out.set(r, 1, p);
        }
        out
    }

    fn n_classes(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{LogisticRegression, LrConfig};
    use lvp_linalg::SparseVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let y = (i % 2) as u32;
            let cx = if y == 0 { -1.0 } else { 1.0 };
            rows.push(
                SparseVec::from_pairs(
                    2,
                    vec![
                        (0, cx + rng.gen_range(-0.8..0.8)),
                        (1, cx + rng.gen_range(-0.8..0.8)),
                    ],
                )
                .unwrap(),
            );
            labels.push(y);
        }
        (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn calibration_preserves_ranking_accuracy() {
        let (x, y) = blobs(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let lr = LogisticRegression::fit(&x, &y, 2, &LrConfig::default(), &mut rng).unwrap();
        let raw_acc = {
            let pred = lr.predict_proba(&x).argmax_rows();
            let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
            lvp_stats::accuracy(&pred, &labels)
        };
        let calibrated = PlattCalibrated::fit(lr, &x, &y).unwrap();
        let pred = calibrated.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        let cal_acc = lvp_stats::accuracy(&pred, &labels);
        assert!((cal_acc - raw_acc).abs() < 0.05);
    }

    #[test]
    fn calibrated_probabilities_are_valid() {
        let (x, y) = blobs(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let lr = LogisticRegression::fit(&x, &y, 2, &LrConfig::default(), &mut rng).unwrap();
        let calibrated = PlattCalibrated::fit(lr, &x, &y).unwrap();
        for row in calibrated.predict_proba(&x).row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let (x, y) = blobs(40, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let lr = LogisticRegression::fit(&x, &y, 2, &LrConfig::default(), &mut rng).unwrap();
        let empty = CsrMatrix::from_sparse_rows(&[]).unwrap();
        assert!(PlattCalibrated::fit(lr, &empty, &[]).is_err());
    }

    #[test]
    fn calibration_improves_log_loss_of_overconfident_scores() {
        // A classifier that is systematically overconfident: squash its
        // scores through calibration and verify the log loss improves.
        struct Overconfident;
        impl Classifier for Overconfident {
            fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
                let mut out = DenseMatrix::zeros(x.rows(), 2);
                for r in 0..x.rows() {
                    let (idx, vals) = x.row(r);
                    let s: f64 = idx.iter().zip(vals).map(|(_, &v)| v).sum();
                    // Saturated probabilities regardless of margin size.
                    let p = if s > 0.0 { 0.999 } else { 0.001 };
                    out.set(r, 0, 1.0 - p);
                    out.set(r, 1, p);
                }
                out
            }
            fn n_classes(&self) -> usize {
                2
            }
        }
        // Overlapping blobs: the margin-sign rule misclassifies some
        // points, so saturated probabilities incur huge log loss.
        let (x, y) = {
            let mut rng = StdRng::seed_from_u64(7);
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for i in 0..400 {
                let y = (i % 2) as u32;
                let cx = if y == 0 { -1.0 } else { 1.0 };
                rows.push(
                    SparseVec::from_pairs(
                        2,
                        vec![
                            (0, cx + rng.gen_range(-2.0..2.0)),
                            (1, cx + rng.gen_range(-2.0..2.0)),
                        ],
                    )
                    .unwrap(),
                );
                labels.push(y);
            }
            (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
        };
        let log_loss = |proba: &DenseMatrix| -> f64 {
            proba
                .row_iter()
                .zip(&y)
                .map(|(row, &l)| -(row[l as usize].max(1e-12)).ln())
                .sum::<f64>()
                / y.len() as f64
        };
        let raw = log_loss(&Overconfident.predict_proba(&x));
        let calibrated = PlattCalibrated::fit(Overconfident, &x, &y).unwrap();
        let cal = log_loss(&calibrated.predict_proba(&x));
        assert!(cal < raw, "calibrated {cal} vs raw {raw}");
    }
}
