//! Shared first-order optimizers.

/// Adam optimizer state for one flat parameter tensor.
#[derive(Debug, Clone)]
pub(crate) struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
    lr: f64,
}

impl Adam {
    const BETA1: f64 = 0.9;
    const BETA2: f64 = 0.999;
    const EPS: f64 = 1e-8;

    /// Creates optimizer state for `len` parameters with learning rate `lr`.
    pub(crate) fn new(len: usize, lr: f64) -> Self {
        Self {
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
            lr,
        }
    }

    /// One Adam update of `params` given `grads`.
    pub(crate) fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        self.t += 1;
        let bc1 = 1.0 - Self::BETA1.powi(self.t as i32);
        let bc2 = 1.0 - Self::BETA2.powi(self.t as i32);
        for ((p, &g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            *m = Self::BETA1 * *m + (1.0 - Self::BETA1) * g;
            *v = Self::BETA2 * *v + (1.0 - Self::BETA2) * g * g;
            let m_hat = *m / bc1;
            let v_hat = *v / bc2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + Self::EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        let mut params = vec![3.0, -2.0];
        let mut opt = Adam::new(2, 0.1);
        for _ in 0..200 {
            let grads: Vec<f64> = params.iter().map(|p| 2.0 * p).collect();
            opt.step(&mut params, &grads);
        }
        assert!(params.iter().all(|p| p.abs() < 0.05), "{params:?}");
    }
}
