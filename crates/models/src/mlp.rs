//! Feed-forward neural network (the paper's `dnn` model): two ReLU hidden
//! layers and a softmax output, trained with Adam, layer sizes grid-searched
//! with cross-validation.

use crate::cv::{grid_search_max, kfold_indices};
use crate::{one_hot_labels, Classifier, ModelError};
use lvp_linalg::{relu, relu_grad, stable_softmax, CsrMatrix, DenseMatrix};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_distr::{Distribution, Normal};

/// Training configuration for [`NeuralNet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Width of the first hidden layer.
    pub hidden1: usize,
    /// Width of the second hidden layer.
    pub hidden2: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            hidden1: 32,
            hidden2: 16,
            learning_rate: 1e-2,
            epochs: 12,
            batch_size: 32,
        }
    }
}

/// The paper's grid over layer sizes.
pub fn default_mlp_grid() -> Vec<MlpConfig> {
    [(16, 8), (32, 16), (64, 32)]
        .into_iter()
        .map(|(hidden1, hidden2)| MlpConfig {
            hidden1,
            hidden2,
            ..MlpConfig::default()
        })
        .collect()
}

use crate::opt::Adam;

/// A fitted two-hidden-layer network.
#[derive(Debug, Clone)]
pub struct NeuralNet {
    w1: DenseMatrix, // d × h1
    b1: Vec<f64>,
    w2: DenseMatrix, // h1 × h2
    b2: Vec<f64>,
    w3: DenseMatrix, // h2 × m
    b3: Vec<f64>,
    n_classes: usize,
}

fn he_init(rows: usize, cols: usize, rng: &mut impl Rng) -> DenseMatrix {
    let std = (2.0 / rows.max(1) as f64).sqrt();
    let normal = Normal::new(0.0, std).expect("finite parameters");
    let data: Vec<f64> = (0..rows * cols).map(|_| normal.sample(rng)).collect();
    DenseMatrix::from_vec(rows, cols, data).expect("buffer sized to shape")
}

impl NeuralNet {
    /// Fits the network with Adam on minibatches.
    pub fn fit(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        config: &MlpConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ModelError> {
        if x.rows() != labels.len() {
            return Err(ModelError::new("feature/label row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        let (d, h1, h2, m) = (x.cols(), config.hidden1, config.hidden2, n_classes);
        let mut net = Self {
            w1: he_init(d, h1, rng),
            b1: vec![0.0; h1],
            w2: he_init(h1, h2, rng),
            b2: vec![0.0; h2],
            w3: he_init(h2, m, rng),
            b3: vec![0.0; m],
            n_classes: m,
        };
        let y = one_hot_labels(labels, m);
        let mut opt_w1 = Adam::new(d * h1, config.learning_rate);
        let mut opt_b1 = Adam::new(h1, config.learning_rate);
        let mut opt_w2 = Adam::new(h1 * h2, config.learning_rate);
        let mut opt_b2 = Adam::new(h2, config.learning_rate);
        let mut opt_w3 = Adam::new(h2 * m, config.learning_rate);
        let mut opt_b3 = Adam::new(m, config.learning_rate);

        let mut order: Vec<usize> = (0..x.rows()).collect();
        for _epoch in 0..config.epochs {
            order.shuffle(rng);
            for batch in order.chunks(config.batch_size) {
                let xb = x.select_rows(batch);
                let yb = y.select_rows(batch);
                let n = batch.len() as f64;

                // Forward pass.
                let mut z1 = xb.matmul_dense(&net.w1).expect("shapes fixed at init");
                z1.add_row_vector(&net.b1).expect("bias aligned");
                let mut a1 = z1.clone();
                a1.map_in_place(relu);
                let mut z2 = a1.matmul(&net.w2).expect("shapes fixed at init");
                z2.add_row_vector(&net.b2).expect("bias aligned");
                let mut a2 = z2.clone();
                a2.map_in_place(relu);
                let mut logits = a2.matmul(&net.w3).expect("shapes fixed at init");
                logits.add_row_vector(&net.b3).expect("bias aligned");
                let p = stable_softmax(&logits);

                // Backward pass.
                let mut d_logits = p;
                d_logits.axpy(-1.0, &yb).expect("same shape");
                d_logits.scale(1.0 / n);

                let d_w3 = a2.transpose().matmul(&d_logits).expect("shapes align");
                let d_b3 = column_sums(&d_logits);
                let mut d_a2 = d_logits.matmul(&net.w3.transpose()).expect("shapes align");
                mask_relu_grad(&mut d_a2, &z2);
                let d_w2 = a1.transpose().matmul(&d_a2).expect("shapes align");
                let d_b2 = column_sums(&d_a2);
                let mut d_a1 = d_a2.matmul(&net.w2.transpose()).expect("shapes align");
                mask_relu_grad(&mut d_a1, &z1);
                let d_w1 = csr_transpose_matmul(&xb, &d_a1);
                let d_b1 = column_sums(&d_a1);

                opt_w1.step(net.w1.data_mut(), d_w1.data());
                opt_b1.step(&mut net.b1, &d_b1);
                opt_w2.step(net.w2.data_mut(), d_w2.data());
                opt_b2.step(&mut net.b2, &d_b2);
                opt_w3.step(net.w3.data_mut(), d_w3.data());
                opt_b3.step(&mut net.b3, &d_b3);
            }
        }
        Ok(net)
    }

    /// Fits with k-fold CV over the layer-size grid, refitting the winner.
    pub fn fit_cv(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        grid: &[MlpConfig],
        k_folds: usize,
        rng: &mut impl Rng,
    ) -> Result<(Self, MlpConfig), ModelError> {
        let folds = kfold_indices(x.rows(), k_folds, rng);
        let mut seeds: Vec<u64> = (0..grid.len()).map(|_| rng.gen()).collect();
        let (best, _) = grid_search_max(grid, |cfg| {
            let mut local = rand::rngs::StdRng::seed_from_u64(seeds.pop().unwrap_or(0));
            let mut acc = 0.0;
            for (train_idx, val_idx) in &folds {
                let xt = x.select_rows(train_idx);
                let yt: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
                let Ok(model) = Self::fit(&xt, &yt, n_classes, cfg, &mut local) else {
                    return f64::NEG_INFINITY;
                };
                let xv = x.select_rows(val_idx);
                let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i] as usize).collect();
                let pred = model.predict_proba(&xv).argmax_rows();
                acc += lvp_stats::accuracy(&pred, &yv);
            }
            acc / folds.len() as f64
        });
        let model = Self::fit(x, labels, n_classes, &best, rng)?;
        Ok((model, best))
    }
}

/// `xᵀ · dense` for a CSR left operand: accumulates sparse outer products.
fn csr_transpose_matmul(x: &CsrMatrix, dense: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(x.cols(), dense.cols());
    for r in 0..x.rows() {
        let (idx, vals) = x.row(r);
        let d_row = dense.row(r);
        for (&c, &v) in idx.iter().zip(vals) {
            let out_row = out.row_mut(c as usize);
            for (o, &g) in out_row.iter_mut().zip(d_row) {
                *o += v * g;
            }
        }
    }
    out
}

/// Zeroes gradient entries where the pre-activation was non-positive.
fn mask_relu_grad(grad: &mut DenseMatrix, pre_activation: &DenseMatrix) {
    for (g, &z) in grad.data_mut().iter_mut().zip(pre_activation.data().iter()) {
        *g *= relu_grad(z);
    }
}

fn column_sums(m: &DenseMatrix) -> Vec<f64> {
    let mut sums = vec![0.0; m.cols()];
    for row in m.row_iter() {
        for (s, &v) in sums.iter_mut().zip(row) {
            *s += v;
        }
    }
    sums
}

impl Classifier for NeuralNet {
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
        let mut z1 = x.matmul_dense(&self.w1).expect("shapes fixed at fit");
        z1.add_row_vector(&self.b1).expect("bias aligned");
        z1.map_in_place(relu);
        let mut z2 = z1.matmul(&self.w2).expect("shapes fixed at fit");
        z2.add_row_vector(&self.b2).expect("bias aligned");
        z2.map_in_place(relu);
        let mut logits = z2.matmul(&self.w3).expect("shapes fixed at fit");
        logits.add_row_vector(&self.b3).expect("bias aligned");
        stable_softmax(&logits)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_linalg::SparseVec;
    use rand::rngs::StdRng;

    /// XOR-like data: requires a nonlinear decision boundary.
    fn xor_data(n: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x0: f64 = rng.gen_range(-1.0..1.0);
            let x1: f64 = rng.gen_range(-1.0..1.0);
            let y = u32::from((x0 > 0.0) != (x1 > 0.0));
            rows.push(SparseVec::from_pairs(2, vec![(0, x0), (1, x1)]).unwrap());
            labels.push(y);
        }
        (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MlpConfig {
            epochs: 40,
            ..MlpConfig::default()
        };
        let net = NeuralNet::fit(&x, &y, 2, &cfg, &mut rng).unwrap();
        let pred = net.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        let acc = lvp_stats::accuracy(&pred, &labels);
        assert!(acc > 0.9, "XOR accuracy {acc}");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (x, y) = xor_data(60, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let net = NeuralNet::fit(&x, &y, 2, &MlpConfig::default(), &mut rng).unwrap();
        for row in net.predict_proba(&x).row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_input() {
        let x = CsrMatrix::from_sparse_rows(&[]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(NeuralNet::fit(&x, &[], 2, &MlpConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn cv_picks_a_grid_member() {
        let (x, y) = xor_data(150, 6);
        let mut rng = StdRng::seed_from_u64(7);
        let grid = default_mlp_grid();
        let (_, cfg) = NeuralNet::fit_cv(&x, &y, 2, &grid, 3, &mut rng).unwrap();
        assert!(grid.contains(&cfg));
    }

    #[test]
    fn csr_transpose_matmul_matches_dense() {
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = CsrMatrix::from_dense(&d);
        let g = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let got = csr_transpose_matmul(&x, &g);
        let want = d.transpose().matmul(&g).unwrap();
        assert_eq!(got, want);
    }
}
