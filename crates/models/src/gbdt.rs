//! Gradient-boosted decision trees (the paper's `xgb` model): second-order
//! boosting on the softmax objective, one regression tree per class per
//! round, XGBoost-style.

use crate::cv::{grid_search_max, kfold_indices};
use crate::tree::{RegressionTree, SplitMethod, TrainingColumns, TreeParams};
use crate::{one_hot_labels, Classifier, ModelError, Regressor};
use lvp_linalg::row_blocks;
use lvp_linalg::{stable_softmax, CsrMatrix, DenseMatrix};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

/// Training configuration for gradient boosting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_rounds: usize,
    /// Maximum depth of each tree.
    pub max_depth: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Fraction of features considered per split.
    pub colsample: f64,
    /// Fraction of rows sampled per round.
    pub subsample: f64,
    /// Minimum examples per leaf.
    pub min_samples_leaf: usize,
    /// Split-candidate enumeration strategy (histogram by default; exact
    /// enumeration is kept as the oracle).
    pub split_method: SplitMethod,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 30,
            max_depth: 3,
            learning_rate: 0.3,
            lambda: 1.0,
            colsample: 0.8,
            subsample: 0.9,
            min_samples_leaf: 2,
            split_method: SplitMethod::default(),
        }
    }
}

/// The paper's grid: number and depth of trees.
pub fn default_gbdt_grid() -> Vec<GbdtConfig> {
    let mut grid = Vec::new();
    for n_rounds in [20, 40] {
        for max_depth in [2, 3, 4] {
            grid.push(GbdtConfig {
                n_rounds,
                max_depth,
                ..GbdtConfig::default()
            });
        }
    }
    grid
}

impl GbdtConfig {
    fn tree_params(&self) -> TreeParams {
        TreeParams {
            max_depth: self.max_depth,
            min_samples_leaf: self.min_samples_leaf,
            lambda: self.lambda,
            colsample: self.colsample,
            min_gain: 1e-9,
        }
    }
}

/// A fitted gradient-boosted classifier.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GbdtClassifier {
    // trees[round][class]
    trees: Vec<Vec<RegressionTree>>,
    learning_rate: f64,
    n_classes: usize,
}

impl GbdtClassifier {
    /// Fits with Newton boosting on the softmax objective.
    pub fn fit(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        config: &GbdtConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ModelError> {
        if x.rows() != labels.len() {
            return Err(ModelError::new("feature/label row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        let n = x.rows();
        let m = n_classes;
        let columns = TrainingColumns::from_csr(x, config.split_method);
        let y = one_hot_labels(labels, m);
        let mut logits = DenseMatrix::zeros(n, m);
        let mut trees: Vec<Vec<RegressionTree>> = Vec::with_capacity(config.n_rounds);
        let params = config.tree_params();
        let mut all_rows: Vec<usize> = (0..n).collect();

        for _round in 0..config.n_rounds {
            let p = stable_softmax(&logits);
            // Row subsample for this round.
            all_rows.shuffle(rng);
            let keep = ((n as f64 * config.subsample).ceil() as usize).clamp(1, n);
            let round_rows = &all_rows[..keep];

            let mut round_trees = Vec::with_capacity(m);
            for k in 0..m {
                let mut grad = vec![0.0; n];
                let mut hess = vec![0.0; n];
                for r in 0..n {
                    let pk = p.get(r, k);
                    grad[r] = pk - y.get(r, k);
                    hess[r] = (pk * (1.0 - pk)).max(1e-12);
                }
                let tree = RegressionTree::fit(&columns, &grad, &hess, round_rows, &params, rng);
                for r in 0..n {
                    let (idx, vals) = x.row(r);
                    let delta = tree.predict_row(idx, vals);
                    logits.set(r, k, logits.get(r, k) + config.learning_rate * delta);
                }
                round_trees.push(tree);
            }
            trees.push(round_trees);
        }
        Ok(Self {
            trees,
            learning_rate: config.learning_rate,
            n_classes: m,
        })
    }

    /// Fits with k-fold CV over the (rounds, depth) grid, refitting the
    /// winner on all data.
    pub fn fit_cv(
        x: &CsrMatrix,
        labels: &[u32],
        n_classes: usize,
        grid: &[GbdtConfig],
        k_folds: usize,
        rng: &mut impl Rng,
    ) -> Result<(Self, GbdtConfig), ModelError> {
        if x.rows() < k_folds {
            // Too little data to cross-validate: some validation folds
            // would be empty, making fold accuracy NaN and poisoning the
            // grid search. Fall back to the first configuration, like
            // `RandomForestRegressor::fit_cv`.
            let cfg = grid
                .first()
                .copied()
                .ok_or_else(|| ModelError::new("empty gbdt grid"))?;
            return Ok((Self::fit(x, labels, n_classes, &cfg, rng)?, cfg));
        }
        let folds = kfold_indices(x.rows(), k_folds, rng);
        let mut seeds: Vec<u64> = (0..grid.len()).map(|_| rng.gen()).collect();
        let (best, _) = grid_search_max(grid, |cfg| {
            let mut local = rand::rngs::StdRng::seed_from_u64(seeds.pop().unwrap_or(0));
            let mut acc = 0.0;
            for (train_idx, val_idx) in &folds {
                let xt = x.select_rows(train_idx);
                let yt: Vec<u32> = train_idx.iter().map(|&i| labels[i]).collect();
                let Ok(model) = Self::fit(&xt, &yt, n_classes, cfg, &mut local) else {
                    return f64::NEG_INFINITY;
                };
                let xv = x.select_rows(val_idx);
                let yv: Vec<usize> = val_idx.iter().map(|&i| labels[i] as usize).collect();
                let pred = model.predict_proba(&xv).argmax_rows();
                acc += lvp_stats::accuracy(&pred, &yv);
            }
            acc / folds.len() as f64
        });
        let model = Self::fit(x, labels, n_classes, &best, rng)?;
        Ok((model, best))
    }

    /// Total number of trees across rounds and classes.
    pub fn n_trees(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }
}

/// Rows per block for blocked tree traversal: small enough that a block of
/// dense scratch rows stays cache-resident while every tree walks it.
pub(crate) const PREDICT_ROW_BLOCK: usize = 64;

/// Widest matrix for which blocked inference materializes CSR rows into a
/// dense scratch block (beyond this the scratch no longer pays for itself).
const DENSE_SCRATCH_MAX_COLS: usize = 4096;

impl Classifier for GbdtClassifier {
    /// Blocked traversal: rows are visited in cache-sized blocks and every
    /// tree walks the whole block before the next block is touched, so
    /// tree nodes stay hot across rows. For matrices of moderate width the
    /// block's CSR rows are first materialized into a dense scratch
    /// buffer, replacing the per-node `binary_search` of
    /// [`RegressionTree::predict_row`] with direct indexing.
    ///
    /// Per (row, class) the logit accumulates in round order — exactly the
    /// order of row-at-a-time traversal — so results are bit-identical to
    /// the unblocked implementation.
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix {
        let mut logits = DenseMatrix::zeros(x.rows(), self.n_classes);
        let width = x.cols();
        let max_feature = self
            .trees
            .iter()
            .flatten()
            .filter_map(RegressionTree::max_feature)
            .max();
        // The scratch path indexes rows directly by feature, so every
        // split feature must fit inside the materialized width.
        let densify = width <= DENSE_SCRATCH_MAX_COLS && max_feature.is_none_or(|f| f < width);
        let mut scratch = vec![
            0.0;
            if densify {
                PREDICT_ROW_BLOCK * width
            } else {
                0
            }
        ];
        for block in row_blocks(x.rows(), PREDICT_ROW_BLOCK) {
            if densify {
                scratch[..block.len() * width].fill(0.0);
                for r in block.clone() {
                    let (idx, vals) = x.row(r);
                    let dst = &mut scratch[(r - block.start) * width..];
                    for (&c, &v) in idx.iter().zip(vals) {
                        dst[c as usize] = v;
                    }
                }
            }
            for round in &self.trees {
                for (k, tree) in round.iter().enumerate() {
                    for r in block.clone() {
                        let delta = if densify {
                            let at = (r - block.start) * width;
                            tree.predict_dense_row(&scratch[at..at + width])
                        } else {
                            let (idx, vals) = x.row(r);
                            tree.predict_row(idx, vals)
                        };
                        logits.set(r, k, logits.get(r, k) + self.learning_rate * delta);
                    }
                }
            }
        }
        stable_softmax(&logits)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

/// Gradient-boosted regressor on squared loss; used as an ablation
/// meta-model for the performance predictor and by the validator.
pub struct GbdtRegressor {
    trees: Vec<RegressionTree>,
    learning_rate: f64,
    base: f64,
}

impl GbdtRegressor {
    /// Fits boosted trees to continuous targets with squared loss.
    pub fn fit(
        x: &DenseMatrix,
        targets: &[f64],
        config: &GbdtConfig,
        rng: &mut impl Rng,
    ) -> Result<Self, ModelError> {
        if x.rows() != targets.len() {
            return Err(ModelError::new("feature/target row count mismatch"));
        }
        if x.rows() == 0 {
            return Err(ModelError::new("cannot fit on an empty dataset"));
        }
        let n = x.rows();
        let columns = TrainingColumns::from_dense(x, config.split_method);
        let base = targets.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let mut trees = Vec::with_capacity(config.n_rounds);
        let params = config.tree_params();
        let hess = vec![1.0; n];
        let mut all_rows: Vec<usize> = (0..n).collect();
        for _ in 0..config.n_rounds {
            let grad: Vec<f64> = pred.iter().zip(targets).map(|(p, t)| p - t).collect();
            all_rows.shuffle(rng);
            let keep = ((n as f64 * config.subsample).ceil() as usize).clamp(1, n);
            let tree = RegressionTree::fit(&columns, &grad, &hess, &all_rows[..keep], &params, rng);
            for (r, p) in pred.iter_mut().enumerate() {
                *p += config.learning_rate * tree.predict_dense_row(x.row(r));
            }
            trees.push(tree);
        }
        Ok(Self {
            trees,
            learning_rate: config.learning_rate,
            base,
        })
    }
}

impl Regressor for GbdtRegressor {
    /// Blocked traversal (all trees per row block); per row the tree
    /// outputs still sum in tree order, so results are bit-identical to
    /// row-at-a-time prediction.
    fn predict(&self, x: &DenseMatrix) -> Vec<f64> {
        let mut sums = vec![0.0; x.rows()];
        for block in row_blocks(x.rows(), PREDICT_ROW_BLOCK) {
            for tree in &self.trees {
                for r in block.clone() {
                    sums[r] += tree.predict_dense_row(x.row(r));
                }
            }
        }
        sums.into_iter()
            .map(|s| self.base + self.learning_rate * s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_linalg::SparseVec;
    use rand::rngs::StdRng;

    fn rings(n: usize, seed: u64) -> (CsrMatrix, Vec<u32>) {
        // Inner disc vs outer ring: nonlinear, tree-friendly.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let y = u32::from(rng.gen_bool(0.5));
            let r = if y == 0 {
                rng.gen_range(0.0..0.5)
            } else {
                rng.gen_range(0.8..1.2)
            };
            rows.push(SparseVec::from_pairs(2, vec![(0, r * a.cos()), (1, r * a.sin())]).unwrap());
            labels.push(y);
        }
        (CsrMatrix::from_sparse_rows(&rows).unwrap(), labels)
    }

    #[test]
    fn learns_rings() {
        let (x, y) = rings(300, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let model = GbdtClassifier::fit(&x, &y, 2, &GbdtConfig::default(), &mut rng).unwrap();
        let pred = model.predict_proba(&x).argmax_rows();
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        let acc = lvp_stats::accuracy(&pred, &labels);
        assert!(acc > 0.9, "rings accuracy {acc}");
    }

    #[test]
    fn probabilities_normalized_and_finite() {
        let (x, y) = rings(100, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let model = GbdtClassifier::fit(&x, &y, 2, &GbdtConfig::default(), &mut rng).unwrap();
        for row in model.predict_proba(&x).row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn tree_count_matches_config() {
        let (x, y) = rings(60, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = GbdtConfig {
            n_rounds: 7,
            ..GbdtConfig::default()
        };
        let model = GbdtClassifier::fit(&x, &y, 2, &cfg, &mut rng).unwrap();
        assert_eq!(model.n_trees(), 7 * 2);
    }

    #[test]
    fn cv_returns_grid_member() {
        let (x, y) = rings(120, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let grid = [
            GbdtConfig {
                n_rounds: 5,
                ..GbdtConfig::default()
            },
            GbdtConfig {
                n_rounds: 15,
                ..GbdtConfig::default()
            },
        ];
        let (_, cfg) = GbdtClassifier::fit_cv(&x, &y, 2, &grid, 3, &mut rng).unwrap();
        assert!(grid.contains(&cfg));
    }

    #[test]
    fn classifier_survives_json_round_trip() {
        let (x, y) = rings(120, 11);
        let mut rng = StdRng::seed_from_u64(12);
        let model = GbdtClassifier::fit(&x, &y, 2, &GbdtConfig::default(), &mut rng).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let restored: GbdtClassifier = serde_json::from_str(&json).unwrap();
        assert_eq!(restored, model);
        // Bit-identical probabilities, not just equal structure.
        let before = model.predict_proba(&x);
        let after = restored.predict_proba(&x);
        for r in 0..x.rows() {
            for c in 0..2 {
                assert_eq!(before.get(r, c).to_bits(), after.get(r, c).to_bits());
            }
        }
    }

    /// Satellite-2 regression test: with fewer rows than folds, `fit_cv`
    /// must fall back to fitting the first grid entry instead of scoring
    /// empty validation folds (whose NaN accuracy used to make the first
    /// config win silently — now it would trip the NaN handling in
    /// `grid_search_max` instead, and this path avoids it entirely).
    #[test]
    fn tiny_dataset_falls_back_without_cv() {
        let (x, y) = rings(3, 13);
        let mut rng = StdRng::seed_from_u64(14);
        let grid = default_gbdt_grid();
        let (model, cfg) = GbdtClassifier::fit_cv(&x, &y, 2, &grid, 5, &mut rng).unwrap();
        assert_eq!(cfg, grid[0]);
        assert!(model.n_trees() > 0);
    }

    #[test]
    fn exact_and_histogram_splits_reach_similar_accuracy() {
        let (x, y) = rings(300, 15);
        let labels: Vec<usize> = y.iter().map(|&l| l as usize).collect();
        let mut acc = [0.0f64; 2];
        for (slot, method) in [SplitMethod::Exact, SplitMethod::Histogram]
            .into_iter()
            .enumerate()
        {
            let cfg = GbdtConfig {
                split_method: method,
                ..GbdtConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(16);
            let model = GbdtClassifier::fit(&x, &y, 2, &cfg, &mut rng).unwrap();
            let pred = model.predict_proba(&x).argmax_rows();
            acc[slot] = lvp_stats::accuracy(&pred, &labels);
        }
        assert!(acc[0] > 0.9, "exact accuracy {}", acc[0]);
        assert!(acc[1] > 0.9, "histogram accuracy {}", acc[1]);
        assert!((acc[0] - acc[1]).abs() < 0.05, "parity gap {acc:?}");
    }

    #[test]
    fn regressor_fits_quadratic() {
        let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 79.0]).collect();
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = GbdtConfig {
            n_rounds: 60,
            max_depth: 3,
            learning_rate: 0.2,
            lambda: 0.1,
            ..GbdtConfig::default()
        };
        let model = GbdtRegressor::fit(&x, &y, &cfg, &mut rng).unwrap();
        let pred = model.predict(&x);
        let mae = lvp_stats::mean_absolute_error(&pred, &y);
        assert!(mae < 0.03, "MAE {mae}");
    }

    #[test]
    fn regressor_rejects_empty() {
        let x = DenseMatrix::zeros(0, 3);
        let mut rng = StdRng::seed_from_u64(10);
        assert!(GbdtRegressor::fit(&x, &[], &GbdtConfig::default(), &mut rng).is_err());
    }
}
