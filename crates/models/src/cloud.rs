//! Simulated cloud ML service (the Google AutoML Tables stand-in of §6.3.2).
//!
//! The paper's final experiment validates a model that is *trained and
//! hosted* by a third-party cloud service: the user uploads training data,
//! receives an opaque model handle, and can only retrieve batched
//! predictions. This module reproduces that contract:
//!
//! * [`CloudModelService::train_and_deploy`] runs an AutoML search
//!   server-side and returns only a [`ModelHandle`],
//! * predictions are served via [`CloudModelService::batch_predict`], which
//!   meters request counts and row quotas like a billed endpoint,
//! * [`RemoteModel`] adapts a handle to the [`BlackBoxModel`] trait so the
//!   performance predictor can be trained against the remote endpoint
//!   exactly like against a local model.

use crate::automl::auto_sklearn_like;
use crate::{BlackBoxModel, ModelError};
use lvp_dataframe::DataFrame;
use lvp_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Opaque identifier of a deployed cloud model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHandle(u64);

struct ServiceInner {
    models: Mutex<HashMap<ModelHandle, Box<dyn BlackBoxModel>>>,
    next_handle: AtomicU64,
    requests: AtomicU64,
    rows_scored: AtomicU64,
}

/// A simulated cloud prediction service hosting opaque models.
#[derive(Clone)]
pub struct CloudModelService {
    inner: Arc<ServiceInner>,
}

impl Default for CloudModelService {
    fn default() -> Self {
        Self::new()
    }
}

impl CloudModelService {
    /// Starts an empty service.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(ServiceInner {
                models: Mutex::new(HashMap::new()),
                next_handle: AtomicU64::new(1),
                requests: AtomicU64::new(0),
                rows_scored: AtomicU64::new(0),
            }),
        }
    }

    /// "Uploads" training data, runs a server-side AutoML search and deploys
    /// the resulting model. Only the handle is returned — the learning
    /// algorithm and feature map stay inside the service, as with Google
    /// AutoML Tables.
    pub fn train_and_deploy(
        &self,
        train: &DataFrame,
        seed: u64,
    ) -> Result<ModelHandle, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = auto_sklearn_like(train, 6, &mut rng)?;
        let handle = ModelHandle(self.inner.next_handle.fetch_add(1, Ordering::Relaxed));
        self.inner
            .models
            .lock()
            .expect("service mutex not poisoned")
            .insert(handle, model);
        Ok(handle)
    }

    /// Scores a batch of rows against a deployed model.
    pub fn batch_predict(
        &self,
        handle: ModelHandle,
        data: &DataFrame,
    ) -> Result<DenseMatrix, ModelError> {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        self.inner
            .rows_scored
            .fetch_add(data.n_rows() as u64, Ordering::Relaxed);
        let models = self
            .inner
            .models
            .lock()
            .expect("service mutex not poisoned");
        let model = models
            .get(&handle)
            .ok_or_else(|| ModelError::new("unknown model handle"))?;
        Ok(model.predict_proba(data))
    }

    /// Number of classes of a deployed model.
    pub fn model_classes(&self, handle: ModelHandle) -> Result<usize, ModelError> {
        let models = self
            .inner
            .models
            .lock()
            .expect("service mutex not poisoned");
        models
            .get(&handle)
            .map(|m| m.n_classes())
            .ok_or_else(|| ModelError::new("unknown model handle"))
    }

    /// Total prediction requests served (the "billing meter").
    pub fn requests_served(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// Total rows scored across all requests.
    pub fn rows_scored(&self) -> u64 {
        self.inner.rows_scored.load(Ordering::Relaxed)
    }

    /// Adapts a deployed model to the [`BlackBoxModel`] trait.
    pub fn remote_model(&self, handle: ModelHandle) -> Result<RemoteModel, ModelError> {
        let n_classes = self.model_classes(handle)?;
        Ok(RemoteModel {
            service: self.clone(),
            handle,
            n_classes,
        })
    }
}

/// A client-side view of a cloud-hosted model. Every `predict_proba` call
/// is a metered request against the service.
pub struct RemoteModel {
    service: CloudModelService,
    handle: ModelHandle,
    n_classes: usize,
}

impl BlackBoxModel for RemoteModel {
    fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
        self.service
            .batch_predict(self.handle, data)
            .expect("handle validated at construction")
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        "cloud-automl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;

    #[test]
    fn deploy_and_predict_round_trip() {
        let service = CloudModelService::new();
        let df = toy_frame(60);
        let handle = service.train_and_deploy(&df, 1).unwrap();
        let p = service.batch_predict(handle, &df).unwrap();
        assert_eq!(p.rows(), 60);
        assert_eq!(service.requests_served(), 1);
        assert_eq!(service.rows_scored(), 60);
    }

    #[test]
    fn unknown_handle_is_rejected() {
        let service = CloudModelService::new();
        let df = toy_frame(5);
        assert!(service.batch_predict(ModelHandle(99), &df).is_err());
        assert!(service.model_classes(ModelHandle(99)).is_err());
    }

    #[test]
    fn remote_model_meters_requests() {
        let service = CloudModelService::new();
        let df = toy_frame(30);
        let handle = service.train_and_deploy(&df, 2).unwrap();
        let remote = service.remote_model(handle).unwrap();
        let _ = remote.predict_proba(&df);
        let _ = remote.predict_proba(&df);
        assert_eq!(service.requests_served(), 2);
        assert_eq!(remote.name(), "cloud-automl");
        assert_eq!(remote.n_classes(), 2);
    }

    #[test]
    fn handles_are_unique() {
        let service = CloudModelService::new();
        let df = toy_frame(30);
        let h1 = service.train_and_deploy(&df, 3).unwrap();
        let h2 = service.train_and_deploy(&df, 4).unwrap();
        assert_ne!(h1, h2);
    }
}
