//! Simulated cloud ML service (the Google AutoML Tables stand-in of §6.3.2).
//!
//! The paper's final experiment validates a model that is *trained and
//! hosted* by a third-party cloud service: the user uploads training data,
//! receives an opaque model handle, and can only retrieve batched
//! predictions. This module reproduces that contract:
//!
//! * [`CloudModelService::train_and_deploy`] runs an AutoML search
//!   server-side and returns only a [`ModelHandle`],
//! * predictions are served via [`CloudModelService::batch_predict`], which
//!   meters request counts and row quotas like a billed endpoint,
//! * [`RemoteModel`] adapts a handle to the [`BlackBoxModel`] trait so the
//!   performance predictor can be trained against the remote endpoint
//!   exactly like against a local model.
//!
//! Real cloud endpoints fail: requests time out, quotas reject, responses
//! arrive truncated or corrupted. [`FaultPlan`] reproduces exactly that —
//! a deterministic, seed-driven per-request fault schedule installable via
//! [`CloudModelService::install_fault_plan`]. Fault decisions are a pure
//! function of `(plan seed, request content key, attempt number)` — no
//! wall clock, no ambient randomness — so chaos runs replay bit-identically
//! at any thread count (see [`crate::resilience`] for the client half).

use crate::automl::auto_sklearn_like;
use crate::resilience::{frame_content_key, validate_probability_matrix, VirtualClock};
use crate::{BlackBoxModel, ModelError};
use lvp_dataframe::DataFrame;
use lvp_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Opaque identifier of a deployed cloud model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHandle(u64);

/// One injected fault, decided per `(request key, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Retryable 5xx-style failure.
    Transient,
    /// Quota / rate-limit rejection.
    RateLimited,
    /// Response is served but rows are missing.
    Truncated,
    /// Response is served but probability rows are corrupted (non-finite
    /// or non-normalized).
    Corrupted,
    /// Response is served correctly but slowly (advances the virtual
    /// clock).
    Slow,
}

/// Totals of injected faults, for assertions and chaos-run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Requests that failed with an injected transient error.
    pub transient: u64,
    /// Requests rejected by the injected rate limiter.
    pub rate_limited: u64,
    /// Requests answered with a truncated row set.
    pub truncated: u64,
    /// Requests answered with corrupted probability rows.
    pub corrupted: u64,
    /// Requests answered correctly but with injected latency.
    pub slow: u64,
    /// Requests served cleanly while the plan was installed.
    pub clean: u64,
}

impl FaultStats {
    /// Total injected faults (everything except clean and slow responses).
    pub fn total_faults(&self) -> u64 {
        self.transient + self.rate_limited + self.truncated + self.corrupted
    }
}

/// A deterministic, seed-driven fault-injection schedule for
/// [`CloudModelService`].
///
/// Every fault decision is a pure function of `(seed, request content key,
/// attempt)` where the content key hashes the requested batch
/// ([`frame_content_key`]) and `attempt` counts how often that exact batch
/// has been requested. Identical runs therefore inject identical faults —
/// regardless of thread count or wall-clock speed — which is what makes
/// chaos tests reproducible.
///
/// Probabilities are independent cumulative weights in `[0, 1]`; their sum
/// must not exceed 1. `max_faults_per_key` bounds how many attempts on one
/// key may fault (guaranteeing that retry loops converge); `poisoned`
/// designates a fraction of keys that fail on *every* attempt, which is
/// how terminal failures — and the monitor's degraded mode — are
/// exercised.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed of the schedule.
    pub seed: u64,
    /// Probability of a retryable transient failure.
    pub transient: f64,
    /// Probability of a rate-limit / quota rejection.
    pub rate_limited: f64,
    /// Probability of a truncated response.
    pub truncated: f64,
    /// Probability of corrupted probability rows.
    pub corrupted: f64,
    /// Probability of a slow (but correct) response.
    pub slow: f64,
    /// Fraction of request keys that fail on every attempt.
    pub poisoned: f64,
    /// Virtual latency added to every request (when a clock is attached).
    pub base_latency_nanos: u64,
    /// Extra virtual latency of a `FaultKind::Slow` response.
    pub slow_latency_nanos: u64,
    /// Attempts on one key beyond which requests always succeed (poisoned
    /// keys excepted). Guarantees liveness for retrying clients.
    pub max_faults_per_key: u32,
}

impl FaultPlan {
    /// An inert plan (no faults) with the given seed; set the probability
    /// fields to taste.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            transient: 0.0,
            rate_limited: 0.0,
            truncated: 0.0,
            corrupted: 0.0,
            slow: 0.0,
            poisoned: 0.0,
            base_latency_nanos: 0,
            slow_latency_nanos: 0,
            max_faults_per_key: u32::MAX,
        }
    }

    /// Splitmix64-style finalizer shared with the engine's seed derivation.
    fn mix(mut z: u64) -> u64 {
        for _ in 0..2 {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
        }
        z
    }

    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether `key` fails on every attempt under this plan.
    pub fn is_poisoned(&self, key: u64) -> bool {
        Self::unit(Self::mix(
            self.seed ^ key.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0x7015_0ED5_A17E_D0A7,
        )) < self.poisoned
    }

    /// The fault (if any) injected on the given attempt at `key`. Pure
    /// function — the cornerstone of chaos-run reproducibility.
    fn decide(&self, key: u64, attempt: u32) -> Option<FaultKind> {
        if self.is_poisoned(key) {
            // Poisoned keys alternate failure modes so terminal failures
            // exercise both the transport-error and the corrupt-response
            // paths.
            return Some(if attempt.is_multiple_of(2) {
                FaultKind::Transient
            } else {
                FaultKind::Corrupted
            });
        }
        if attempt >= self.max_faults_per_key {
            return None;
        }
        let draw = Self::unit(Self::mix(
            self.seed
                ^ key.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ u64::from(attempt).wrapping_mul(0x9FB2_1C65_1E98_DF25),
        ));
        let mut cutoff = self.transient;
        if draw < cutoff {
            return Some(FaultKind::Transient);
        }
        cutoff += self.rate_limited;
        if draw < cutoff {
            return Some(FaultKind::RateLimited);
        }
        cutoff += self.truncated;
        if draw < cutoff {
            return Some(FaultKind::Truncated);
        }
        cutoff += self.corrupted;
        if draw < cutoff {
            return Some(FaultKind::Corrupted);
        }
        cutoff += self.slow;
        if draw < cutoff {
            return Some(FaultKind::Slow);
        }
        None
    }
}

/// Installed fault schedule plus its bookkeeping (per-key attempt counts,
/// injected totals, optional virtual clock for latency simulation).
struct FaultInjector {
    plan: FaultPlan,
    clock: Option<VirtualClock>,
    attempts: HashMap<u64, u32>,
    stats: FaultStats,
}

struct ServiceInner {
    models: Mutex<HashMap<ModelHandle, Box<dyn BlackBoxModel>>>,
    faults: Mutex<Option<FaultInjector>>,
    next_handle: AtomicU64,
    requests: AtomicU64,
    rows_scored: AtomicU64,
}

/// A simulated cloud prediction service hosting opaque models.
#[derive(Clone)]
pub struct CloudModelService {
    inner: Arc<ServiceInner>,
}

impl Default for CloudModelService {
    fn default() -> Self {
        Self::new()
    }
}

impl CloudModelService {
    /// Starts an empty service.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(ServiceInner {
                models: Mutex::new(HashMap::new()),
                faults: Mutex::new(None),
                next_handle: AtomicU64::new(1),
                requests: AtomicU64::new(0),
                rows_scored: AtomicU64::new(0),
            }),
        }
    }

    /// Locks the model store, degrading a poisoned lock (a peer thread
    /// panicked while serving) into a typed [`ModelError`] instead of
    /// cascading the panic into every subsequent caller.
    #[allow(clippy::type_complexity)]
    fn lock_models(
        &self,
    ) -> Result<MutexGuard<'_, HashMap<ModelHandle, Box<dyn BlackBoxModel>>>, ModelError> {
        self.inner.models.lock().map_err(|_| {
            ModelError::new("cloud service model store poisoned by a panicked peer thread")
        })
    }

    fn lock_faults(&self) -> Result<MutexGuard<'_, Option<FaultInjector>>, ModelError> {
        self.inner.faults.lock().map_err(|_| {
            ModelError::new("cloud service fault injector poisoned by a panicked peer thread")
        })
    }

    /// Installs (or replaces) a fault-injection schedule. Per-key attempt
    /// counters start fresh.
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        self.install_fault_plan_with_clock(plan, None);
    }

    /// [`Self::install_fault_plan`] with a shared [`VirtualClock`]: the
    /// service advances it by `base_latency_nanos` per request (plus
    /// `slow_latency_nanos` on slow responses), simulating latency on the
    /// same timeline the client's deadlines and backoff run on.
    pub fn install_fault_plan_with_clock(&self, plan: FaultPlan, clock: Option<VirtualClock>) {
        if let Ok(mut faults) = self.lock_faults() {
            *faults = Some(FaultInjector {
                plan,
                clock,
                attempts: HashMap::new(),
                stats: FaultStats::default(),
            });
        }
    }

    /// Removes the installed fault plan; subsequent requests serve cleanly.
    pub fn clear_fault_plan(&self) {
        if let Ok(mut faults) = self.lock_faults() {
            *faults = None;
        }
    }

    /// Totals of injected faults since the plan was installed.
    pub fn fault_stats(&self) -> FaultStats {
        self.lock_faults()
            .ok()
            .and_then(|f| f.as_ref().map(|i| i.stats))
            .unwrap_or_default()
    }

    /// "Uploads" training data, runs a server-side AutoML search and deploys
    /// the resulting model. Only the handle is returned — the learning
    /// algorithm and feature map stay inside the service, as with Google
    /// AutoML Tables.
    pub fn train_and_deploy(
        &self,
        train: &DataFrame,
        seed: u64,
    ) -> Result<ModelHandle, ModelError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = auto_sklearn_like(train, 6, &mut rng)?;
        let handle = ModelHandle(self.inner.next_handle.fetch_add(1, Ordering::Relaxed));
        self.lock_models()?.insert(handle, model);
        Ok(handle)
    }

    /// Runs the installed fault schedule for one request. Returns an error
    /// for fail-fast faults, otherwise the decided response mutation as
    /// `(kind, request key, attempt, plan seed)`.
    #[allow(clippy::type_complexity)]
    fn injected_fault(
        &self,
        data: &DataFrame,
    ) -> Result<Option<(FaultKind, u64, u32, u64)>, ModelError> {
        let mut guard = self.lock_faults()?;
        let Some(injector) = guard.as_mut() else {
            return Ok(None);
        };
        let key = frame_content_key(data);
        let attempt_slot = injector.attempts.entry(key).or_insert(0);
        let attempt = *attempt_slot;
        *attempt_slot += 1;
        let fault = injector.plan.decide(key, attempt);
        if let Some(clock) = &injector.clock {
            let mut latency = injector.plan.base_latency_nanos;
            if fault == Some(FaultKind::Slow) {
                latency += injector.plan.slow_latency_nanos;
            }
            clock.advance(latency);
        }
        match fault {
            None => {
                injector.stats.clean += 1;
                Ok(None)
            }
            Some(FaultKind::Transient) => {
                injector.stats.transient += 1;
                Err(ModelError::transient(
                    "injected fault: transient service failure (503)",
                ))
            }
            Some(FaultKind::RateLimited) => {
                injector.stats.rate_limited += 1;
                Err(ModelError::rate_limited(
                    "injected fault: prediction quota exceeded (429)",
                ))
            }
            Some(kind @ FaultKind::Truncated) => {
                injector.stats.truncated += 1;
                Ok(Some((kind, key, attempt, injector.plan.seed)))
            }
            Some(kind @ FaultKind::Corrupted) => {
                injector.stats.corrupted += 1;
                Ok(Some((kind, key, attempt, injector.plan.seed)))
            }
            Some(kind @ FaultKind::Slow) => {
                injector.stats.slow += 1;
                Ok(Some((kind, key, attempt, injector.plan.seed)))
            }
        }
    }

    /// Applies a response-mutating fault to an otherwise correct response.
    fn mutate_response(
        plan_seed: u64,
        kind: FaultKind,
        key: u64,
        attempt: u32,
        proba: DenseMatrix,
    ) -> DenseMatrix {
        match kind {
            FaultKind::Slow => proba,
            FaultKind::Truncated => {
                // Drop the tail third (at least one row; possibly all of a
                // one-row response).
                let n = proba.rows();
                let keep = n - (n / 3).max(1).min(n);
                proba.select_rows(&(0..keep).collect::<Vec<_>>())
            }
            FaultKind::Corrupted => {
                let h = FaultPlan::mix(
                    plan_seed ^ key ^ u64::from(attempt).wrapping_mul(0xC0FF_EE00_DEAD_BEEF),
                );
                let mut bad = proba;
                if bad.rows() == 0 {
                    return bad;
                }
                let row = (h as usize) % bad.rows();
                if h & 1 == 0 {
                    // Non-finite probability.
                    bad.set(row, 0, f64::NAN);
                } else {
                    // Non-normalized row: scale it well past the tolerance.
                    for c in 0..bad.cols() {
                        let v = bad.get(row, c);
                        bad.set(row, c, v * 3.0 + 0.5);
                    }
                }
                bad
            }
            _ => proba,
        }
    }

    /// Scores a batch of rows against a deployed model, subject to the
    /// installed [`FaultPlan`] (if any).
    pub fn batch_predict(
        &self,
        handle: ModelHandle,
        data: &DataFrame,
    ) -> Result<DenseMatrix, ModelError> {
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        self.inner
            .rows_scored
            .fetch_add(data.n_rows() as u64, Ordering::Relaxed);
        let fault = self.injected_fault(data)?;
        let proba = {
            let models = self.lock_models()?;
            let model = models
                .get(&handle)
                .ok_or_else(|| ModelError::invalid_input("unknown model handle"))?;
            model.predict_proba(data)
        };
        match fault {
            None => Ok(proba),
            Some((kind, key, attempt, plan_seed)) => {
                Ok(Self::mutate_response(plan_seed, kind, key, attempt, proba))
            }
        }
    }

    /// Number of classes of a deployed model.
    pub fn model_classes(&self, handle: ModelHandle) -> Result<usize, ModelError> {
        let models = self.lock_models()?;
        models
            .get(&handle)
            .map(|m| m.n_classes())
            .ok_or_else(|| ModelError::invalid_input("unknown model handle"))
    }

    /// Total prediction requests served (the "billing meter").
    pub fn requests_served(&self) -> u64 {
        self.inner.requests.load(Ordering::Relaxed)
    }

    /// Total rows scored across all requests.
    pub fn rows_scored(&self) -> u64 {
        self.inner.rows_scored.load(Ordering::Relaxed)
    }

    /// Adapts a deployed model to the [`BlackBoxModel`] trait.
    pub fn remote_model(&self, handle: ModelHandle) -> Result<RemoteModel, ModelError> {
        let n_classes = self.model_classes(handle)?;
        Ok(RemoteModel {
            service: self.clone(),
            handle,
            n_classes,
        })
    }
}

/// A client-side view of a cloud-hosted model. Every `predict_proba` call
/// is a metered request against the service.
pub struct RemoteModel {
    service: CloudModelService,
    handle: ModelHandle,
    n_classes: usize,
}

impl BlackBoxModel for RemoteModel {
    /// Infallible trait entry point; panics when the endpoint fails or
    /// violates the probability contract. Fault-aware callers use
    /// [`BlackBoxModel::try_predict_proba`] (or wrap the model in a
    /// [`ResilientModel`](crate::resilience::ResilientModel)).
    fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
        self.try_predict_proba(data)
            .unwrap_or_else(|e| panic!("remote prediction failed: {e}"))
    }

    /// Requests predictions and enforces the probability contract at the
    /// trust boundary: a truncated or corrupted response surfaces as a
    /// typed, retryable [`ModelError`] instead of flowing downstream into
    /// `prediction_statistics`.
    fn try_predict_proba(&self, data: &DataFrame) -> Result<DenseMatrix, ModelError> {
        let proba = self.service.batch_predict(self.handle, data)?;
        validate_probability_matrix(&proba, data.n_rows(), self.n_classes)?;
        Ok(proba)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &str {
        "cloud-automl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelErrorKind;
    use lvp_dataframe::toy_frame;

    #[test]
    fn deploy_and_predict_round_trip() {
        let service = CloudModelService::new();
        let df = toy_frame(60);
        let handle = service.train_and_deploy(&df, 1).unwrap();
        let p = service.batch_predict(handle, &df).unwrap();
        assert_eq!(p.rows(), 60);
        assert_eq!(service.requests_served(), 1);
        assert_eq!(service.rows_scored(), 60);
    }

    #[test]
    fn unknown_handle_is_rejected() {
        let service = CloudModelService::new();
        let df = toy_frame(5);
        let err = service.batch_predict(ModelHandle(99), &df).unwrap_err();
        assert_eq!(err.kind, ModelErrorKind::InvalidInput);
        assert!(!err.is_retryable());
        assert!(service.model_classes(ModelHandle(99)).is_err());
    }

    #[test]
    fn remote_model_meters_requests() {
        let service = CloudModelService::new();
        let df = toy_frame(30);
        let handle = service.train_and_deploy(&df, 2).unwrap();
        let remote = service.remote_model(handle).unwrap();
        let _ = remote.predict_proba(&df);
        let _ = remote.predict_proba(&df);
        assert_eq!(service.requests_served(), 2);
        assert_eq!(remote.name(), "cloud-automl");
        assert_eq!(remote.n_classes(), 2);
    }

    #[test]
    fn handles_are_unique() {
        let service = CloudModelService::new();
        let df = toy_frame(30);
        let h1 = service.train_and_deploy(&df, 3).unwrap();
        let h2 = service.train_and_deploy(&df, 4).unwrap();
        assert_ne!(h1, h2);
    }

    fn faulty_service() -> (CloudModelService, ModelHandle, DataFrame) {
        let service = CloudModelService::new();
        let df = toy_frame(50);
        let handle = service.train_and_deploy(&df, 5).unwrap();
        (service, handle, df)
    }

    #[test]
    fn transient_faults_follow_the_schedule_and_eventually_clear() {
        let (service, handle, df) = faulty_service();
        let mut plan = FaultPlan::new(99);
        plan.transient = 1.0;
        plan.max_faults_per_key = 3;
        service.install_fault_plan(plan);
        for _ in 0..3 {
            let err = service.batch_predict(handle, &df).unwrap_err();
            assert_eq!(err.kind, ModelErrorKind::Transient, "{err}");
        }
        // Attempt 3 exceeds max_faults_per_key → served cleanly.
        assert!(service.batch_predict(handle, &df).is_ok());
        let stats = service.fault_stats();
        assert_eq!(stats.transient, 3);
        assert_eq!(stats.clean, 1);
    }

    #[test]
    fn fault_schedule_is_reproducible() {
        let run = || {
            let (service, handle, df) = faulty_service();
            let mut plan = FaultPlan::new(1234);
            plan.transient = 0.3;
            plan.rate_limited = 0.1;
            plan.corrupted = 0.2;
            plan.truncated = 0.1;
            service.install_fault_plan(plan);
            let outcomes: Vec<String> = (0..20)
                .map(|_| match service.batch_predict(handle, &df) {
                    Ok(p) => format!("ok:{}", p.rows()),
                    Err(e) => format!("err:{:?}", e.kind),
                })
                .collect();
            (outcomes, service.fault_stats())
        };
        let (a, stats_a) = run();
        let (b, stats_b) = run();
        assert_eq!(a, b, "same seed, same content → same fault schedule");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.total_faults() > 0, "{stats_a:?}");
    }

    #[test]
    fn corrupted_and_truncated_responses_are_caught_by_the_remote_boundary() {
        let (service, handle, df) = faulty_service();
        let remote = service.remote_model(handle).unwrap();
        let mut plan = FaultPlan::new(7);
        plan.corrupted = 1.0;
        service.install_fault_plan(plan);
        let err = remote.try_predict_proba(&df).unwrap_err();
        assert_eq!(err.kind, ModelErrorKind::InvalidResponse, "{err}");
        let mut plan = FaultPlan::new(7);
        plan.truncated = 1.0;
        service.install_fault_plan(plan);
        let err = remote.try_predict_proba(&df).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
    }

    #[test]
    fn poisoned_keys_fail_on_every_attempt() {
        let (service, handle, df) = faulty_service();
        let mut plan = FaultPlan::new(11);
        plan.poisoned = 1.0; // every key poisoned
        plan.max_faults_per_key = 0; // irrelevant for poisoned keys
        service.install_fault_plan(plan);
        let remote = service.remote_model(handle).unwrap();
        for _ in 0..6 {
            assert!(remote.try_predict_proba(&df).is_err());
        }
    }

    #[test]
    fn slow_faults_advance_the_shared_virtual_clock() {
        let (service, handle, df) = faulty_service();
        let clock = VirtualClock::new();
        let mut plan = FaultPlan::new(3);
        plan.slow = 1.0;
        plan.base_latency_nanos = 1_000;
        plan.slow_latency_nanos = 9_000;
        service.install_fault_plan_with_clock(plan, Some(clock.clone()));
        assert!(service.batch_predict(handle, &df).is_ok());
        assert_eq!(clock.now_nanos(), 10_000);
        assert_eq!(service.fault_stats().slow, 1);
    }

    #[test]
    fn clearing_the_plan_restores_clean_serving() {
        let (service, handle, df) = faulty_service();
        let mut plan = FaultPlan::new(13);
        plan.transient = 1.0;
        service.install_fault_plan(plan);
        assert!(service.batch_predict(handle, &df).is_err());
        service.clear_fault_plan();
        assert!(service.batch_predict(handle, &df).is_ok());
        assert_eq!(service.fault_stats(), FaultStats::default());
    }
}
