//! From-scratch classifier and regressor implementations, exposed to the
//! rest of the workspace strictly as black boxes.
//!
//! The paper treats the deployed model as a black box: an executable that
//! maps raw relational tuples to class probabilities through an *unknown*
//! feature map φ and prediction function f. This crate enforces that
//! contract in the type system: downstream crates (notably `lvp-core`) only
//! ever see the [`BlackBoxModel`] trait, which exposes `predict_proba` on a
//! raw [`DataFrame`] and nothing else.
//!
//! Model families (matching §6 "Models" of the paper):
//!
//! * [`linear::LogisticRegression`] (`lr`) — multinomial logistic regression
//!   trained with minibatch SGD, grid-searched over regularization and
//!   learning rate with k-fold cross-validation,
//! * [`mlp::NeuralNet`] (`dnn`) — two ReLU hidden layers + softmax output,
//!   trained with Adam, grid-searched over layer sizes,
//! * [`gbdt::GbdtClassifier`] (`xgb`) — second-order (Newton) gradient
//!   boosted regression trees on logistic loss,
//! * [`convnet::ConvNet`] (`conv`) — conv(32)→conv(64)→maxpool→dense(128)
//!   with ReLU and dropout for the image tasks,
//! * [`forest::RandomForestRegressor`] — the meta-model of the paper's
//!   performance predictor,
//! * [`automl`] — three AutoML-style searchers producing opaque pipelines,
//! * [`cloud`] — a simulated cloud prediction service (Google AutoML Tables
//!   stand-in) that only exposes batched scoring over a handle, with a
//!   deterministic seed-driven fault-injection plan for chaos testing,
//! * [`resilience`] — a fault-tolerant [`resilience::ResilientModel`]
//!   wrapper (retry with seeded-jitter backoff, circuit breaker, request
//!   chunking, response validation) for flaky remote endpoints.
//!
//! [`DataFrame`]: lvp_dataframe::DataFrame

pub mod automl;
pub mod calibration;
pub mod cloud;
pub mod convnet;
pub mod cv;
pub mod forest;
pub mod gbdt;
pub mod linear;
pub mod mlp;
pub mod naive_bayes;
pub mod resilience;
pub mod tree;

mod opt;
mod pipeline;

pub use resilience::{
    mix64, validate_probability_matrix, BreakerConfig, CircuitState, ResilienceConfig,
    ResilientModel, VirtualClock,
};

pub use pipeline::{
    train_convnet, train_gbdt, train_logistic_regression, train_model, train_model_quick,
    train_neural_net, ModelKind, PipelineModel, CV_FOLDS,
};

use lvp_dataframe::DataFrame;
use lvp_linalg::{CsrMatrix, DenseMatrix};

/// Classification of a [`ModelError`], used by the resilience layer to
/// decide whether an operation is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelErrorKind {
    /// Transient infrastructure failure (timeout, dropped connection, 5xx);
    /// the same request may well succeed on a retry.
    Transient,
    /// The service rejected the request to shed load (rate limit / quota);
    /// retryable after backing off.
    RateLimited,
    /// The service answered, but the response violates the prediction
    /// contract (wrong shape, non-finite or non-normalized probability
    /// rows). Retryable — a healthy replica may answer correctly.
    InvalidResponse,
    /// The request itself is invalid (unknown handle, malformed frame);
    /// retrying the identical request cannot succeed.
    InvalidInput,
    /// Unclassified failure (training errors, internal bugs); treated as
    /// permanent.
    #[default]
    Internal,
}

impl ModelErrorKind {
    /// Whether an error of this kind may succeed when the identical
    /// request is retried.
    pub fn is_retryable(self) -> bool {
        matches!(
            self,
            ModelErrorKind::Transient
                | ModelErrorKind::RateLimited
                | ModelErrorKind::InvalidResponse
        )
    }
}

/// Error produced when a model cannot be trained or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelError {
    /// Human-readable description.
    pub message: String,
    /// Failure class (drives the resilience layer's retry decision).
    pub kind: ModelErrorKind,
}

impl ModelError {
    /// Creates an unclassified (permanent) error from any displayable
    /// message.
    pub fn new(message: impl Into<String>) -> Self {
        Self::with_kind(message, ModelErrorKind::Internal)
    }

    /// Creates an error with an explicit failure class.
    pub fn with_kind(message: impl Into<String>, kind: ModelErrorKind) -> Self {
        Self {
            message: message.into(),
            kind,
        }
    }

    /// A retryable transient-infrastructure error.
    pub fn transient(message: impl Into<String>) -> Self {
        Self::with_kind(message, ModelErrorKind::Transient)
    }

    /// A retryable rate-limit / quota rejection.
    pub fn rate_limited(message: impl Into<String>) -> Self {
        Self::with_kind(message, ModelErrorKind::RateLimited)
    }

    /// A contract-violating response (wrong shape or corrupt probabilities).
    pub fn invalid_response(message: impl Into<String>) -> Self {
        Self::with_kind(message, ModelErrorKind::InvalidResponse)
    }

    /// A permanently invalid request.
    pub fn invalid_input(message: impl Into<String>) -> Self {
        Self::with_kind(message, ModelErrorKind::InvalidInput)
    }

    /// Whether the identical request may succeed on a retry.
    pub fn is_retryable(&self) -> bool {
        self.kind.is_retryable()
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model error: {}", self.message)
    }
}

impl std::error::Error for ModelError {}

/// A classifier over featurized data: maps a sparse feature matrix to an
/// `n × m` matrix of class probabilities.
pub trait Classifier: Send + Sync {
    /// Predicted class-probability matrix, rows summing to 1.
    fn predict_proba(&self, x: &CsrMatrix) -> DenseMatrix;
    /// Number of classes `m`.
    fn n_classes(&self) -> usize;
}

/// A regressor over dense feature vectors.
pub trait Regressor: Send + Sync {
    /// Predicted target for each row of `x`.
    fn predict(&self, x: &DenseMatrix) -> Vec<f64>;
}

/// The black box contract of the paper (§2): raw tuples in, class
/// probabilities out, nothing else observable.
///
/// Implementations bundle a private feature map and a private prediction
/// function; neither is reachable through this trait.
pub trait BlackBoxModel: Send + Sync {
    /// Class probabilities for a batch of raw tuples (`n × m`).
    fn predict_proba(&self, data: &DataFrame) -> DenseMatrix;
    /// Fallible variant of [`Self::predict_proba`] for serving paths that
    /// must survive remote failures. Local in-process models can never fail
    /// a prediction, so the default simply wraps [`Self::predict_proba`];
    /// remote adapters ([`cloud::RemoteModel`],
    /// [`resilience::ResilientModel`]) override it to surface transport
    /// errors and contract violations as typed [`ModelError`]s instead of
    /// panicking.
    fn try_predict_proba(&self, data: &DataFrame) -> Result<DenseMatrix, ModelError> {
        Ok(self.predict_proba(data))
    }
    /// Number of classes `m`.
    fn n_classes(&self) -> usize;
    /// Short display name (e.g. `"lr"`).
    fn name(&self) -> &str;
    /// Registers this model's serving metrics (call counts, latency, cache
    /// counters) with `registry`. Models without internal state to report
    /// keep the default no-op. Call before sharing the model (`Arc::from`);
    /// recording itself is `&self` and thread-safe.
    fn attach_telemetry(&mut self, _registry: &lvp_telemetry::Registry) {}
    /// Flushes any internally buffered metric totals (e.g. encoding-cache
    /// counters) into the attached registry. No-op by default and without
    /// an attached registry; safe to call at any frequency.
    fn publish_telemetry(&self) {}
}

/// Accuracy of a black box model on labeled data (harness-side helper; the
/// performance predictor itself never has labels for serving data).
pub fn model_accuracy(model: &dyn BlackBoxModel, df: &DataFrame) -> f64 {
    let proba = model.predict_proba(df);
    lvp_stats::accuracy(&proba.argmax_rows(), &df.labels_usize())
}

/// ROC AUC of a binary black box model on labeled data.
///
/// The model must output exactly two probability columns; anything else is
/// rejected rather than silently scoring an arbitrary column.
pub fn model_auc(model: &dyn BlackBoxModel, df: &DataFrame) -> Result<f64, ModelError> {
    let proba = model.predict_proba(df);
    if proba.cols() != 2 {
        return Err(ModelError::new(format!(
            "AUC requires a binary model with 2 probability columns, got {}",
            proba.cols()
        )));
    }
    let scores = proba.column(1);
    let labels: Vec<bool> = df.labels().iter().map(|&l| l == 1).collect();
    Ok(lvp_stats::auc_binary(&scores, &labels))
}

/// One-hot encodes integer labels as an `n × m` indicator matrix.
pub fn one_hot_labels(labels: &[u32], n_classes: usize) -> DenseMatrix {
    let mut y = DenseMatrix::zeros(labels.len(), n_classes);
    for (i, &l) in labels.iter().enumerate() {
        y.set(i, l as usize, 1.0);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_hot_labels_sets_indicators() {
        let y = one_hot_labels(&[0, 2, 1], 3);
        assert_eq!(y.row(0), &[1.0, 0.0, 0.0]);
        assert_eq!(y.row(1), &[0.0, 0.0, 1.0]);
        assert_eq!(y.row(2), &[0.0, 1.0, 0.0]);
    }
}
