//! Depth-limited regression trees with second-order (Newton) split gains.
//!
//! One tree type serves three consumers:
//!
//! * [`crate::gbdt`] fits trees to per-example gradients/hessians of the
//!   logistic loss (XGBoost-style Newton boosting),
//! * [`crate::forest`] fits trees to raw targets (gradient `-y`, hessian 1
//!   makes the Newton leaf value the plain mean and the gain the classical
//!   variance reduction),
//! * the validator's gradient-boosted classifier in `lvp-core`.

use lvp_linalg::{CsrMatrix, DenseMatrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Column-major dense view of a feature matrix, built once per training run
/// so split finding can scan contiguous feature values.
#[derive(Debug, Clone)]
pub struct DenseColumns {
    n_rows: usize,
    cols: Vec<Vec<f64>>,
}

impl DenseColumns {
    /// Materializes all columns of a CSR matrix (implicit zeros included).
    #[allow(clippy::needless_range_loop)] // parallel row/col index bookkeeping
    pub fn from_csr(x: &CsrMatrix) -> Self {
        let mut cols = vec![vec![0.0; x.rows()]; x.cols()];
        for r in 0..x.rows() {
            let (idx, vals) = x.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                cols[c as usize][r] = v;
            }
        }
        Self {
            n_rows: x.rows(),
            cols,
        }
    }

    /// Column-major view of a dense matrix.
    pub fn from_dense(x: &DenseMatrix) -> Self {
        let cols = (0..x.cols()).map(|c| x.column(c)).collect();
        Self {
            n_rows: x.rows(),
            cols,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Value of feature `c` for row `r`.
    #[inline]
    pub fn value(&self, r: usize, c: usize) -> f64 {
        self.cols[c][r]
    }
}

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum number of examples in each child of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (XGBoost's λ).
    pub lambda: f64,
    /// Fraction of features considered at each split (`(0, 1]`).
    pub colsample: f64,
    /// Minimum gain required to accept a split (XGBoost's γ).
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_leaf: 2,
            lambda: 1.0,
            colsample: 1.0,
            min_gain: 1e-9,
        }
    }
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree to per-example gradients and hessians over the rows in
    /// `rows`. The returned tree predicts the Newton step `-G/(H+λ)` in each
    /// leaf.
    pub fn fit(
        columns: &DenseColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(grad.len(), columns.n_rows());
        assert_eq!(hess.len(), columns.n_rows());
        let mut tree = Self { nodes: Vec::new() };
        let mut rows = rows.to_vec();
        tree.build(columns, grad, hess, &mut rows, 0, params, rng);
        tree
    }

    fn leaf_value(grad_sum: f64, hess_sum: f64, lambda: f64) -> f64 {
        -grad_sum / (hess_sum + lambda)
    }

    /// Recursively grows the tree; returns the created node's index.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        columns: &DenseColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> usize {
        let g_total: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_total: f64 = rows.iter().map(|&r| hess[r]).sum();

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                value: Self::leaf_value(g_total, h_total, params.lambda),
            });
            nodes.len() - 1
        };

        if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }

        let Some(split) = self.find_best_split(columns, grad, hess, rows, params, rng) else {
            return make_leaf(&mut self.nodes);
        };

        // Partition rows in place around the winning split.
        let mid = partition_rows(columns, rows, split.feature, split.threshold);
        if mid == 0 || mid == rows.len() {
            // Cannot happen for thresholds validated by find_best_split,
            // but guard against pathological float behaviour.
            return make_leaf(&mut self.nodes);
        }

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder, patched below
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.build(columns, grad, hess, left_rows, depth + 1, params, rng);
        let right = self.build(columns, grad, hess, right_rows, depth + 1, params, rng);
        self.nodes[node_idx] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        node_idx
    }

    fn find_best_split(
        &self,
        columns: &DenseColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Option<SplitCandidate> {
        let n_features = columns.n_cols();
        let mut features: Vec<usize> = (0..n_features).collect();
        if params.colsample < 1.0 {
            features.shuffle(rng);
            let keep = ((n_features as f64 * params.colsample).ceil() as usize).max(1);
            features.truncate(keep);
        }

        let g_total: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_total: f64 = rows.iter().map(|&r| hess[r]).sum();
        let lambda = params.lambda;
        let base_score = g_total * g_total / (h_total + lambda);

        let mut best: Option<SplitCandidate> = None;
        let mut order: Vec<usize> = Vec::with_capacity(rows.len());
        for &f in &features {
            order.clear();
            order.extend_from_slice(rows);
            order.sort_unstable_by(|&a, &b| {
                columns
                    .value(a, f)
                    .partial_cmp(&columns.value(b, f))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            for i in 0..order.len() - 1 {
                let r = order[i];
                g_left += grad[r];
                h_left += hess[r];
                let v = columns.value(r, f);
                let v_next = columns.value(order[i + 1], f);
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let n_left = i + 1;
                let n_right = order.len() - n_left;
                if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                    continue;
                }
                let g_right = g_total - g_left;
                let h_right = h_total - h_left;
                let gain = 0.5
                    * (g_left * g_left / (h_left + lambda)
                        + g_right * g_right / (h_right + lambda)
                        - base_score);
                // The midpoint of two adjacent floats can round up to
                // `v_next`, in which case `value <= threshold` fails to
                // separate them; require a strictly separating threshold.
                let threshold = 0.5 * (v + v_next);
                if !threshold.is_finite() || threshold < v || threshold >= v_next {
                    continue;
                }
                if gain > params.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(SplitCandidate {
                        feature: f,
                        threshold,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Predicts the tree output for one CSR row.
    pub fn predict_row(&self, indices: &[u32], values: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = match indices.binary_search(&(*feature as u32)) {
                        Ok(pos) => values[pos],
                        Err(_) => 0.0,
                    };
                    node = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predicts the tree output for one dense row.
    pub fn predict_dense_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics / tests).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug, Clone)]
struct SplitCandidate {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Partitions `rows` so rows with `value <= threshold` come first; returns
/// the boundary index.
fn partition_rows(
    columns: &DenseColumns,
    rows: &mut [usize],
    feature: usize,
    threshold: f64,
) -> usize {
    let mut i = 0usize;
    let mut j = rows.len();
    while i < j {
        if columns.value(rows[i], feature) <= threshold {
            i += 1;
        } else {
            j -= 1;
            rows.swap(i, j);
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fits a plain regression tree to targets by the grad=-y, hess=1 trick.
    fn fit_regression(
        columns: &DenseColumns,
        y: &[f64],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> RegressionTree {
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; y.len()];
        let rows: Vec<usize> = (0..y.len()).collect();
        RegressionTree::fit(columns, &grad, &hess, &rows, params, rng)
    }

    fn step_data() -> (DenseColumns, Vec<f64>) {
        // y = 10 if x > 0.5 else 0.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..40)
            .map(|i| if i as f64 / 39.0 > 0.5 { 10.0 } else { 0.0 })
            .collect();
        (DenseColumns::from_dense(&x), y)
    }

    #[test]
    fn learns_a_step_function() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(1);
        let params = TreeParams {
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &y, &params, &mut rng);
        for (i, &target) in y.iter().enumerate() {
            let pred = tree.predict_dense_row(&[i as f64 / 39.0]);
            assert!((pred - target).abs() < 1e-9, "row {i}: {pred} vs {target}");
        }
    }

    #[test]
    fn depth_zero_is_single_leaf_mean() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(2);
        let params = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &y, &params, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict_dense_row(&[0.3]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let cols = DenseColumns::from_dense(&x);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = fit_regression(
            &cols,
            &[1.0, 2.0, 3.0, 4.0],
            &TreeParams::default(),
            &mut rng,
        );
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(4);
        let params = TreeParams {
            min_samples_leaf: 40, // cannot split at all
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &y, &params, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let cols = DenseColumns::from_dense(&x);
        let mut rng = StdRng::seed_from_u64(5);
        let params = TreeParams {
            max_depth: 0,
            lambda: 2.0,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &[3.0, 3.0], &params, &mut rng);
        // leaf = sum(y) / (n + lambda) = 6 / 4
        assert!((tree.predict_dense_row(&[0.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_prediction_agree() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(6);
        let tree = fit_regression(&cols, &y, &TreeParams::default(), &mut rng);
        for i in 0..40 {
            let v = i as f64 / 39.0;
            let dense = tree.predict_dense_row(&[v]);
            let sparse = if v == 0.0 {
                tree.predict_row(&[], &[])
            } else {
                tree.predict_row(&[0], &[v])
            };
            assert_eq!(dense, sparse);
        }
    }

    #[test]
    fn two_feature_interaction() {
        // y = 5 only in the quadrant x0>0.5 && x1>0.5; needs depth 2.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64 / 9.0, j as f64 / 9.0);
                rows.push(vec![a, b]);
                y.push(if a > 0.5 && b > 0.5 { 5.0 } else { 0.0 });
            }
        }
        let cols = DenseColumns::from_dense(&DenseMatrix::from_rows(&rows).unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let params = TreeParams {
            max_depth: 3,
            lambda: 0.0,
            min_samples_leaf: 1,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &y, &params, &mut rng);
        assert!((tree.predict_dense_row(&[0.9, 0.9]) - 5.0).abs() < 1e-9);
        assert!(tree.predict_dense_row(&[0.9, 0.1]).abs() < 1e-9);
    }

    #[test]
    fn dense_columns_from_csr_matches() {
        let d = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let csr = CsrMatrix::from_dense(&d);
        let cols = DenseColumns::from_csr(&csr);
        assert_eq!(cols.value(0, 1), 2.0);
        assert_eq!(cols.value(1, 0), 3.0);
        assert_eq!(cols.value(0, 0), 0.0);
    }
}
