//! Depth-limited regression trees with second-order (Newton) split gains.
//!
//! One tree type serves three consumers:
//!
//! * [`crate::gbdt`] fits trees to per-example gradients/hessians of the
//!   logistic loss (XGBoost-style Newton boosting),
//! * [`crate::forest`] fits trees to raw targets (gradient `-y`, hessian 1
//!   makes the Newton leaf value the plain mean and the gain the classical
//!   variance reduction),
//! * the validator's gradient-boosted classifier in `lvp-core`.
//!
//! Two split finders are available (see [`SplitMethod`]):
//!
//! * **Exact** re-sorts every feature column at every node and scans all
//!   boundaries between adjacent distinct values — the oracle.
//! * **Histogram** pre-bins every column once per training run into at most
//!   [`MAX_HISTOGRAM_BINS`] quantile-spaced bins ([`BinnedColumns`]),
//!   accumulates per-node (grad, hess, count) histograms in a single pass
//!   over the node's rows, and scans bin boundaries. After a split, only
//!   the smaller child's histogram is accumulated from rows; the sibling's
//!   is derived by subtracting it from the parent's (the subtract trick).
//!
//! Missing values (NaN) follow one deterministic rule everywhere: they sort
//! after every finite value during split finding, and they route **right**
//! both when partitioning training rows and at prediction time (`v <=
//! threshold` is false for NaN). The histogram path reserves a dedicated
//! missing bin per feature for the same purpose.

use lvp_linalg::{CsrMatrix, DenseMatrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// How split candidates are enumerated during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitMethod {
    /// Re-sort each feature column at every node and consider every
    /// boundary between adjacent distinct values. Slowest, but exhaustive;
    /// kept as the oracle the histogram path is tested against.
    Exact,
    /// Quantile-binned histogram split finding with the subtract trick.
    /// Thresholds are restricted to bin boundaries (at most
    /// [`MAX_HISTOGRAM_BINS`] per feature), trading a bounded loss of split
    /// resolution for node costs that no longer pay a per-node sort.
    #[default]
    Histogram,
}

/// Hard cap on histogram bins per feature: bin indices are stored as `u8`,
/// leaving up to 255 finite bins (254 interior cuts) plus one dedicated
/// missing-value bin.
pub const MAX_HISTOGRAM_BINS: usize = 256;

/// Column-major dense view of a feature matrix, built once per training run
/// so split finding can scan contiguous feature values.
#[derive(Debug, Clone)]
pub struct DenseColumns {
    n_rows: usize,
    cols: Vec<Vec<f64>>,
}

impl DenseColumns {
    /// Materializes all columns of a CSR matrix (implicit zeros included).
    #[allow(clippy::needless_range_loop)] // parallel row/col index bookkeeping
    pub fn from_csr(x: &CsrMatrix) -> Self {
        let mut cols = vec![vec![0.0; x.rows()]; x.cols()];
        for r in 0..x.rows() {
            let (idx, vals) = x.row(r);
            for (&c, &v) in idx.iter().zip(vals) {
                cols[c as usize][r] = v;
            }
        }
        Self {
            n_rows: x.rows(),
            cols,
        }
    }

    /// Column-major view of a dense matrix.
    pub fn from_dense(x: &DenseMatrix) -> Self {
        let cols = (0..x.cols()).map(|c| x.column(c)).collect();
        Self {
            n_rows: x.rows(),
            cols,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Value of feature `c` for row `r`.
    #[inline]
    pub fn value(&self, r: usize, c: usize) -> f64 {
        self.cols[c][r]
    }
}

/// One feature of a [`BinnedColumns`]: per-row bin indices plus the cut
/// thresholds that separate the bins.
///
/// The bin of a finite value `v` is `cuts.partition_point(|&c| c < v)`, so
/// bin `b < cuts.len()` holds values in `(cuts[b-1], cuts[b]]` and bin
/// `cuts.len()` holds everything above the last cut. Because cuts are
/// strictly increasing this gives the invariant the split finder relies on:
///
/// > `v <= cuts[b]`  ⇔  `bin(v) <= b`  for every finite `v`.
///
/// NaN rows land in the dedicated missing bin `cuts.len() + 1`, which is
/// never on the left of any boundary — missing values always route right.
#[derive(Debug, Clone)]
struct BinnedFeature {
    /// Per-row bin index (missing values map to `cuts.len() + 1`).
    bins: Vec<u8>,
    /// Strictly increasing finite cut thresholds.
    cuts: Vec<f64>,
}

impl BinnedFeature {
    /// Finite bins plus the missing bin.
    fn n_bins(&self) -> usize {
        self.cuts.len() + 2
    }
}

/// Quantile-binned view of a feature matrix, built once per training run
/// for histogram split finding (see [`SplitMethod::Histogram`]).
#[derive(Debug, Clone)]
pub struct BinnedColumns {
    n_rows: usize,
    feats: Vec<BinnedFeature>,
    /// Start offset of each feature's bin range in a flat histogram.
    offsets: Vec<usize>,
    /// Total bin slots across all features (flat histogram length).
    total_bins: usize,
}

impl BinnedColumns {
    /// Bins every column of `columns` into at most `max_bins` bins
    /// (clamped to `[3, MAX_HISTOGRAM_BINS]`; one bin is always reserved
    /// for missing values).
    ///
    /// Cut thresholds are midpoints between adjacent distinct values: all
    /// of them when a column has few distinct values (in which case the
    /// candidate set matches the exact finder's), evenly spaced quantiles
    /// of the sorted column otherwise.
    pub fn from_columns(columns: &DenseColumns, max_bins: usize) -> Self {
        let max_bins = max_bins.clamp(3, MAX_HISTOGRAM_BINS);
        let max_cuts = max_bins - 2;
        let mut feats = Vec::with_capacity(columns.n_cols());
        let mut sorted: Vec<f64> = Vec::with_capacity(columns.n_rows());
        for col in &columns.cols {
            sorted.clear();
            sorted.extend(col.iter().copied().filter(|v| !v.is_nan()));
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaNs filtered out"));
            let cuts = quantile_cuts(&sorted, max_cuts);
            let missing = (cuts.len() + 1) as u8;
            let bins = col
                .iter()
                .map(|&v| {
                    if v.is_nan() {
                        missing
                    } else {
                        cuts.partition_point(|&c| c < v) as u8
                    }
                })
                .collect();
            feats.push(BinnedFeature { bins, cuts });
        }
        let mut offsets = Vec::with_capacity(feats.len());
        let mut total_bins = 0;
        for feat in &feats {
            offsets.push(total_bins);
            total_bins += feat.n_bins();
        }
        Self {
            n_rows: columns.n_rows(),
            feats,
            offsets,
            total_bins,
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of feature columns.
    pub fn n_cols(&self) -> usize {
        self.feats.len()
    }
}

/// Picks strictly increasing cut thresholds for one sorted (NaN-free)
/// column. When the column has at most `max_cuts` distinct-value
/// boundaries, every boundary midpoint becomes a cut (histogram splits
/// then coincide with exact splits); otherwise cuts sit at evenly spaced
/// quantile positions.
fn quantile_cuts(sorted: &[f64], max_cuts: usize) -> Vec<f64> {
    let n = sorted.len();
    if n < 2 || max_cuts == 0 {
        return Vec::new();
    }
    let mut cuts = Vec::new();
    let n_boundaries = (1..n).filter(|&i| sorted[i] > sorted[i - 1]).count();
    if n_boundaries <= max_cuts {
        for i in (1..n).filter(|&i| sorted[i] > sorted[i - 1]) {
            push_cut(&mut cuts, sorted[i - 1], sorted[i]);
        }
    } else {
        for j in 1..=max_cuts {
            let pos = (j * n / (max_cuts + 1)).clamp(1, n - 1);
            if sorted[pos] > sorted[pos - 1] {
                push_cut(&mut cuts, sorted[pos - 1], sorted[pos]);
            }
        }
    }
    cuts
}

/// Appends a threshold separating `a < b` if a valid one exists and it
/// keeps `cuts` strictly increasing.
fn push_cut(cuts: &mut Vec<f64>, a: f64, b: f64) {
    let threshold = {
        let mid = 0.5 * (a + b);
        // The midpoint of two adjacent floats can round up to `b` (or
        // overflow for huge magnitudes); fall back to `a` itself, which
        // always satisfies `a <= t < b`.
        if mid.is_finite() && mid >= a && mid < b {
            mid
        } else if a.is_finite() {
            a
        } else {
            // a == -inf: any finite threshold below `b` separates them.
            f64::MIN
        }
    };
    if threshold < b && cuts.last().is_none_or(|&last| threshold > last) {
        cuts.push(threshold);
    }
}

/// Split-finder input for one training run: either the raw column-major
/// values (exact enumeration) or the pre-binned view (histogram split
/// finding). Built once per `fit`, shared by every tree of an ensemble.
#[derive(Debug, Clone)]
pub enum TrainingColumns {
    /// Raw values for [`SplitMethod::Exact`].
    Exact(DenseColumns),
    /// Quantile-binned indices for [`SplitMethod::Histogram`].
    Binned(BinnedColumns),
}

impl TrainingColumns {
    /// Builds the split-finder input for `method` from a CSR matrix.
    pub fn from_csr(x: &CsrMatrix, method: SplitMethod) -> Self {
        Self::from_dense_columns(DenseColumns::from_csr(x), method)
    }

    /// Builds the split-finder input for `method` from a dense matrix.
    pub fn from_dense(x: &DenseMatrix, method: SplitMethod) -> Self {
        Self::from_dense_columns(DenseColumns::from_dense(x), method)
    }

    /// Wraps already-materialized columns, binning them if `method` is
    /// [`SplitMethod::Histogram`].
    pub fn from_dense_columns(columns: DenseColumns, method: SplitMethod) -> Self {
        match method {
            SplitMethod::Exact => Self::Exact(columns),
            SplitMethod::Histogram => {
                Self::Binned(BinnedColumns::from_columns(&columns, MAX_HISTOGRAM_BINS))
            }
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        match self {
            Self::Exact(c) => c.n_rows(),
            Self::Binned(b) => b.n_rows(),
        }
    }
}

/// Hyperparameters for a single regression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeParams {
    /// Maximum tree depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum number of examples in each child of a split.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (XGBoost's λ).
    pub lambda: f64,
    /// Fraction of features considered at each split (`(0, 1]`).
    pub colsample: f64,
    /// Minimum gain required to accept a split (XGBoost's γ).
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_leaf: 2,
            lambda: 1.0,
            colsample: 1.0,
            min_gain: 1e-9,
        }
    }
}

#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

/// Per-bin split statistics: gradient sum, hessian sum, row count.
#[derive(Debug, Clone, Copy, Default)]
struct BinStat {
    g: f64,
    h: f64,
    n: u32,
}

/// A node switches to the sparse (sort-based) accumulation tier when it
/// has at least this many times fewer rows than the feature has bins.
const SPARSE_NODE_FACTOR: usize = 4;

/// Reusable buffers for [`RegressionTree::find_best_split_binned_direct`],
/// allocated once per tree instead of once per node.
#[derive(Default)]
struct SplitScratch {
    /// Dense per-feature histogram, `n_bins` slots.
    dense: Vec<BinStat>,
    /// `(bin, row)` pairs for the sparse tier.
    pairs: Vec<(u8, usize)>,
    /// Aggregated non-empty `(bin, stat)` runs for the sparse tier.
    agg: Vec<(usize, BinStat)>,
}

/// Accumulates the flat (all features × all bins) histogram for `rows` in
/// one pass per feature over the node's rows.
fn accumulate_histogram(
    binned: &BinnedColumns,
    grad: &[f64],
    hess: &[f64],
    rows: &[usize],
) -> Vec<BinStat> {
    let mut hist = vec![BinStat::default(); binned.total_bins];
    for (feat, &offset) in binned.feats.iter().zip(&binned.offsets) {
        let slots = &mut hist[offset..offset + feat.n_bins()];
        for &r in rows {
            let slot = &mut slots[feat.bins[r] as usize];
            slot.g += grad[r];
            slot.h += hess[r];
            slot.n += 1;
        }
    }
    hist
}

/// In-place `parent -= child`: derives the sibling histogram from the
/// parent's without touching any rows (the subtract trick).
fn subtract_histogram(parent: &mut [BinStat], child: &[BinStat]) {
    for (p, c) in parent.iter_mut().zip(child) {
        p.g -= c.g;
        p.h -= c.h;
        p.n -= c.n;
    }
}

/// Winning histogram split: the boundary sits after `bin`, i.e. rows with
/// `bin_index <= bin` go left.
#[derive(Debug, Clone)]
struct BinnedSplit {
    feature: usize,
    bin: usize,
    threshold: f64,
    gain: f64,
}

impl RegressionTree {
    /// Fits a tree to per-example gradients and hessians over the rows in
    /// `rows`. The returned tree predicts the Newton step `-G/(H+λ)` in each
    /// leaf.
    ///
    /// Dispatches on the variant of `columns` — build it with the desired
    /// [`SplitMethod`] via [`TrainingColumns::from_csr`] /
    /// [`TrainingColumns::from_dense`].
    pub fn fit(
        columns: &TrainingColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        match columns {
            TrainingColumns::Exact(c) => Self::fit_exact(c, grad, hess, rows, params, rng),
            TrainingColumns::Binned(b) => Self::fit_binned(b, grad, hess, rows, params, rng),
        }
    }

    /// Fits with exact split enumeration over raw column values.
    pub fn fit_exact(
        columns: &DenseColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(grad.len(), columns.n_rows());
        assert_eq!(hess.len(), columns.n_rows());
        let mut tree = Self { nodes: Vec::new() };
        let mut rows = rows.to_vec();
        tree.build(columns, grad, hess, &mut rows, 0, params, rng);
        tree
    }

    /// Fits with histogram split finding over pre-binned columns.
    pub fn fit_binned(
        binned: &BinnedColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(grad.len(), binned.n_rows());
        assert_eq!(hess.len(), binned.n_rows());
        let mut tree = Self { nodes: Vec::new() };
        let mut rows = rows.to_vec();
        let mut scratch = SplitScratch::default();
        tree.build_binned(
            binned,
            grad,
            hess,
            &mut rows,
            0,
            params,
            rng,
            None,
            &mut scratch,
        );
        tree
    }

    fn leaf_value(grad_sum: f64, hess_sum: f64, lambda: f64) -> f64 {
        -grad_sum / (hess_sum + lambda)
    }

    /// Recursively grows the tree; returns the created node's index.
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        columns: &DenseColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> usize {
        let g_total: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_total: f64 = rows.iter().map(|&r| hess[r]).sum();

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                value: Self::leaf_value(g_total, h_total, params.lambda),
            });
            nodes.len() - 1
        };

        if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }

        let Some(split) = Self::find_best_split(columns, grad, hess, rows, params, rng) else {
            return make_leaf(&mut self.nodes);
        };

        // Partition rows in place around the winning split. NaN values
        // fail `value <= threshold` and therefore go right, matching
        // their position at the end of the split scan's sort order.
        let mid = partition_rows(columns, rows, split.feature, split.threshold);
        if mid == 0 || mid == rows.len() {
            // Cannot happen for thresholds validated by find_best_split,
            // but guard against pathological float behaviour.
            return make_leaf(&mut self.nodes);
        }

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder, patched below
        let (left_rows, right_rows) = rows.split_at_mut(mid);
        let left = self.build(columns, grad, hess, left_rows, depth + 1, params, rng);
        let right = self.build(columns, grad, hess, right_rows, depth + 1, params, rng);
        self.nodes[node_idx] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        node_idx
    }

    /// Recursively grows a histogram-trained tree.
    ///
    /// `hist` is this node's own flat (all features × all bins) histogram
    /// when the parent derived one via the subtract trick, or `None` when
    /// the node should accumulate its own statistics. Nodes large enough to
    /// amortize the O(`total_bins`) allocation and subtraction use the flat
    /// histogram; small nodes accumulate only the sampled features into
    /// `scratch`, skipping the flat path entirely (deep trees — e.g. the
    /// random forest's depth-12 defaults — spend most nodes down there).
    #[allow(clippy::too_many_arguments)]
    fn build_binned(
        &mut self,
        binned: &BinnedColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut impl Rng,
        hist: Option<Vec<BinStat>>,
        scratch: &mut SplitScratch,
    ) -> usize {
        let g_total: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_total: f64 = rows.iter().map(|&r| hess[r]).sum();

        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                value: Self::leaf_value(g_total, h_total, params.lambda),
            });
            nodes.len() - 1
        };

        if depth >= params.max_depth || rows.len() < 2 * params.min_samples_leaf {
            return make_leaf(&mut self.nodes);
        }

        let features = Self::sample_features(binned.n_cols(), params.colsample, rng);
        // The flat histogram pays off once the accumulation work over the
        // node's rows dwarfs the O(total_bins) zeroing + subtraction that
        // the flat path adds per node. `features.len()` is constant across
        // nodes (colsample is fixed), so this rule is monotone down the
        // tree: a child never re-enters the flat path after its parent
        // leaves it.
        let flat_pays = |n_rows: usize| n_rows * features.len() >= 2 * binned.total_bins;

        let hist = match hist {
            Some(h) => Some(h),
            None if flat_pays(rows.len()) => Some(accumulate_histogram(binned, grad, hess, rows)),
            None => None,
        };
        let split = match &hist {
            Some(h) => Self::find_best_split_binned(
                binned,
                h,
                &features,
                rows.len(),
                g_total,
                h_total,
                params,
            ),
            None => Self::find_best_split_binned_direct(
                binned, grad, hess, rows, &features, g_total, h_total, params, scratch,
            ),
        };
        let Some(split) = split else {
            return make_leaf(&mut self.nodes);
        };

        let feat = &binned.feats[split.feature];
        let mid = partition_rows_binned(feat, rows, split.bin);
        if mid == 0 || mid == rows.len() {
            // The histogram guarantees both sides are populated; guard
            // against pathological float behaviour anyway.
            return make_leaf(&mut self.nodes);
        }

        let node_idx = self.nodes.len();
        self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder, patched below
        let (left_rows, right_rows) = rows.split_at_mut(mid);

        // Subtract trick: accumulate only the smaller child's histogram
        // from rows; the larger child's follows from the parent's. Worth
        // the O(total_bins) subtraction only while the larger child will
        // itself stay on the flat path.
        let larger = left_rows.len().max(right_rows.len());
        let (left_hist, right_hist) = match hist {
            Some(h) if flat_pays(larger) => {
                let (small_rows, small_is_left) = if left_rows.len() <= right_rows.len() {
                    (&*left_rows, true)
                } else {
                    (&*right_rows, false)
                };
                let small_hist = accumulate_histogram(binned, grad, hess, small_rows);
                let mut large_hist = h;
                subtract_histogram(&mut large_hist, &small_hist);
                if small_is_left {
                    (Some(small_hist), Some(large_hist))
                } else {
                    (Some(large_hist), Some(small_hist))
                }
            }
            _ => (None, None),
        };

        let left = self.build_binned(
            binned,
            grad,
            hess,
            left_rows,
            depth + 1,
            params,
            rng,
            left_hist,
            scratch,
        );
        let right = self.build_binned(
            binned,
            grad,
            hess,
            right_rows,
            depth + 1,
            params,
            rng,
            right_hist,
            scratch,
        );
        self.nodes[node_idx] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        node_idx
    }

    /// Samples the feature subset considered for one split.
    fn sample_features(n_features: usize, colsample: f64, rng: &mut impl Rng) -> Vec<usize> {
        let mut features: Vec<usize> = (0..n_features).collect();
        if colsample < 1.0 {
            features.shuffle(rng);
            let keep = ((n_features as f64 * colsample).ceil() as usize).max(1);
            features.truncate(keep);
        }
        features
    }

    fn find_best_split(
        columns: &DenseColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> Option<SplitCandidate> {
        let features = Self::sample_features(columns.n_cols(), params.colsample, rng);

        let g_total: f64 = rows.iter().map(|&r| grad[r]).sum();
        let h_total: f64 = rows.iter().map(|&r| hess[r]).sum();
        let lambda = params.lambda;
        let base_score = g_total * g_total / (h_total + lambda);

        let mut best: Option<SplitCandidate> = None;
        let mut order: Vec<usize> = Vec::with_capacity(rows.len());
        for &f in &features {
            order.clear();
            order.extend_from_slice(rows);
            // Total order with NaN last: missing values form the final
            // run, so the prefix-sum scan evaluates exactly the "finite
            // left, missing right" partitions that `partition_rows` can
            // realize (NaN fails `v <= threshold` and goes right).
            order.sort_unstable_by(|&a, &b| {
                let (va, vb) = (columns.value(a, f), columns.value(b, f));
                match (va.is_nan(), vb.is_nan()) {
                    (false, false) => va.partial_cmp(&vb).expect("non-NaN values compare"),
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Greater,
                    (false, true) => std::cmp::Ordering::Less,
                }
            });
            let mut g_left = 0.0;
            let mut h_left = 0.0;
            for i in 0..order.len() - 1 {
                let r = order[i];
                g_left += grad[r];
                h_left += hess[r];
                let v = columns.value(r, f);
                if v.is_nan() {
                    // NaNs sort last: only missing values remain, and no
                    // boundary can separate missing from missing.
                    break;
                }
                let v_next = columns.value(order[i + 1], f);
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let n_left = i + 1;
                let n_right = order.len() - n_left;
                if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                    continue;
                }
                let threshold = if v_next.is_nan() {
                    // Boundary between the largest finite value and the
                    // missing run: `v` itself routes every finite value
                    // left and every NaN right.
                    v
                } else {
                    // The midpoint of two adjacent floats can round up to
                    // `v_next`, in which case `value <= threshold` fails to
                    // separate them; require a strictly separating
                    // threshold.
                    let t = 0.5 * (v + v_next);
                    if !t.is_finite() || t < v || t >= v_next {
                        continue;
                    }
                    t
                };
                let g_right = g_total - g_left;
                let h_right = h_total - h_left;
                let gain = 0.5
                    * (g_left * g_left / (h_left + lambda)
                        + g_right * g_right / (h_right + lambda)
                        - base_score);
                if gain > params.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(SplitCandidate {
                        feature: f,
                        threshold,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Scans one feature's bin boundaries, replacing `best` with any
    /// improving split. `bins` yields `(bin_index, stat)` pairs in
    /// ascending bin order (empty bins may be present or omitted — both
    /// describe the same partitions). The prefix over bins replaces the
    /// exact finder's prefix over sorted rows; the boundary after the last
    /// finite bin (threshold `f64::MAX`, or the last cut when the upper
    /// bins are empty) is the "finite left, missing right" split.
    #[allow(clippy::too_many_arguments)]
    fn scan_feature_bins(
        feat: &BinnedFeature,
        f: usize,
        bins: impl Iterator<Item = (usize, BinStat)>,
        n_rows: usize,
        g_total: f64,
        h_total: f64,
        params: &TreeParams,
        best: &mut Option<BinnedSplit>,
    ) {
        let lambda = params.lambda;
        let base_score = g_total * g_total / (h_total + lambda);
        let n_finite_bins = feat.cuts.len() + 1;
        let mut g_left = 0.0;
        let mut h_left = 0.0;
        let mut n_left = 0usize;
        for (bin, stat) in bins {
            if bin >= n_finite_bins {
                break; // the missing bin has no boundary after it
            }
            if stat.n == 0 {
                continue; // empty bin: same partition as the previous boundary
            }
            g_left += stat.g;
            h_left += stat.h;
            n_left += stat.n as usize;
            let n_right = n_rows - n_left;
            if n_right == 0 {
                break; // nothing left to send right (not even missing)
            }
            if n_left < params.min_samples_leaf || n_right < params.min_samples_leaf {
                continue;
            }
            let threshold = if bin < feat.cuts.len() {
                feat.cuts[bin]
            } else {
                // Everything finite goes left; only missing values sit
                // to the right of this boundary.
                f64::MAX
            };
            let g_right = g_total - g_left;
            let h_right = h_total - h_left;
            let gain = 0.5
                * (g_left * g_left / (h_left + lambda) + g_right * g_right / (h_right + lambda)
                    - base_score);
            if gain > params.min_gain && best.as_ref().is_none_or(|b| gain > b.gain) {
                *best = Some(BinnedSplit {
                    feature: f,
                    bin,
                    threshold,
                    gain,
                });
            }
        }
    }

    /// Finds the best split from a node's flat (all features) histogram.
    #[allow(clippy::too_many_arguments)]
    fn find_best_split_binned(
        binned: &BinnedColumns,
        hist: &[BinStat],
        features: &[usize],
        n_rows: usize,
        g_total: f64,
        h_total: f64,
        params: &TreeParams,
    ) -> Option<BinnedSplit> {
        let mut best: Option<BinnedSplit> = None;
        for &f in features {
            let feat = &binned.feats[f];
            let offset = binned.offsets[f];
            let slots = &hist[offset..offset + feat.n_bins()];
            Self::scan_feature_bins(
                feat,
                f,
                slots.iter().copied().enumerate(),
                n_rows,
                g_total,
                h_total,
                params,
                &mut best,
            );
        }
        best
    }

    /// Finds the best split without a flat histogram: accumulates only the
    /// sampled features, one at a time. Per-feature sums are bitwise
    /// identical to the flat accumulation (rows are visited in the same
    /// order), so the chosen split matches what a freshly accumulated flat
    /// histogram would yield — only the O(total_bins) allocation and
    /// subtraction are avoided, which dominate on small nodes.
    ///
    /// Two tiers per feature: a dense per-feature scratch histogram, or —
    /// when the node has far fewer rows than the feature has bins — a
    /// sparse pass that stable-sorts `(bin, row)` pairs and aggregates
    /// runs, never touching empty bin slots at all.
    #[allow(clippy::too_many_arguments)]
    fn find_best_split_binned_direct(
        binned: &BinnedColumns,
        grad: &[f64],
        hess: &[f64],
        rows: &[usize],
        features: &[usize],
        g_total: f64,
        h_total: f64,
        params: &TreeParams,
        scratch: &mut SplitScratch,
    ) -> Option<BinnedSplit> {
        let mut best: Option<BinnedSplit> = None;
        for &f in features {
            let feat = &binned.feats[f];
            if rows.len() * SPARSE_NODE_FACTOR < feat.n_bins() {
                // Stable sort keeps row order within each bin, so the
                // per-bin sums match the dense accumulation bitwise.
                scratch.pairs.clear();
                scratch
                    .pairs
                    .extend(rows.iter().map(|&r| (feat.bins[r], r)));
                scratch.pairs.sort_by_key(|&(bin, _)| bin);
                scratch.agg.clear();
                for &(bin, r) in &scratch.pairs {
                    match scratch.agg.last_mut() {
                        Some((b, stat)) if *b == bin as usize => {
                            stat.g += grad[r];
                            stat.h += hess[r];
                            stat.n += 1;
                        }
                        _ => scratch.agg.push((
                            bin as usize,
                            BinStat {
                                g: grad[r],
                                h: hess[r],
                                n: 1,
                            },
                        )),
                    }
                }
                Self::scan_feature_bins(
                    feat,
                    f,
                    scratch.agg.iter().copied(),
                    rows.len(),
                    g_total,
                    h_total,
                    params,
                    &mut best,
                );
            } else {
                scratch.dense.clear();
                scratch.dense.resize(feat.n_bins(), BinStat::default());
                for &r in rows {
                    let slot = &mut scratch.dense[feat.bins[r] as usize];
                    slot.g += grad[r];
                    slot.h += hess[r];
                    slot.n += 1;
                }
                Self::scan_feature_bins(
                    feat,
                    f,
                    scratch.dense.iter().copied().enumerate(),
                    rows.len(),
                    g_total,
                    h_total,
                    params,
                    &mut best,
                );
            }
        }
        best
    }

    /// Predicts the tree output for one CSR row.
    pub fn predict_row(&self, indices: &[u32], values: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = match indices.binary_search(&(*feature as u32)) {
                        Ok(pos) => values[pos],
                        Err(_) => 0.0,
                    };
                    node = if v <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predicts the tree output for one dense row.
    pub fn predict_dense_row(&self, row: &[f64]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Largest feature index referenced by any split node, if the tree
    /// splits at all. Blocked inference uses this to prove a dense scratch
    /// row of a given width is wide enough for [`Self::predict_dense_row`].
    pub fn max_feature(&self) -> Option<usize> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                Node::Leaf { .. } => None,
            })
            .max()
    }

    /// Number of nodes (diagnostics / tests).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug, Clone)]
struct SplitCandidate {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Partitions `rows` so rows with `value <= threshold` come first; returns
/// the boundary index. NaN values fail the comparison and go right — the
/// deterministic missing-value rule shared with prediction.
fn partition_rows(
    columns: &DenseColumns,
    rows: &mut [usize],
    feature: usize,
    threshold: f64,
) -> usize {
    let mut i = 0usize;
    let mut j = rows.len();
    while i < j {
        if columns.value(rows[i], feature) <= threshold {
            i += 1;
        } else {
            j -= 1;
            rows.swap(i, j);
        }
    }
    i
}

/// Partitions `rows` so rows whose bin index is `<= bin` come first;
/// returns the boundary index. The missing bin is the largest index, so
/// missing values always go right.
fn partition_rows_binned(feat: &BinnedFeature, rows: &mut [usize], bin: usize) -> usize {
    let mut i = 0usize;
    let mut j = rows.len();
    while i < j {
        if (feat.bins[rows[i]] as usize) <= bin {
            i += 1;
        } else {
            j -= 1;
            rows.swap(i, j);
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fits a plain regression tree to targets by the grad=-y, hess=1 trick.
    fn fit_regression(
        columns: &DenseColumns,
        y: &[f64],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> RegressionTree {
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; y.len()];
        let rows: Vec<usize> = (0..y.len()).collect();
        RegressionTree::fit_exact(columns, &grad, &hess, &rows, params, rng)
    }

    /// Same as [`fit_regression`] but through the histogram path.
    fn fit_regression_binned(
        columns: &DenseColumns,
        y: &[f64],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> RegressionTree {
        let binned = BinnedColumns::from_columns(columns, MAX_HISTOGRAM_BINS);
        let grad: Vec<f64> = y.iter().map(|v| -v).collect();
        let hess = vec![1.0; y.len()];
        let rows: Vec<usize> = (0..y.len()).collect();
        RegressionTree::fit_binned(&binned, &grad, &hess, &rows, params, rng)
    }

    fn step_data() -> (DenseColumns, Vec<f64>) {
        // y = 10 if x > 0.5 else 0.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = (0..40)
            .map(|i| if i as f64 / 39.0 > 0.5 { 10.0 } else { 0.0 })
            .collect();
        (DenseColumns::from_dense(&x), y)
    }

    #[test]
    fn learns_a_step_function() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(1);
        let params = TreeParams {
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &y, &params, &mut rng);
        for (i, &target) in y.iter().enumerate() {
            let pred = tree.predict_dense_row(&[i as f64 / 39.0]);
            assert!((pred - target).abs() < 1e-9, "row {i}: {pred} vs {target}");
        }
    }

    #[test]
    fn binned_learns_a_step_function() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(1);
        let params = TreeParams {
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = fit_regression_binned(&cols, &y, &params, &mut rng);
        for (i, &target) in y.iter().enumerate() {
            let pred = tree.predict_dense_row(&[i as f64 / 39.0]);
            assert!((pred - target).abs() < 1e-9, "row {i}: {pred} vs {target}");
        }
    }

    #[test]
    fn binned_handles_more_distinct_values_than_bins() {
        // 2000 distinct values force the quantile (lossy) cut path.
        let rows: Vec<Vec<f64>> = (0..2000).map(|i| vec![i as f64 / 1999.0]).collect();
        let x = DenseMatrix::from_rows(&rows).unwrap();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.37 { 4.0 } else { -4.0 })
            .collect();
        let cols = DenseColumns::from_dense(&x);
        let binned = BinnedColumns::from_columns(&cols, MAX_HISTOGRAM_BINS);
        assert!(binned.feats[0].cuts.len() <= MAX_HISTOGRAM_BINS - 2);
        assert!(binned.feats[0].cuts.len() > 100, "quantile path not taken");
        let mut rng = StdRng::seed_from_u64(2);
        let params = TreeParams {
            lambda: 0.0,
            max_depth: 6,
            ..TreeParams::default()
        };
        let tree = fit_regression_binned(&cols, &y, &params, &mut rng);
        let mae = rows
            .iter()
            .zip(&y)
            .map(|(r, &t)| (tree.predict_dense_row(r) - t).abs())
            .sum::<f64>()
            / y.len() as f64;
        // Quantile cuts land within 1/255 of the true step, so only a
        // sliver of rows can be mislabelled.
        assert!(mae < 0.1, "MAE {mae}");
    }

    #[test]
    fn depth_zero_is_single_leaf_mean() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(2);
        let params = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &y, &params, &mut rng);
        assert_eq!(tree.n_nodes(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict_dense_row(&[0.3]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let cols = DenseColumns::from_dense(&x);
        let mut rng = StdRng::seed_from_u64(3);
        for fit in [fit_regression, fit_regression_binned] {
            let tree = fit(
                &cols,
                &[1.0, 2.0, 3.0, 4.0],
                &TreeParams::default(),
                &mut rng,
            );
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(4);
        let params = TreeParams {
            min_samples_leaf: 40, // cannot split at all
            ..TreeParams::default()
        };
        for fit in [fit_regression, fit_regression_binned] {
            let tree = fit(&cols, &y, &params, &mut rng);
            assert_eq!(tree.n_nodes(), 1);
        }
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = DenseMatrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let cols = DenseColumns::from_dense(&x);
        let mut rng = StdRng::seed_from_u64(5);
        let params = TreeParams {
            max_depth: 0,
            lambda: 2.0,
            ..TreeParams::default()
        };
        let tree = fit_regression(&cols, &[3.0, 3.0], &params, &mut rng);
        // leaf = sum(y) / (n + lambda) = 6 / 4
        assert!((tree.predict_dense_row(&[0.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_and_dense_prediction_agree() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(6);
        let tree = fit_regression(&cols, &y, &TreeParams::default(), &mut rng);
        for i in 0..40 {
            let v = i as f64 / 39.0;
            let dense = tree.predict_dense_row(&[v]);
            let sparse = if v == 0.0 {
                tree.predict_row(&[], &[])
            } else {
                tree.predict_row(&[0], &[v])
            };
            assert_eq!(dense, sparse);
        }
    }

    #[test]
    fn two_feature_interaction() {
        // y = 5 only in the quadrant x0>0.5 && x1>0.5; needs depth 2.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let (a, b) = (i as f64 / 9.0, j as f64 / 9.0);
                rows.push(vec![a, b]);
                y.push(if a > 0.5 && b > 0.5 { 5.0 } else { 0.0 });
            }
        }
        let cols = DenseColumns::from_dense(&DenseMatrix::from_rows(&rows).unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        let params = TreeParams {
            max_depth: 3,
            lambda: 0.0,
            min_samples_leaf: 1,
            ..TreeParams::default()
        };
        for fit in [fit_regression, fit_regression_binned] {
            let tree = fit(&cols, &y, &params, &mut rng);
            assert!((tree.predict_dense_row(&[0.9, 0.9]) - 5.0).abs() < 1e-9);
            assert!(tree.predict_dense_row(&[0.9, 0.1]).abs() < 1e-9);
        }
    }

    #[test]
    fn dense_columns_from_csr_matches() {
        let d = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let csr = CsrMatrix::from_dense(&d);
        let cols = DenseColumns::from_csr(&csr);
        assert_eq!(cols.value(0, 1), 2.0);
        assert_eq!(cols.value(1, 0), 3.0);
        assert_eq!(cols.value(0, 0), 0.0);
    }

    #[test]
    fn missing_values_route_right_in_both_split_methods() {
        // Finite x carries no signal; the NaN rows carry all of it. The
        // only useful split is "finite left, missing right".
        let col = vec![1.0, 2.0, 3.0, 4.0, f64::NAN, f64::NAN, f64::NAN];
        let y = vec![0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0];
        let cols = DenseColumns {
            n_rows: col.len(),
            cols: vec![col],
        };
        let params = TreeParams {
            lambda: 0.0,
            min_samples_leaf: 1,
            ..TreeParams::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        for fit in [fit_regression, fit_regression_binned] {
            let tree = fit(&cols, &y, &params, &mut rng);
            assert!((tree.predict_dense_row(&[f64::NAN]) - 5.0).abs() < 1e-9);
            assert!(tree.predict_dense_row(&[2.5]).abs() < 1e-9);
        }
    }

    #[test]
    fn max_feature_reports_largest_split_feature() {
        let (cols, y) = step_data();
        let mut rng = StdRng::seed_from_u64(9);
        let tree = fit_regression(&cols, &y, &TreeParams::default(), &mut rng);
        assert_eq!(tree.max_feature(), Some(0));
        let leaf = RegressionTree {
            nodes: vec![Node::Leaf { value: 1.0 }],
        };
        assert_eq!(leaf.max_feature(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Satellite-1 pin: on data with missing values, the winning
        /// exact split's advertised gain must match the gain recomputed
        /// from the partition `partition_rows` actually realizes. Before
        /// the NaN-last sort rule, NaNs landed at arbitrary positions in
        /// the scan order and the two could disagree.
        #[test]
        fn exact_split_gain_matches_realized_partition(
            values in proptest::collection::vec(
                proptest::option::weighted(0.75, -10.0f64..10.0), 8..50),
        ) {
            let col: Vec<f64> = values.iter().map(|v| v.unwrap_or(f64::NAN)).collect();
            let n = col.len();
            // Targets correlate with both sign and missingness so that
            // splits (including the finite-vs-missing boundary) pay off.
            let y: Vec<f64> = col
                .iter()
                .map(|v| if v.is_nan() { 3.0 } else if *v > 0.0 { 1.0 } else { -1.0 })
                .collect();
            let cols = DenseColumns { n_rows: n, cols: vec![col] };
            let grad: Vec<f64> = y.iter().map(|v| -v).collect();
            let hess = vec![1.0; n];
            let rows: Vec<usize> = (0..n).collect();
            let params = TreeParams {
                min_samples_leaf: 1,
                lambda: 1.0,
                min_gain: 1e-12,
                ..TreeParams::default()
            };
            let mut rng = StdRng::seed_from_u64(0);
            if let Some(split) =
                RegressionTree::find_best_split(&cols, &grad, &hess, &rows, &params, &mut rng)
            {
                let mut part = rows.clone();
                let mid = partition_rows(&cols, &mut part, split.feature, split.threshold);
                prop_assert!(mid > 0 && mid < n, "split must separate rows");
                let sum = |idx: &[usize]| -> (f64, f64) {
                    idx.iter().fold((0.0, 0.0), |(g, h), &r| (g + grad[r], h + hess[r]))
                };
                let (gl, hl) = sum(&part[..mid]);
                let (gr, hr) = sum(&part[mid..]);
                let (gt, ht) = sum(&rows);
                let realized = 0.5
                    * (gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda)
                        - gt * gt / (ht + params.lambda));
                let tol = 1e-9 * split.gain.abs().max(1.0);
                prop_assert!(
                    (realized - split.gain).abs() <= tol,
                    "advertised gain {} vs realized {}",
                    split.gain,
                    realized
                );
            }
        }

        /// The binning invariant behind histogram thresholds: for every
        /// finite value and every cut index, `v <= cuts[b]` iff
        /// `bin(v) <= b`, so a threshold at `cuts[b]` partitions values
        /// exactly like the bin-index partition used during training.
        #[test]
        fn bin_mapping_agrees_with_thresholds(
            values in proptest::collection::vec(-1000.0f64..1000.0, 2..200),
            max_bins in 3usize..40,
        ) {
            let cols = DenseColumns { n_rows: values.len(), cols: vec![values.clone()] };
            let binned = BinnedColumns::from_columns(&cols, max_bins);
            let feat = &binned.feats[0];
            prop_assert!(feat.cuts.windows(2).all(|w| w[0] < w[1]), "cuts strictly increase");
            for (r, &v) in values.iter().enumerate() {
                let bin = feat.bins[r] as usize;
                for (b, &cut) in feat.cuts.iter().enumerate() {
                    prop_assert_eq!(
                        v <= cut,
                        bin <= b,
                        "value {} bin {} cut[{}]={}",
                        v, bin, b, cut
                    );
                }
            }
        }

        /// Histogram and exact training stay close on NaN-free data: with
        /// fewer distinct values than bins the candidate thresholds
        /// coincide, so predictions match to float-accumulation noise.
        #[test]
        fn binned_matches_exact_on_low_cardinality_data(
            seed in 0u64..1000,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 60;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| vec![f64::from(rng.gen_range(0u8..8)), f64::from(rng.gen_range(0u8..4))])
                .collect();
            let y: Vec<f64> = rows.iter().map(|r| r[0] - 0.5 * r[1]).collect();
            let cols = DenseColumns::from_dense(&DenseMatrix::from_rows(&rows).unwrap());
            let params = TreeParams { lambda: 0.0, ..TreeParams::default() };
            let exact = fit_regression(&cols, &y, &params, &mut StdRng::seed_from_u64(seed));
            let binned = fit_regression_binned(&cols, &y, &params, &mut StdRng::seed_from_u64(seed));
            for row in &rows {
                let (a, b) = (exact.predict_dense_row(row), binned.predict_dense_row(row));
                prop_assert!((a - b).abs() < 1e-6, "exact {} vs binned {}", a, b);
            }
        }
    }
}
