//! Special functions backing the p-value computations.
//!
//! Implemented after the classical Lanczos/continued-fraction formulations
//! (Numerical Recipes style), accurate to ~1e-10 over the ranges exercised by
//! the hypothesis tests in this workspace.

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the Lanczos approximation with g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small/negative arguments.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function P(a, x).
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// the complement otherwise.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if x <= 0.0 || a <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function Q(a, x) = 1 - P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Survival function of the chi-squared distribution with `df` degrees of
/// freedom: `P(X >= x)`.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, x / 2.0).clamp(0.0, 1.0)
}

/// Survival function of the Kolmogorov distribution, `Q_KS(λ)`.
///
/// `Q(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²)`; this is the asymptotic null
/// distribution of the scaled two-sample KS statistic.
///
/// For small `λ` the alternating series converges too slowly (its terms are
/// all ≈ 1), so a fixed-iteration truncation returns garbage — tiny batches
/// and near-identical samples land exactly there and used to pick up bogus
/// near-zero p-values. That regime instead uses the Jacobi-theta transform
/// of the CDF, `K(λ) = (√(2π)/λ) Σ_{j≥1} exp(−(2j−1)²π²/(8λ²))`, which
/// converges in a handful of terms, and returns `1 − K(λ)`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    if lambda < 1.0 {
        let pi = std::f64::consts::PI;
        let factor = (2.0 * pi).sqrt() / lambda;
        let scale = pi * pi / (8.0 * lambda * lambda);
        let mut cdf = 0.0;
        for j in 1..=20u32 {
            let odd = f64::from(2 * j - 1);
            let term = (-odd * odd * scale).exp();
            cdf += term;
            if term < 1e-16 * cdf {
                break;
            }
        }
        return (1.0 - factor * cdf).clamp(0.0, 1.0);
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64).powi(2) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let cases = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (5.0, 24.0),
            (7.0, 720.0),
        ];
        for (x, fact) in cases {
            assert!((ln_gamma(x) - f64::ln(fact)).abs() < 1e-10, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-10);
    }

    #[test]
    fn gamma_p_q_are_complements() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (10.0, 3.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!((p + q - 1.0).abs() < 1e-10, "a={a}, x={x}");
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_known_value() {
        // P(1, x) = 1 - exp(-x)
        for &x in &[0.1, 1.0, 3.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn chi2_sf_known_values() {
        // Critical values: chi2_sf(3.841, 1) ≈ 0.05, chi2_sf(5.991, 2) ≈ 0.05
        assert!((chi2_sf(3.841_458_820_694_124, 1.0) - 0.05).abs() < 1e-6);
        assert!((chi2_sf(5.991_464_547_107_979, 2.0) - 0.05).abs() < 1e-6);
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
    }

    #[test]
    fn chi2_sf_monotone_decreasing_in_x() {
        let mut prev = 1.0;
        for i in 1..50 {
            let v = chi2_sf(i as f64 * 0.5, 4.0);
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }

    #[test]
    fn kolmogorov_sf_known_values() {
        // Q(1.36) ≈ 0.049, the classical 5% critical value.
        let v = kolmogorov_sf(1.36);
        assert!((v - 0.049).abs() < 2e-3, "got {v}");
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }

    #[test]
    fn kolmogorov_sf_small_lambda_is_one_not_garbage() {
        // Q(λ) → 1 as λ → 0; the truncated alternating series used to
        // return junk below λ ≈ 0.04 because its terms stay ≈ 1 for 100
        // iterations. The theta-transform branch must agree with theory.
        for lambda in [1e-6, 1e-3, 0.01, 0.05, 0.1, 0.2] {
            let v = kolmogorov_sf(lambda);
            assert!(v > 1.0 - 1e-9, "Q({lambda}) = {v}");
        }
        // Q(0.5) ≈ 0.9639 (tabulated).
        assert!((kolmogorov_sf(0.5) - 0.9639).abs() < 1e-3);
    }

    #[test]
    fn kolmogorov_sf_branches_agree_at_the_crossover() {
        // The theta series (λ < 1) and the alternating series (λ ≥ 1)
        // must describe the same distribution where they meet.
        let below = kolmogorov_sf(1.0 - 1e-9);
        let above = kolmogorov_sf(1.0);
        assert!((below - above).abs() < 1e-8, "{below} vs {above}");
    }

    #[test]
    fn kolmogorov_sf_bounded_and_monotone() {
        let mut prev = 1.0;
        for i in 0..60 {
            let v = kolmogorov_sf(i as f64 * 0.1);
            assert!((0.0..=1.0).contains(&v));
            assert!(v <= prev + 1e-12);
            prev = v;
        }
    }
}
