//! Percentile summaries of model outputs.
//!
//! The paper featurizes a batch of black box predictions by the class-wise
//! percentiles of the predicted probabilities, collected at
//! 0, 5, 10, …, 100 (§4). [`vigintile_grid`] produces exactly that grid.

/// Number of percentile positions in the paper's 0,5,…,100 grid.
pub const VIGINTILE_COUNT: usize = 21;

/// The paper's percentile grid as a shared constant: 0, 5, 10, …, 100.
///
/// Every featurization path — the exact [`PercentileScratch`] sort and the
/// sketch query path ([`crate::QuantileSketch::extend_percentiles`]) —
/// reads this single definition, so the two feature layouts cannot drift.
pub const VIGINTILE_GRID: [f64; VIGINTILE_COUNT] = [
    0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0, 60.0, 65.0, 70.0, 75.0,
    80.0, 85.0, 90.0, 95.0, 100.0,
];

/// Percentile of an already-sorted slice using linear interpolation
/// (the same `linear` convention as NumPy's default).
///
/// `q` is clamped into `[0, 100]`, so `q = 0` always returns `min` and
/// `q = 100` always returns `max` — including for tiny inputs (n ≤ 3),
/// where an unclamped rank used to be able to index one past the end in
/// release builds when float error nudged a grid endpoint above 100.
/// Empty input returns NaN.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let rank = (q.clamp(0.0, 100.0) / 100.0 * (n - 1) as f64).clamp(0.0, (n - 1) as f64);
            let lo = rank.floor() as usize;
            let hi = rank.ceil() as usize;
            if lo == hi {
                sorted[lo]
            } else {
                let w = rank - lo as f64;
                sorted[lo] * (1.0 - w) + sorted[hi] * w
            }
        }
    }
}

/// Computes the requested percentiles of `values` (need not be sorted).
///
/// Non-finite values are dropped first; if nothing remains, all outputs are
/// 0.0 (a neutral featurization for an empty batch).
pub fn percentiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(qs.len());
    PercentileScratch::new().extend_percentiles(values.iter().copied(), qs, &mut out);
    out
}

/// Reusable sort buffer for repeated percentile computations.
///
/// Featurizing a probability matrix computes the same percentile grid once
/// per class column; reusing one scratch buffer across columns (and across
/// batches) sorts in place without a fresh allocation per call.
#[derive(Debug, Default)]
pub struct PercentileScratch {
    buf: Vec<f64>,
}

impl PercentileScratch {
    /// An empty scratch buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the requested percentiles of `values` to `out`, using the
    /// internal buffer for the sort. Semantics match [`percentiles`]:
    /// non-finite values are dropped, and an empty input yields 0.0 for
    /// every requested percentile.
    pub fn extend_percentiles(
        &mut self,
        values: impl IntoIterator<Item = f64>,
        qs: &[f64],
        out: &mut Vec<f64>,
    ) {
        self.buf.clear();
        self.buf
            .extend(values.into_iter().filter(|x| x.is_finite()));
        if self.buf.is_empty() {
            out.extend(std::iter::repeat_n(0.0, qs.len()));
            return;
        }
        self.buf
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        out.extend(qs.iter().map(|&q| percentile_sorted(&self.buf, q)));
    }
}

/// The paper's percentile grid: 0, 5, 10, …, 100 (a `Vec` view of the
/// shared [`VIGINTILE_GRID`] constant).
pub fn vigintile_grid() -> Vec<f64> {
    VIGINTILE_GRID.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_21_points_ending_at_100() {
        let g = vigintile_grid();
        assert_eq!(g.len(), VIGINTILE_COUNT);
        assert_eq!(g[0], 0.0);
        assert_eq!(*g.last().unwrap(), 100.0);
    }

    #[test]
    fn grid_constant_matches_the_generated_grid() {
        // The shared constant is the single source of truth for both the
        // exact and the sketch feature layouts; pin it against the
        // arithmetic definition.
        for (i, &q) in VIGINTILE_GRID.iter().enumerate() {
            assert_eq!(q, i as f64 * 5.0);
        }
        assert_eq!(vigintile_grid(), VIGINTILE_GRID.to_vec());
    }

    #[test]
    fn percentile_of_singleton_is_the_value() {
        assert_eq!(percentile_sorted(&[42.0], 0.0), 42.0);
        assert_eq!(percentile_sorted(&[42.0], 100.0), 42.0);
    }

    #[test]
    fn median_interpolates() {
        assert_eq!(percentile_sorted(&[1.0, 3.0], 50.0), 2.0);
        assert_eq!(percentile_sorted(&[1.0, 2.0, 3.0], 50.0), 2.0);
    }

    #[test]
    fn extremes_are_min_and_max() {
        let v = [5.0, 1.0, 9.0, 3.0];
        let out = percentiles(&v, &[0.0, 100.0]);
        assert_eq!(out, vec![1.0, 9.0]);
    }

    #[test]
    fn quartiles_match_numpy_linear() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        let out = percentiles(&[1.0, 2.0, 3.0, 4.0], &[25.0, 75.0]);
        assert!((out[0] - 1.75).abs() < 1e-12);
        assert!((out[1] - 3.25).abs() < 1e-12);
    }

    #[test]
    fn nan_values_are_ignored() {
        let out = percentiles(&[f64::NAN, 1.0, 2.0], &[100.0]);
        assert_eq!(out, vec![2.0]);
    }

    #[test]
    fn empty_input_yields_zeros() {
        let out = percentiles(&[], &[0.0, 50.0, 100.0]);
        assert_eq!(out, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn boundary_percentiles_are_exact_for_tiny_inputs() {
        // q = 0 must be min and q = 100 must be max for n ∈ {1, 2, 3} —
        // the small-n regime where interpolation ranks land exactly on the
        // array ends and any off-by-one indexes out of bounds.
        let cases: [&[f64]; 3] = [&[4.0], &[1.0, 9.0], &[1.0, 5.0, 9.0]];
        for sorted in cases {
            let n = sorted.len();
            assert_eq!(percentile_sorted(sorted, 0.0), sorted[0], "min, n={n}");
            assert_eq!(
                percentile_sorted(sorted, 100.0),
                sorted[n - 1],
                "max, n={n}"
            );
        }
    }

    #[test]
    fn out_of_range_q_clamps_instead_of_indexing_past_the_end() {
        // Accumulated float error can push a grid endpoint marginally past
        // 100; in release builds the old rank computation indexed one past
        // the end. The clamp pins those to min/max.
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&sorted, 100.0 + 1e-9), 3.0);
        assert_eq!(percentile_sorted(&sorted, -1e-9), 1.0);
    }

    #[test]
    fn percentiles_are_monotone_in_q() {
        let v: Vec<f64> = (0..100).map(|i| (i * 7 % 31) as f64).collect();
        let qs = vigintile_grid();
        let out = percentiles(&v, &qs);
        for w in out.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
