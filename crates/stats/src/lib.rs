//! Statistical machinery for validating black box model predictions.
//!
//! The performance validator and all three baselines of the paper rest on a
//! small set of statistical tools, implemented here from first principles:
//!
//! * two-sample Kolmogorov–Smirnov and Pearson χ² hypothesis tests with
//!   asymptotic p-values ([`tests`]),
//! * percentile summaries of model outputs, the feature map of the learned
//!   performance predictor ([`percentile`]),
//! * classification/regression metrics: accuracy, precision/recall/F1, ROC
//!   AUC, MAE ([`metrics`]),
//! * the special functions backing the p-value computations ([`special`]).

pub mod metrics;
pub mod percentile;
pub mod sketch;
pub mod special;
pub mod tests;

pub use metrics::{
    accuracy, auc_binary, confusion_binary, f1_score, mean_absolute_error, precision_recall_f1,
    BinaryConfusion,
};
pub use percentile::{
    percentile_sorted, percentiles, vigintile_grid, PercentileScratch, VIGINTILE_COUNT,
    VIGINTILE_GRID,
};
pub use sketch::{EcdfSketch, QuantileSketch, SketchMergeError, DEFAULT_SKETCH_BINS};
pub use tests::{bonferroni_alpha, chi2_gof_test, chi2_test_counts, ks_two_sample, TestOutcome};
