//! Mergeable streaming sketches for percentile and ECDF features.
//!
//! The paper's featurization ζ (§4) assumes a fully materialized batch:
//! percentiles come from sorting whole output columns, and the validator's
//! KS features compare against the entire retained test matrix. Neither
//! survives unbounded serving traffic or fleet-level (multi-shard)
//! monitoring. This module supplies the streaming counterparts:
//!
//! * [`QuantileSketch`] — a fixed-grid compactor over a known value range
//!   (model outputs live in `[0, 1]`), refined with exact per-bin min/max,
//!   answering percentile queries with a **proven value-error bound**
//!   ε = (hi − lo) / bins (see below);
//! * [`EcdfSketch`] — a compressed empirical CDF (bin counts only),
//!   answering KS-distance queries with **exact rank information at bin
//!   edges** (rank error 0 at edges, ≤ one bin's mass inside a bin).
//!
//! # Why not GK / KLL?
//!
//! Classic GK/KLL quantile sketches carry tighter worst-case space for
//! unbounded ranges, but their `merge` is *not* bit-associative: the
//! compaction schedule depends on how the merge tree was parenthesized, so
//! a fleet-level merge of N shard sketches would not be bit-identical to
//! the single-stream sketch — which is exactly the contract the monitor's
//! sharded path promises (DESIGN.md §5h). Both sketches here are instead
//! **commutative monoids**: their state is bin counts (`u64` addition) and
//! per-bin min/max (order-insensitive), so `merge` is exactly associative
//! *and* commutative — any merge order, any thread schedule, any
//! shard/chunk grouping produces bit-identical state. Model outputs are
//! probabilities, so the fixed `[0, 1]` range loses nothing.
//!
//! # Error contract
//!
//! For a [`QuantileSketch`] over `[lo, hi]` with `b` bins and no
//! out-of-range clamping, every percentile query returns a value within
//! `ε = (hi − lo) / b` of the exact linear-interpolated percentile of the
//! inserted finite values: cumulative bin counts are exact, so the target
//! rank's order statistic lies in the same bin the query interpolates in,
//! and both values lie between that bin's observed min and max (≤ one bin
//! wide apart). A bin holding a single distinct value (`min == max`)
//! answers exactly — all-tied batches featurize with zero error.
//!
//! For an [`EcdfSketch`], the CDF at any bin edge is the exact fraction of
//! inserted values strictly below that edge; the KS distance between two
//! sketches over the same grid is the exact KS distance of the quantized
//! samples, which differs from the exact-sample KS distance by at most the
//! largest per-bin mass fraction of either sample.

use crate::special::kolmogorov_sf;
use crate::TestOutcome;
use serde::{Deserialize, Serialize};

/// Default bin count for featurization sketches: 512 bins over `[0, 1]`
/// bound every percentile feature's deviation from the exact oracle by
/// `1/512 ≈ 0.002` while keeping a sketch under 13 KiB.
pub const DEFAULT_SKETCH_BINS: usize = 512;

/// Error merging two sketches with incompatible grids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchMergeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl std::fmt::Display for SketchMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sketch merge error: {}", self.message)
    }
}

impl std::error::Error for SketchMergeError {}

fn check_same_grid(
    kind: &str,
    (alo, ahi, abins): (f64, f64, usize),
    (blo, bhi, bbins): (f64, f64, usize),
) -> Result<(), SketchMergeError> {
    if alo.to_bits() != blo.to_bits() || ahi.to_bits() != bhi.to_bits() || abins != bbins {
        return Err(SketchMergeError {
            message: format!(
                "{kind} grids differ: [{alo}, {ahi}] × {abins} bins vs \
                 [{blo}, {bhi}] × {bbins} bins"
            ),
        });
    }
    Ok(())
}

/// Bin index of `v` on the grid `[lo, hi]` with `bins` bins; out-of-range
/// values clamp into the end bins (callers count clamps separately).
fn bin_of(v: f64, lo: f64, hi: f64, bins: usize) -> usize {
    let w = (hi - lo) / bins as f64;
    let idx = ((v - lo) / w).floor();
    if idx < 0.0 {
        0
    } else {
        (idx as usize).min(bins - 1)
    }
}

/// A mergeable fixed-grid quantile sketch with exact per-bin min/max.
///
/// State is `O(bins)` regardless of how many values stream through, and
/// [`QuantileSketch::merge`] is exactly associative and commutative (bin
/// counts add, per-bin extrema combine), so shard-merged state is
/// bit-identical to single-stream state. See the module docs for the
/// value-error bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Lower edge of the value grid.
    lo: f64,
    /// Upper edge of the value grid.
    hi: f64,
    /// Per-bin counts of inserted finite values.
    counts: Vec<u64>,
    /// Smallest value observed per bin (`NaN` for empty bins — never
    /// queried, serialized as `null` and restored verbatim).
    bin_min: Vec<f64>,
    /// Largest value observed per bin.
    bin_max: Vec<f64>,
    /// Total finite values inserted.
    n: u64,
    /// Non-finite values dropped (NaN-poisoned cells from corrupted data).
    dropped: u64,
    /// Finite values outside `[lo, hi]` clamped into the end bins.
    clamped: u64,
}

/// Bit-identical equality: two sketches are equal exactly when every
/// float matches by `to_bits` (the NaN sentinels in empty bins compare
/// equal to themselves, unlike under IEEE `==`). This is the equality the
/// merge-determinism guarantees are stated in, so persisted and shard-
/// merged sketches can be compared directly against live ones.
impl PartialEq for QuantileSketch {
    fn eq(&self, other: &Self) -> bool {
        fn bits_eq(a: &[f64], b: &[f64]) -> bool {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        self.lo.to_bits() == other.lo.to_bits()
            && self.hi.to_bits() == other.hi.to_bits()
            && self.counts == other.counts
            && bits_eq(&self.bin_min, &other.bin_min)
            && bits_eq(&self.bin_max, &other.bin_max)
            && self.n == other.n
            && self.dropped == other.dropped
            && self.clamped == other.clamped
    }
}

impl Eq for QuantileSketch {}

impl QuantileSketch {
    /// An empty sketch over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics when the range is not finite and increasing or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "sketch range must be finite and increasing"
        );
        assert!(bins > 0, "sketch needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            bin_min: vec![f64::NAN; bins],
            bin_max: vec![f64::NAN; bins],
            n: 0,
            dropped: 0,
            clamped: 0,
        }
    }

    /// An empty sketch over the probability range `[0, 1]` with
    /// [`DEFAULT_SKETCH_BINS`] bins — the configuration the featurization
    /// path uses for model outputs.
    pub fn unit() -> Self {
        Self::new(0.0, 1.0, DEFAULT_SKETCH_BINS)
    }

    /// Inserts one value. Non-finite values are dropped (counted in
    /// [`Self::dropped`]); finite out-of-range values clamp into the end
    /// bins (counted in [`Self::clamped`], which voids the error bound for
    /// those bins — see [`Self::value_error_bound`]).
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        if v < self.lo || v > self.hi {
            self.clamped += 1;
        }
        let b = bin_of(v, self.lo, self.hi, self.counts.len());
        self.counts[b] += 1;
        if self.bin_min[b].is_nan() || v < self.bin_min[b] {
            self.bin_min[b] = v;
        }
        if self.bin_max[b].is_nan() || v > self.bin_max[b] {
            self.bin_max[b] = v;
        }
        self.n += 1;
    }

    /// Inserts every value of an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.insert(v);
        }
    }

    /// Folds `other` into `self`. Exactly associative and commutative:
    /// counts add, extrema combine, so any merge tree over the same
    /// sketches yields bit-identical state.
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchMergeError> {
        check_same_grid(
            "quantile sketch",
            (self.lo, self.hi, self.counts.len()),
            (other.lo, other.hi, other.counts.len()),
        )?;
        for b in 0..self.counts.len() {
            self.counts[b] += other.counts[b];
            if self.bin_min[b].is_nan() || other.bin_min[b] < self.bin_min[b] {
                self.bin_min[b] = other.bin_min[b].min(self.bin_min[b].min(f64::INFINITY));
            }
            if self.bin_max[b].is_nan() || other.bin_max[b] > self.bin_max[b] {
                self.bin_max[b] = other.bin_max[b].max(self.bin_max[b].max(f64::NEG_INFINITY));
            }
            // Re-normalize the empty-bin sentinel: ±∞ can only appear when
            // both sides were NaN, i.e. the merged bin is still empty.
            if self.counts[b] == 0 {
                self.bin_min[b] = f64::NAN;
                self.bin_max[b] = f64::NAN;
            }
        }
        self.n += other.n;
        self.dropped += other.dropped;
        self.clamped += other.clamped;
        Ok(())
    }

    /// The value at integer order-statistic rank `k` (0-based), estimated
    /// by locating `k`'s bin via exact cumulative counts and linearly
    /// interpolating between that bin's observed min and max.
    fn order_statistic(&self, k: u64) -> f64 {
        debug_assert!(self.n > 0 && k < self.n);
        let mut cum = 0u64;
        for b in 0..self.counts.len() {
            let c = self.counts[b];
            if c > 0 && k < cum + c {
                if c == 1 || self.bin_min[b] == self.bin_max[b] {
                    return self.bin_min[b];
                }
                let within = (k - cum) as f64 / (c - 1) as f64;
                return self.bin_min[b] + (self.bin_max[b] - self.bin_min[b]) * within;
            }
            cum += c;
        }
        // Unreachable for k < n; defensive fallback to the global max.
        self.bin_max
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile query with the same linear-interpolation convention as
    /// [`crate::percentile_sorted`]: `q` is clamped into `[0, 100]`, the
    /// fractional rank is `q/100 · (n−1)`, and neighbouring order
    /// statistics are interpolated. Empty sketches return NaN.
    pub fn query(&self, q: f64) -> f64 {
        match self.n {
            0 => f64::NAN,
            1 => self.order_statistic(0),
            n => {
                let rank =
                    (q.clamp(0.0, 100.0) / 100.0 * (n - 1) as f64).clamp(0.0, (n - 1) as f64);
                let lo = rank.floor() as u64;
                let hi = rank.ceil() as u64;
                if lo == hi {
                    self.order_statistic(lo)
                } else {
                    let w = rank - lo as f64;
                    self.order_statistic(lo) * (1.0 - w) + self.order_statistic(hi) * w
                }
            }
        }
    }

    /// Appends the requested percentiles to `out`, mirroring
    /// [`crate::PercentileScratch::extend_percentiles`] semantics: an
    /// empty sketch yields `0.0` for every requested percentile (the
    /// neutral featurization of an empty batch).
    pub fn extend_percentiles(&self, qs: &[f64], out: &mut Vec<f64>) {
        if self.n == 0 {
            out.extend(std::iter::repeat_n(0.0, qs.len()));
            return;
        }
        out.extend(qs.iter().map(|&q| self.query(q)));
    }

    /// The proven per-query value-error bound ε versus the exact
    /// linear-interpolated percentile: one bin width when nothing was
    /// clamped, otherwise the widest observed bin span (clamped values can
    /// stretch the end bins beyond a grid step).
    pub fn value_error_bound(&self) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        if self.clamped == 0 {
            return width;
        }
        self.bin_min
            .iter()
            .zip(&self.bin_max)
            .filter(|(lo, _)| !lo.is_nan())
            .map(|(lo, hi)| hi - lo)
            .fold(width, f64::max)
    }

    /// Total finite values inserted.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Non-finite values dropped on insert.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finite out-of-range values clamped into the end bins.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Number of grid bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The grid as `(lo, hi, bins)`.
    pub fn grid(&self) -> (f64, f64, usize) {
        (self.lo, self.hi, self.counts.len())
    }

    /// Approximate in-memory footprint in bytes — fixed by the bin count,
    /// independent of how many values streamed through.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.len() * (8 + 8 + 8)
    }
}

/// A compressed empirical CDF: bin counts over a fixed grid.
///
/// Holds strictly less state than a [`QuantileSketch`] (no per-bin
/// extrema) — enough for KS-distance queries, which only need ranks at bin
/// edges, where the sketch is exact. `merge` is plain `u64` vector
/// addition: exactly associative and commutative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcdfSketch {
    /// Lower edge of the value grid.
    lo: f64,
    /// Upper edge of the value grid.
    hi: f64,
    /// Per-bin counts of inserted finite values.
    counts: Vec<u64>,
    /// Total finite values inserted.
    n: u64,
    /// Non-finite values dropped.
    dropped: u64,
}

impl EcdfSketch {
    /// An empty sketch over `[lo, hi]` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics when the range is not finite and increasing or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "sketch range must be finite and increasing"
        );
        assert!(bins > 0, "sketch needs at least one bin");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            n: 0,
            dropped: 0,
        }
    }

    /// An empty sketch over the probability range `[0, 1]` with
    /// [`DEFAULT_SKETCH_BINS`] bins.
    pub fn unit() -> Self {
        Self::new(0.0, 1.0, DEFAULT_SKETCH_BINS)
    }

    /// Inserts one value; non-finite values are dropped, out-of-range
    /// finite values clamp into the end bins.
    pub fn insert(&mut self, v: f64) {
        if !v.is_finite() {
            self.dropped += 1;
            return;
        }
        let b = bin_of(v, self.lo, self.hi, self.counts.len());
        self.counts[b] += 1;
        self.n += 1;
    }

    /// Inserts every value of an iterator.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.insert(v);
        }
    }

    /// From a slice in one call (convenience for retained test columns).
    pub fn from_values(values: &[f64], lo: f64, hi: f64, bins: usize) -> Self {
        let mut s = Self::new(lo, hi, bins);
        s.extend(values.iter().copied());
        s
    }

    /// Folds `other` into `self`: plain count addition, exactly
    /// associative and commutative.
    pub fn merge(&mut self, other: &Self) -> Result<(), SketchMergeError> {
        check_same_grid(
            "ecdf sketch",
            (self.lo, self.hi, self.counts.len()),
            (other.lo, other.hi, other.counts.len()),
        )?;
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.n += other.n;
        self.dropped += other.dropped;
        Ok(())
    }

    /// The KS distance `D = sup |F_a − F_b|` between the quantized
    /// empirical CDFs of the two sketches, evaluated at bin edges (where
    /// both CDFs are exact for the quantized samples). Either sketch being
    /// empty yields `0.0` (no evidence), matching
    /// [`crate::ks_two_sample`]'s convention.
    pub fn ks_distance(&self, other: &Self) -> Result<f64, SketchMergeError> {
        check_same_grid(
            "ecdf sketch",
            (self.lo, self.hi, self.counts.len()),
            (other.lo, other.hi, other.counts.len()),
        )?;
        if self.n == 0 || other.n == 0 {
            return Ok(0.0);
        }
        let (mut ca, mut cb, mut d) = (0u64, 0u64, 0.0f64);
        for (&a, &b) in self.counts.iter().zip(&other.counts) {
            ca += a;
            cb += b;
            let fa = ca as f64 / self.n as f64;
            let fb = cb as f64 / other.n as f64;
            d = d.max((fa - fb).abs());
        }
        Ok(d)
    }

    /// Two-sample KS test between the sketched distributions, using the
    /// same asymptotic p-value and small-sample correction as
    /// [`crate::ks_two_sample`] with the sketches' finite counts as sample
    /// sizes. Either sketch being empty yields `D = 0, p = 1`.
    pub fn ks_test(&self, other: &Self) -> Result<TestOutcome, SketchMergeError> {
        let d = self.ks_distance(other)?;
        if self.n == 0 || other.n == 0 {
            return Ok(TestOutcome {
                statistic: 0.0,
                p_value: 1.0,
            });
        }
        let (n, m) = (self.n as f64, other.n as f64);
        let ne = n * m / (n + m);
        let sqrt_ne = ne.sqrt();
        let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
        Ok(TestOutcome {
            statistic: d,
            p_value: kolmogorov_sf(lambda),
        })
    }

    /// The exact fraction of inserted finite values falling in bins
    /// `0..=b` — the quantized CDF at the upper edge of bin `b`.
    pub fn cdf_at_bin(&self, b: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let cum: u64 = self.counts[..=b.min(self.counts.len() - 1)].iter().sum();
        cum as f64 / self.n as f64
    }

    /// The largest single-bin mass fraction — the rank-error bound for CDF
    /// queries *inside* a bin (at bin edges the rank is exact), and the
    /// per-sample term of the KS-distance error bound versus exact
    /// samples.
    pub fn max_bin_mass(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.counts.iter().copied().max().unwrap_or(0) as f64 / self.n as f64
    }

    /// Total finite values inserted.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Non-finite values dropped on insert.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of grid bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// The grid as `(lo, hi, bins)`.
    pub fn grid(&self) -> (f64, f64, usize) {
        (self.lo, self.hi, self.counts.len())
    }

    /// Approximate in-memory footprint in bytes — fixed by the bin count.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.counts.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ks_two_sample, percentiles, vigintile_grid};

    fn exact_vs_sketch(values: &[f64]) -> f64 {
        let mut s = QuantileSketch::unit();
        s.extend(values.iter().copied());
        let qs = vigintile_grid();
        let exact = percentiles(values, &qs);
        let mut sketched = Vec::new();
        s.extend_percentiles(&qs, &mut sketched);
        exact
            .iter()
            .zip(&sketched)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn sketches_with_empty_bins_equal_themselves() {
        // Empty bins hold NaN min/max sentinels; under derived (IEEE)
        // equality a sketch would never equal its own clone. Equality is
        // bit-identical instead — the semantics every merge-determinism
        // guarantee is stated in.
        let mut s = QuantileSketch::unit();
        s.insert(0.25);
        assert_eq!(s, s.clone());
        let mut other = QuantileSketch::unit();
        other.insert(0.75);
        assert_ne!(s, other);
    }

    #[test]
    fn quantile_error_within_bin_width_on_uniform_grid() {
        let values: Vec<f64> = (0..10_000).map(|i| (i % 997) as f64 / 997.0).collect();
        let err = exact_vs_sketch(&values);
        assert!(err <= 1.0 / DEFAULT_SKETCH_BINS as f64 + 1e-12, "err={err}");
    }

    #[test]
    fn all_tied_values_are_exact() {
        let values = vec![0.3777; 500];
        assert_eq!(exact_vs_sketch(&values), 0.0);
    }

    #[test]
    fn singleton_and_empty_sketches() {
        let mut s = QuantileSketch::unit();
        assert!(s.query(50.0).is_nan());
        let mut out = Vec::new();
        s.extend_percentiles(&[0.0, 50.0, 100.0], &mut out);
        assert_eq!(out, vec![0.0, 0.0, 0.0], "empty batch is neutral");
        s.insert(0.42);
        assert_eq!(s.query(0.0), 0.42);
        assert_eq!(s.query(100.0), 0.42);
    }

    #[test]
    fn nan_values_are_dropped_and_counted() {
        let mut s = QuantileSketch::unit();
        s.extend([0.1, f64::NAN, 0.9, f64::INFINITY]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.query(0.0), 0.1);
        assert_eq!(s.query(100.0), 0.9);
    }

    #[test]
    fn out_of_range_values_clamp_and_widen_the_bound() {
        let mut s = QuantileSketch::unit();
        s.extend([-0.5, 0.5, 0.9999, 1.5]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.clamped(), 2);
        // Extrema are preserved verbatim, so q=0/100 stay exact even for
        // clamped values.
        assert_eq!(s.query(0.0), -0.5);
        assert_eq!(s.query(100.0), 1.5);
        // 0.9999 and the clamped 1.5 share the top bin, stretching its
        // observed span far beyond one grid step — the bound must widen.
        assert!(s.value_error_bound() >= 0.5, "{}", s.value_error_bound());
    }

    #[test]
    fn merge_equals_streaming_bit_identically() {
        let all: Vec<f64> = (0..2000)
            .map(|i| ((i * 37) % 1000) as f64 / 1000.0)
            .collect();
        let mut single = QuantileSketch::unit();
        single.extend(all.iter().copied());
        let mut merged = QuantileSketch::unit();
        for chunk in all.chunks(170) {
            let mut part = QuantileSketch::unit();
            part.extend(chunk.iter().copied());
            merged.merge(&part).unwrap();
        }
        assert_eq!(single, merged);
    }

    #[test]
    fn merge_rejects_mismatched_grids() {
        let mut a = QuantileSketch::new(0.0, 1.0, 64);
        let b = QuantileSketch::new(0.0, 1.0, 128);
        assert!(a.merge(&b).is_err());
        let mut c = EcdfSketch::new(0.0, 1.0, 64);
        let d = EcdfSketch::new(0.0, 2.0, 64);
        assert!(c.merge(&d).is_err());
        assert!(c.ks_distance(&d).is_err());
    }

    #[test]
    fn ecdf_ks_matches_exact_on_spread_samples() {
        let a: Vec<f64> = (0..800).map(|i| ((i * 13) % 800) as f64 / 800.0).collect();
        let b: Vec<f64> = (0..700)
            .map(|i| (((i * 17) % 700) as f64 / 700.0) * 0.5)
            .collect();
        let exact = ks_two_sample(&a, &b);
        let sa = EcdfSketch::from_values(&a, 0.0, 1.0, DEFAULT_SKETCH_BINS);
        let sb = EcdfSketch::from_values(&b, 0.0, 1.0, DEFAULT_SKETCH_BINS);
        let sketched = sa.ks_test(&sb).unwrap();
        let bound = sa.max_bin_mass() + sb.max_bin_mass();
        assert!(
            (exact.statistic - sketched.statistic).abs() <= bound + 1e-12,
            "exact D={} sketched D={} bound={bound}",
            exact.statistic,
            sketched.statistic
        );
        assert!((exact.p_value - sketched.p_value).abs() < 0.05);
    }

    #[test]
    fn ecdf_empty_sketch_yields_no_evidence() {
        let empty = EcdfSketch::unit();
        let full = EcdfSketch::from_values(&[0.2, 0.8], 0.0, 1.0, DEFAULT_SKETCH_BINS);
        let out = empty.ks_test(&full).unwrap();
        assert_eq!(out.statistic, 0.0);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn ecdf_cdf_is_exact_at_bin_edges() {
        let values = [0.1, 0.2, 0.3, 0.9];
        let s = EcdfSketch::from_values(&values, 0.0, 1.0, 10);
        // Floor-binning: 0.1 → bin 1, 0.2 → bin 2, 0.3 → bin 2 (float
        // division lands a hair under 3), 0.9 → bin 9. The cumulative
        // fractions at bin edges are exact for the quantized sample.
        assert!((s.cdf_at_bin(1) - 0.25).abs() < 1e-12);
        assert!((s.cdf_at_bin(2) - 0.75).abs() < 1e-12);
        assert!((s.cdf_at_bin(9) - 1.0).abs() < 1e-12);
        assert_eq!(s.max_bin_mass(), 0.5, "bin 2 holds two of four values");
    }

    #[test]
    fn sketches_round_trip_through_serde() {
        let mut q = QuantileSketch::unit();
        q.extend([0.25, 0.5, f64::NAN, 1.5]);
        let json = serde_json::to_string(&q).unwrap();
        let back: QuantileSketch = serde_json::from_str(&json).unwrap();
        // NaN sentinels in empty bins break bitwise PartialEq; compare the
        // observable behaviour instead.
        assert_eq!(back.count(), q.count());
        assert_eq!(back.dropped(), q.dropped());
        assert_eq!(back.clamped(), q.clamped());
        for q_pct in [0.0, 25.0, 50.0, 75.0, 100.0] {
            assert_eq!(back.query(q_pct).to_bits(), q.query(q_pct).to_bits());
        }

        let mut e = EcdfSketch::unit();
        e.extend([0.25, 0.5, f64::NAN]);
        let json = serde_json::to_string(&e).unwrap();
        let back: EcdfSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn footprint_is_independent_of_stream_length() {
        let mut s = QuantileSketch::unit();
        let before = s.approx_bytes();
        s.extend((0..100_000).map(|i| (i % 1000) as f64 / 1000.0));
        assert_eq!(s.approx_bytes(), before);
    }
}
