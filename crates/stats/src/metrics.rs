//! Classification and regression metrics used in the paper's evaluation.

/// Fraction of positions where `predicted == actual`.
///
/// Returns 0.0 for empty input. Panics if lengths differ.
pub fn accuracy(predicted: &[usize], actual: &[usize]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    hits as f64 / predicted.len() as f64
}

/// Mean absolute error between two numeric slices.
pub fn mean_absolute_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Confusion counts for a binary problem with positive class `1`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

/// Builds binary confusion counts; any nonzero label is treated as positive.
pub fn confusion_binary(predicted: &[bool], actual: &[bool]) -> BinaryConfusion {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let mut c = BinaryConfusion::default();
    for (&p, &a) in predicted.iter().zip(actual) {
        match (p, a) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, false) => c.tn += 1,
            (false, true) => c.fn_ += 1,
        }
    }
    c
}

/// Precision, recall and F1 for the positive class.
///
/// Degenerate denominators yield 0.0 (consistent with scikit-learn's
/// `zero_division=0`).
pub fn precision_recall_f1(c: &BinaryConfusion) -> (f64, f64, f64) {
    let precision = if c.tp + c.fp == 0 {
        0.0
    } else {
        c.tp as f64 / (c.tp + c.fp) as f64
    };
    let recall = if c.tp + c.fn_ == 0 {
        0.0
    } else {
        c.tp as f64 / (c.tp + c.fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    (precision, recall, f1)
}

/// F1 score of boolean predictions against boolean truth.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    precision_recall_f1(&confusion_binary(predicted, actual)).2
}

/// Area under the ROC curve for binary labels via the rank statistic
/// (equivalent to the Mann–Whitney U normalization), with midrank tie
/// handling.
///
/// `scores[i]` is the predicted probability of the positive class,
/// `labels[i]` is the true class. Returns 0.5 when either class is absent.
pub fn auc_binary(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Midranks over tied score groups.
    let mut rank_sum_pos = 0.0;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            if labels[k] {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn mae_basic() {
        assert_eq!(mean_absolute_error(&[1.0, 2.0], &[2.0, 0.0]), 1.5);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts() {
        let c = confusion_binary(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(
            c,
            BinaryConfusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
    }

    #[test]
    fn perfect_f1() {
        assert_eq!(f1_score(&[true, false], &[true, false]), 1.0);
    }

    #[test]
    fn degenerate_f1_is_zero() {
        // No predicted positives and no actual positives.
        assert_eq!(f1_score(&[false, false], &[false, false]), 0.0);
    }

    #[test]
    fn precision_recall_hand_case() {
        let c = BinaryConfusion {
            tp: 6,
            fp: 2,
            tn: 0,
            fn_: 4,
        };
        let (p, r, f1) = precision_recall_f1(&c);
        assert!((p - 0.75).abs() < 1e-12);
        assert!((r - 0.6).abs() < 1e-12);
        assert!((f1 - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_separation() {
        let auc = auc_binary(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]);
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn auc_inverted_scores() {
        let auc = auc_binary(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]);
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn auc_random_ties_give_half() {
        let auc = auc_binary(&[0.5, 0.5, 0.5, 0.5], &[true, false, true, false]);
        assert!((auc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_returns_half() {
        assert_eq!(auc_binary(&[0.3, 0.7], &[true, true]), 0.5);
    }

    #[test]
    fn auc_matches_hand_computed_case() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}; pairs won: (0.8>0.6),(0.8>0.2),(0.4<0.6),(0.4>0.2) => 3/4
        let auc = auc_binary(&[0.8, 0.4, 0.6, 0.2], &[true, true, false, false]);
        assert!((auc - 0.75).abs() < 1e-12);
    }
}
