//! Two-sample hypothesis tests used by the validator and the baselines.

use crate::special::{chi2_sf, kolmogorov_sf};

/// Result of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestOutcome {
    /// The test statistic (KS D statistic, or the χ² statistic).
    pub statistic: f64,
    /// Asymptotic p-value under the null hypothesis of equal distributions.
    pub p_value: f64,
}

impl TestOutcome {
    /// Whether the null hypothesis is rejected at significance level `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Bonferroni-corrected per-test significance level for `n_tests` tests at
/// family-wise level `alpha`.
pub fn bonferroni_alpha(alpha: f64, n_tests: usize) -> f64 {
    if n_tests == 0 {
        alpha
    } else {
        alpha / n_tests as f64
    }
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Computes the maximum distance `D` between the empirical CDFs of the two
/// samples and the asymptotic p-value via the Kolmogorov distribution with
/// the standard small-sample correction
/// `λ = (√n_e + 0.12 + 0.11/√n_e) · D` where `n_e = n·m/(n+m)`.
///
/// Non-finite values (NaN propagated from corrupted data) are excluded from
/// both samples; an empty sample yields `D = 0, p = 1` (no evidence).
pub fn ks_two_sample(sample_a: &[f64], sample_b: &[f64]) -> TestOutcome {
    let mut a: Vec<f64> = sample_a.iter().copied().filter(|v| v.is_finite()).collect();
    let mut b: Vec<f64> = sample_b.iter().copied().filter(|v| v.is_finite()).collect();
    if a.is_empty() || b.is_empty() {
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    a.sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite values compare"));
    b.sort_unstable_by(|x, y| x.partial_cmp(y).expect("finite values compare"));

    let (n, m) = (a.len(), b.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let x = a[i].min(b[j]);
        while i < n && a[i] <= x {
            i += 1;
        }
        while j < m && b[j] <= x {
            j += 1;
        }
        let fa = i as f64 / n as f64;
        let fb = j as f64 / m as f64;
        d = d.max((fa - fb).abs());
    }

    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    TestOutcome {
        statistic: d,
        p_value: kolmogorov_sf(lambda),
    }
}

/// Pearson χ² two-sample test on category counts.
///
/// Given observed counts per category for two samples, tests the null
/// hypothesis that both samples are drawn from the same categorical
/// distribution (test of homogeneity). Categories with zero total count are
/// dropped. Degrees of freedom: `(#categories − 1)`.
pub fn chi2_test_counts(counts_a: &[f64], counts_b: &[f64]) -> TestOutcome {
    assert_eq!(
        counts_a.len(),
        counts_b.len(),
        "count vectors must align on categories"
    );
    let total_a: f64 = counts_a.iter().sum();
    let total_b: f64 = counts_b.iter().sum();
    if total_a == 0.0 || total_b == 0.0 {
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let grand = total_a + total_b;
    let mut stat = 0.0;
    let mut used_categories = 0usize;
    for (&oa, &ob) in counts_a.iter().zip(counts_b) {
        let col = oa + ob;
        if col == 0.0 {
            continue;
        }
        used_categories += 1;
        let ea = col * total_a / grand;
        let eb = col * total_b / grand;
        stat += (oa - ea).powi(2) / ea + (ob - eb).powi(2) / eb;
    }
    if used_categories < 2 {
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let df = (used_categories - 1) as f64;
    TestOutcome {
        statistic: stat,
        p_value: chi2_sf(stat, df),
    }
}

/// χ² goodness-of-fit of observed counts against expected counts.
///
/// Used by BBSEh to compare predicted-class histograms; `expected` is scaled
/// to the total of `observed`.
pub fn chi2_gof_test(observed: &[f64], expected: &[f64]) -> TestOutcome {
    assert_eq!(observed.len(), expected.len());
    let total_obs: f64 = observed.iter().sum();
    let total_exp: f64 = expected.iter().sum();
    if total_obs == 0.0 || total_exp == 0.0 {
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let scale = total_obs / total_exp;
    let mut stat = 0.0;
    let mut used = 0usize;
    for (&o, &e) in observed.iter().zip(expected) {
        let mut e = e * scale;
        if e <= 0.0 {
            if o <= 0.0 {
                continue;
            }
            // Category never seen in the reference: the textbook expected
            // count is 0 and the χ² contribution diverges. Substitute a
            // half-count pseudo-expectation (Haldane–Anscombe correction)
            // so the term stays a genuine (o−e)²/e contribution and the
            // statistic remains χ²-distributed to first order.
            e = 0.5 * scale;
        }
        stat += (o - e).powi(2) / e;
        used += 1;
    }
    if used < 2 {
        return TestOutcome {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    TestOutcome {
        statistic: stat,
        p_value: chi2_sf(stat, (used - 1) as f64),
    }
}

#[cfg(test)]
#[allow(clippy::module_inception)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_distr::StandardNormal;

    fn normal_sample(n: usize, mean: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| mean + <f64 as From<f32>>::from(rng.sample::<f32, _>(StandardNormal)))
            .collect()
    }

    #[test]
    fn ks_identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let out = ks_two_sample(&a, &a);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        let out = ks_two_sample(&a, &b);
        assert!((out.statistic - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_detects_mean_shift_on_large_samples() {
        let a = normal_sample(2000, 0.0, 1);
        let b = normal_sample(2000, 0.5, 2);
        let out = ks_two_sample(&a, &b);
        assert!(out.p_value < 1e-6, "p={}", out.p_value);
    }

    #[test]
    fn ks_same_distribution_usually_not_rejected() {
        let a = normal_sample(1000, 0.0, 3);
        let b = normal_sample(1000, 0.0, 4);
        let out = ks_two_sample(&a, &b);
        assert!(out.p_value > 0.01, "p={}", out.p_value);
    }

    #[test]
    fn ks_ignores_nan_values() {
        let a = [1.0, 2.0, f64::NAN, 3.0];
        let b = [1.0, 2.0, 3.0];
        let out = ks_two_sample(&a, &b);
        assert_eq!(out.statistic, 0.0);
    }

    #[test]
    fn ks_empty_sample_yields_no_evidence() {
        let out = ks_two_sample(&[], &[1.0, 2.0]);
        assert_eq!(out.p_value, 1.0);
    }

    #[test]
    fn ks_statistic_known_small_case() {
        // ECDF distance between {1,2} and {2,3}: at x in [2,3), F_a=1, F_b=0.5.
        let out = ks_two_sample(&[1.0, 2.0], &[2.0, 3.0]);
        assert!((out.statistic - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_one_element_samples_are_well_defined() {
        // n = m = 1 gives n_e = 0.5, the smallest possible effective sample;
        // the scaled statistic λ lands deep in the small-λ regime where the
        // survival function used to return garbage. Identical singletons must
        // give no evidence, distinct ones a finite, non-significant p-value.
        let same = ks_two_sample(&[0.3], &[0.3]);
        assert_eq!(same.statistic, 0.0);
        assert!((same.p_value - 1.0).abs() < 1e-9);

        let diff = ks_two_sample(&[0.0], &[1.0]);
        assert!((diff.statistic - 1.0).abs() < 1e-12);
        assert!(diff.p_value.is_finite());
        assert!(
            (0.2..=1.0).contains(&diff.p_value),
            "one observation apiece can never be significant, p={}",
            diff.p_value
        );
    }

    #[test]
    fn ks_all_tied_samples_are_well_defined() {
        // Every value identical within and across samples: D = 0, p = 1.
        let tied = vec![0.7; 50];
        let out = ks_two_sample(&tied, &tied);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-9);

        // Two distinct constants: ECDFs are disjoint step functions, D = 1,
        // and the p-value must be a genuine small number, not NaN.
        let a = vec![0.0; 50];
        let b = vec![1.0; 50];
        let out = ks_two_sample(&a, &b);
        assert!((out.statistic - 1.0).abs() < 1e-12);
        assert!(out.p_value.is_finite());
        assert!(out.p_value < 1e-6, "p={}", out.p_value);
    }

    #[test]
    fn ks_all_nan_sample_yields_no_evidence_not_nan() {
        // A fully-corrupted column filters down to an empty sample; the
        // outcome must stay finite so it cannot poison monitor EWMAs.
        let a = [f64::NAN, f64::NAN, f64::NAN];
        let b = [1.0, 2.0, 3.0];
        for out in [ks_two_sample(&a, &b), ks_two_sample(&a, &a)] {
            assert_eq!(out.statistic, 0.0);
            assert_eq!(out.p_value, 1.0);
            assert!(out.statistic.is_finite() && out.p_value.is_finite());
        }
    }

    #[test]
    fn chi2_identical_counts_not_rejected() {
        let out = chi2_test_counts(&[50.0, 50.0], &[50.0, 50.0]);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn chi2_shifted_counts_rejected() {
        let out = chi2_test_counts(&[90.0, 10.0], &[10.0, 90.0]);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn chi2_hand_computed_statistic() {
        // 2x2 homogeneity: a=[10,20], b=[20,10]; expected all 15.
        let out = chi2_test_counts(&[10.0, 20.0], &[20.0, 10.0]);
        let expected = (25.0 / 15.0) * 4.0;
        assert!((out.statistic - expected).abs() < 1e-9);
    }

    #[test]
    fn chi2_drops_empty_categories() {
        let a = [10.0, 0.0, 10.0];
        let b = [10.0, 0.0, 10.0];
        let out = chi2_test_counts(&a, &b);
        assert_eq!(out.statistic, 0.0);
    }

    #[test]
    fn chi2_gof_matches_counts_not_rejected() {
        let out = chi2_gof_test(&[52.0, 48.0], &[50.0, 50.0]);
        assert!(out.p_value > 0.5);
    }

    #[test]
    fn chi2_gof_detects_label_shift() {
        let out = chi2_gof_test(&[95.0, 5.0], &[50.0, 50.0]);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn chi2_gof_handles_unseen_category() {
        let out = chi2_gof_test(&[50.0, 50.0, 10.0], &[50.0, 50.0, 0.0]);
        assert!(out.statistic > 0.0);
        assert!(out.p_value < 0.05);
    }

    #[test]
    fn chi2_gof_unseen_category_uses_pseudo_count_not_o_squared() {
        let observed = [50.0, 50.0, 10.0];
        let expected = [50.0, 50.0, 0.0];
        let out = chi2_gof_test(&observed, &expected);
        // scale = 110/100; seen categories contribute (50-55)^2/55 each,
        // the unseen one contributes (10-0.55)^2/0.55 — not 10^2 = 100.
        let scale = 1.1;
        let e_pseudo = 0.5 * scale;
        let want = 2.0 * (50.0f64 - 55.0).powi(2) / 55.0 + (10.0f64 - e_pseudo).powi(2) / e_pseudo;
        assert!(
            (out.statistic - want).abs() < 1e-9,
            "statistic {} vs {want}",
            out.statistic
        );
    }

    #[test]
    fn chi2_gof_unseen_and_unobserved_category_is_ignored() {
        // Third category absent from both: must not affect the statistic.
        let with = chi2_gof_test(&[52.0, 48.0, 0.0], &[50.0, 50.0, 0.0]);
        let without = chi2_gof_test(&[52.0, 48.0], &[50.0, 50.0]);
        assert_eq!(with.statistic, without.statistic);
        assert_eq!(with.p_value, without.p_value);
    }

    #[test]
    fn bonferroni_divides_alpha() {
        assert_eq!(bonferroni_alpha(0.05, 5), 0.01);
        assert_eq!(bonferroni_alpha(0.05, 0), 0.05);
    }

    #[test]
    fn rejects_at_uses_strict_inequality() {
        let t = TestOutcome {
            statistic: 1.0,
            p_value: 0.05,
        };
        assert!(!t.rejects_at(0.05));
        assert!(t.rejects_at(0.051));
    }
}
