//! Adversarial text corruption for the tweets dataset.

use crate::{choose_columns, sample_fraction, ErrorGen};
use lvp_dataframe::{DataFrame, Schema};
use rand::rngs::StdRng;
use rand::Rng;

/// Simulates an adversarial attack where authors re-spell their text in
/// 'leetspeak' to evade the classifier (the paper's example: "hello world"
/// → "h3110 w041d").
#[derive(Debug, Clone)]
pub struct AdversarialLeetspeak {
    candidate_columns: Vec<usize>,
}

impl AdversarialLeetspeak {
    /// Targets all text columns of the schema.
    pub fn all_text(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.text_columns(),
        }
    }
}

/// Leetspeak character substitutions used by the attack.
pub fn to_leetspeak(text: &str) -> String {
    text.chars()
        .map(|c| match c.to_ascii_lowercase() {
            'e' => '3',
            'l' => '1',
            'o' => '0',
            'a' => '4',
            't' => '7',
            's' => '5',
            'i' => '1',
            other => other,
        })
        .collect()
}

impl ErrorGen for AdversarialLeetspeak {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "adversarial_leetspeak"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let values = out.column_mut(col).as_text_mut().expect("text candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(s) = v.take() {
                        *v = Some(to_leetspeak(&s));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::{CellValue, ColumnType, DataFrameBuilder, Field, Schema};
    use rand::SeedableRng;

    fn text_frame(n: usize) -> DataFrame {
        let schema = Schema::new(vec![Field::new("msg", ColumnType::Text)]).unwrap();
        let mut b = DataFrameBuilder::new(schema, vec!["a".into(), "b".into()]);
        for i in 0..n {
            b.push_row(
                vec![CellValue::Text("hello world total loss".into())],
                (i % 2) as u32,
            )
            .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn leetspeak_substitutions_match_paper_example() {
        assert_eq!(to_leetspeak("hello world"), "h3110 w0r1d");
    }

    #[test]
    fn corruption_rewrites_some_rows() {
        let df = text_frame(200);
        let gen = AdversarialLeetspeak::all_text(df.schema());
        let mut rng = StdRng::seed_from_u64(7);
        let out = gen.corrupt(&df, &mut rng);
        let texts = out.column(0).as_text().unwrap();
        let rewritten = texts
            .iter()
            .flatten()
            .filter(|s| s.contains('3') || s.contains('0'))
            .count();
        assert!(rewritten > 0);
        assert_eq!(out.n_rows(), 200);
    }

    #[test]
    fn original_frame_unchanged() {
        let df = text_frame(20);
        let gen = AdversarialLeetspeak::all_text(df.schema());
        let mut rng = StdRng::seed_from_u64(8);
        let _ = gen.corrupt(&df, &mut rng);
        for t in df.column(0).as_text().unwrap() {
            assert_eq!(t.as_deref(), Some("hello world total loss"));
        }
    }
}
