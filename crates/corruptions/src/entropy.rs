//! Model-entropy-based missing values (§6 "Model-entropy based missing
//! values"): an active-learning-flavoured corruption that discards values
//! from the examples the classifier is *most certain* about.
//!
//! Uncertainty is measured as `1 − p_max` where `p_max` is the highest class
//! probability the model assigns to the example; values are dropped from
//! the least-uncertain ("easy") samples. This makes the corruption depend
//! on the deployed model's behaviour, which is why it needs
//! [`ErrorGen::corrupt_with_model`].

use crate::{sample_fraction, ErrorGen};
use lvp_dataframe::{DataFrame, Schema};
use lvp_models::BlackBoxModel;
use rand::rngs::StdRng;
use rand::Rng;

/// Drops values from the examples the model classifies most confidently.
#[derive(Debug, Clone)]
pub struct EntropyMissingValues {
    candidate_columns: Vec<usize>,
}

impl EntropyMissingValues {
    /// Targets all categorical and numeric columns of the schema.
    pub fn all_tabular(schema: &Schema) -> Self {
        let mut cols = schema.categorical_columns();
        cols.extend(schema.numeric_columns());
        Self {
            candidate_columns: cols,
        }
    }
}

impl ErrorGen for EntropyMissingValues {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "entropy_missing_values"
    }

    /// Without a model the generator degrades to uniformly random missing
    /// values over its candidate columns.
    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        if self.candidate_columns.is_empty() {
            return out;
        }
        let col = self.candidate_columns[rng.gen_range(0..self.candidate_columns.len())];
        let p = sample_fraction(rng);
        for row in 0..out.n_rows() {
            if rng.gen::<f64>() < p {
                out.column_mut(col).set_null(row);
            }
        }
        out
    }

    fn corrupt_with_model(
        &self,
        df: &DataFrame,
        model: Option<&dyn BlackBoxModel>,
        rng: &mut StdRng,
    ) -> DataFrame {
        let Some(model) = model else {
            return self.corrupt(df, rng);
        };
        if self.candidate_columns.is_empty() || df.n_rows() == 0 {
            return df.clone();
        }
        let proba = model.predict_proba(df);
        // Uncertainty 1 - p_max per row; ascending sort puts "easy"
        // (confidently classified) rows first.
        let mut order: Vec<(usize, f64)> = proba
            .row_iter()
            .enumerate()
            .map(|(i, row)| {
                let p_max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                (i, 1.0 - p_max)
            })
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

        let col = self.candidate_columns[rng.gen_range(0..self.candidate_columns.len())];
        let p = sample_fraction(rng);
        let n_drop = ((df.n_rows() as f64) * p).round() as usize;
        let mut out = df.clone();
        for &(row, _) in order.iter().take(n_drop) {
            out.column_mut(col).set_null(row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use lvp_linalg::DenseMatrix;
    use rand::SeedableRng;

    /// A fake model that is confident on even rows, uncertain on odd rows.
    struct AlternatingConfidence;

    impl BlackBoxModel for AlternatingConfidence {
        fn predict_proba(&self, data: &DataFrame) -> DenseMatrix {
            let mut m = DenseMatrix::zeros(data.n_rows(), 2);
            for r in 0..data.n_rows() {
                // toy_frame stores row index in the numeric column.
                let idx = data.column(0).as_numeric().unwrap()[r].unwrap_or(1.0) as usize;
                let p = if idx.is_multiple_of(2) { 0.99 } else { 0.55 };
                m.set(r, 0, p);
                m.set(r, 1, 1.0 - p);
            }
            m
        }

        fn n_classes(&self) -> usize {
            2
        }

        fn name(&self) -> &str {
            "fake"
        }
    }

    #[test]
    fn drops_values_from_confident_rows_first() {
        let df = toy_frame(100);
        let gen = EntropyMissingValues::all_tabular(df.schema());
        let model = AlternatingConfidence;
        // Try several seeds; whenever fewer than half the rows are dropped,
        // every dropped row must be an even ("easy") one.
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = gen.corrupt_with_model(&df, Some(&model), &mut rng);
            let mut dropped_rows = Vec::new();
            for col in 0..out.n_cols() {
                for r in 0..out.n_rows() {
                    let orig_present = !matches!(df.cell(r, col), lvp_dataframe::CellValue::Null);
                    let now_missing = matches!(out.cell(r, col), lvp_dataframe::CellValue::Null);
                    if orig_present && now_missing {
                        dropped_rows.push(r);
                    }
                }
            }
            if !dropped_rows.is_empty() && dropped_rows.len() <= 50 {
                assert!(
                    dropped_rows.iter().all(|r| r % 2 == 0),
                    "seed {seed}: dropped odd (uncertain) rows {dropped_rows:?}"
                );
            }
        }
    }

    #[test]
    fn without_model_falls_back_to_random_missing() {
        let df = toy_frame(100);
        let gen = EntropyMissingValues::all_tabular(df.schema());
        let mut rng = StdRng::seed_from_u64(1);
        let out = gen.corrupt_with_model(&df, None, &mut rng);
        assert_eq!(out.n_rows(), 100);
    }

    #[test]
    fn preserves_shape_and_labels() {
        let df = toy_frame(60);
        let gen = EntropyMissingValues::all_tabular(df.schema());
        let mut rng = StdRng::seed_from_u64(2);
        let out = gen.corrupt_with_model(&df, Some(&AlternatingConfidence), &mut rng);
        assert_eq!(out.labels(), df.labels());
        assert_eq!(out.schema(), df.schema());
    }
}
