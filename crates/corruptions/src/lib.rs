//! Programmatic error generators simulating dataset shift and data errors.
//!
//! The paper's key departure from prior work: instead of assuming a
//! parametric form of dataset shift, the engineer *programmatically
//! specifies* the kinds of errors they expect (missing values, outliers,
//! swapped columns, scaling bugs, adversarial text, image noise/rotation,
//! …) and the system learns how each affects the black box model's outputs.
//!
//! Every generator implements [`ErrorGen`]: given a frame, it returns a
//! corrupted *copy*, choosing its own random magnitude per invocation
//! (which columns, what fraction of cells, how strong) — matching §6's
//! protocol of "randomly chosen magnitudes". The absence of errors is
//! represented by sometimes-small sampled fractions, and harness code can
//! additionally mix in uncorrupted copies.
//!
//! The generators whose mechanism needs the model itself (the paper's
//! model-entropy-based missing values) receive it through
//! [`ErrorGen::corrupt_with_model`].

mod entropy;
mod extended;
mod image;
mod mixture;
mod tabular;
mod text;

pub use entropy::EntropyMissingValues;
pub use extended::{
    extended_tabular_suite, CategoryFlip, ConstantFill, DuplicateRows, SelectionBias,
};
pub use image::{ImageNoise, ImageRotation};
pub use mixture::{CleanCopy, Mixture};
pub use tabular::{
    EncodingErrors, FlippedSign, MissingValues, Outliers, Scaling, Smearing, SwappedColumns, Typos,
};
pub use text::AdversarialLeetspeak;

use lvp_dataframe::{DataFrame, Schema};
use lvp_models::BlackBoxModel;
use rand::rngs::StdRng;

/// A programmatic error generator.
///
/// Implementations must be cheap to apply repeatedly: the performance
/// predictor corrupts the held-out test set hundreds to thousands of times
/// during training (Algorithm 1).
pub trait ErrorGen: Send + Sync {
    /// Short, stable identifier (used in experiment reports).
    fn name(&self) -> &str;

    /// The column indices this generator may write to when corrupting `df`.
    ///
    /// Frames are copy-on-write ([`DataFrame::column_mut`] materializes a
    /// private copy of just the written column), so a corrupted copy shares
    /// the storage of every column *not* in this set with its input. Row
    /// re-selection generators (selection bias, duplication) return an empty
    /// set: they rebuild every column but never alter cell values.
    ///
    /// The default conservatively declares every column.
    fn touched_columns(&self, df: &DataFrame) -> Vec<usize> {
        (0..df.n_cols()).collect()
    }

    /// Returns a corrupted copy of `df`, sampling the corruption magnitude
    /// (columns, fraction, strength) internally. Implementations clone the
    /// input (cheap: column storage is shared) and mutate only the columns
    /// declared by [`ErrorGen::touched_columns`].
    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame;

    /// Like [`ErrorGen::corrupt`], but with access to the deployed model
    /// for generators whose corruption depends on model behaviour.
    fn corrupt_with_model(
        &self,
        df: &DataFrame,
        _model: Option<&dyn BlackBoxModel>,
        rng: &mut StdRng,
    ) -> DataFrame {
        self.corrupt(df, rng)
    }
}

/// The paper's four "known" tabular error types (§6.2.1): missing values,
/// outliers, swapped columns and scaling.
pub fn standard_tabular_suite(schema: &Schema) -> Vec<Box<dyn ErrorGen>> {
    vec![
        Box::new(MissingValues::all_categorical(schema)),
        Box::new(Outliers::all_numeric(schema)),
        Box::new(SwappedColumns::all_pairs(schema)),
        Box::new(Scaling::all_numeric(schema)),
    ]
}

/// The paper's three "unknown" tabular error types (§6.2.2): typos,
/// smearing and flipped signs — used for evaluating generalization to
/// errors the validator never trained on.
pub fn unknown_tabular_suite(schema: &Schema) -> Vec<Box<dyn ErrorGen>> {
    vec![
        Box::new(Typos::all_categorical(schema)),
        Box::new(Smearing::all_numeric(schema)),
        Box::new(FlippedSign::all_numeric(schema)),
    ]
}

/// The image error types of §6: additive Gaussian noise and rotations.
pub fn image_suite(schema: &Schema) -> Vec<Box<dyn ErrorGen>> {
    vec![
        Box::new(ImageNoise::all_images(schema)),
        Box::new(ImageRotation::all_images(schema)),
    ]
}

/// The adversarial-text suite for the tweets dataset.
pub fn text_suite(schema: &Schema) -> Vec<Box<dyn ErrorGen>> {
    vec![
        Box::new(AdversarialLeetspeak::all_text(schema)),
        Box::new(EncodingErrors::all_text(schema)),
    ]
}

/// Picks the fraction of rows to corrupt — uniform over (0, 1), matching
/// the paper's randomly sampled corruption probabilities.
pub(crate) fn sample_fraction(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    rng.gen_range(0.02..1.0)
}

/// Chooses a non-empty random subset of the candidate columns (the paper
/// corrupts "1 to n" randomly chosen columns).
pub(crate) fn choose_columns(candidates: &[usize], rng: &mut StdRng) -> Vec<usize> {
    use rand::seq::SliceRandom;
    use rand::Rng;
    if candidates.is_empty() {
        return Vec::new();
    }
    let k = rng.gen_range(1..=candidates.len());
    let mut cols = candidates.to_vec();
    cols.shuffle(rng);
    cols.truncate(k);
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use rand::SeedableRng;

    #[test]
    fn suites_match_schema_capabilities() {
        let df = toy_frame(4);
        let std = standard_tabular_suite(df.schema());
        assert_eq!(std.len(), 4);
        let unk = unknown_tabular_suite(df.schema());
        assert_eq!(unk.len(), 3);
    }

    #[test]
    fn choose_columns_is_nonempty_subset() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let cols = choose_columns(&[3, 5, 9], &mut rng);
            assert!(!cols.is_empty() && cols.len() <= 3);
            assert!(cols.iter().all(|c| [3, 5, 9].contains(c)));
        }
        assert!(choose_columns(&[], &mut rng).is_empty());
    }

    #[test]
    fn sample_fraction_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let f = sample_fraction(&mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    fn all_tabular_generators(df: &DataFrame) -> Vec<Box<dyn ErrorGen>> {
        let mut gens = standard_tabular_suite(df.schema());
        gens.extend(unknown_tabular_suite(df.schema()));
        gens.extend(extended_tabular_suite(df.schema()));
        gens.push(Box::new(EntropyMissingValues::all_tabular(df.schema())));
        gens.push(Box::new(CleanCopy));
        gens
    }

    #[test]
    fn undeclared_columns_share_storage_after_corruption() {
        let df = toy_frame(120);
        let mut rng = StdRng::seed_from_u64(5);
        for g in all_tabular_generators(&df) {
            let touched = g.touched_columns(&df);
            // Row re-selectors (empty touched set, except CleanCopy) rebuild
            // storage even when the row count happens to be unchanged.
            if touched.is_empty() && g.name() != "clean" {
                continue;
            }
            for _ in 0..5 {
                let out = g.corrupt(&df, &mut rng);
                if out.n_rows() != df.n_rows() {
                    continue;
                }
                for col in 0..df.n_cols() {
                    if !touched.contains(&col) {
                        assert!(
                            df.shares_column_storage(&out, col),
                            "{} copied undeclared column {col}",
                            g.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn touched_columns_declares_every_mutated_column() {
        let df = toy_frame(90);
        for g in all_tabular_generators(&df) {
            let touched = g.touched_columns(&df);
            for seed in 0..10u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let out = g.corrupt(&df, &mut rng);
                if out.n_rows() != df.n_rows() {
                    continue;
                }
                for col in 0..df.n_cols() {
                    if out.column(col) != df.column(col) {
                        assert!(
                            touched.contains(&col),
                            "{} mutated undeclared column {col} (seed {seed})",
                            g.name()
                        );
                    }
                }
            }
        }
    }
}
