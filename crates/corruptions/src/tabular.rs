//! Error generators for tabular (numeric + categorical) attributes.

use crate::{choose_columns, sample_fraction, ErrorGen};
use lvp_dataframe::{DataFrame, Schema};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Introduces missing values at random into categorical columns
/// (the paper's first error type; e.g. nulls from broken data integration).
#[derive(Debug, Clone)]
pub struct MissingValues {
    candidate_columns: Vec<usize>,
}

impl MissingValues {
    /// Targets all categorical columns of the schema.
    pub fn all_categorical(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.categorical_columns(),
        }
    }

    /// Targets an explicit set of column indices.
    pub fn for_columns(columns: Vec<usize>) -> Self {
        Self {
            candidate_columns: columns,
        }
    }
}

impl ErrorGen for MissingValues {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "missing_values"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            for row in 0..out.n_rows() {
                if rng.gen::<f64>() < p {
                    out.column_mut(col).set_null(row);
                }
            }
        }
        out
    }
}

/// Adds Gaussian noise centered at the data point with a standard deviation
/// scaled from `[2, 5]` column standard deviations (the paper's outlier
/// generator).
#[derive(Debug, Clone)]
pub struct Outliers {
    candidate_columns: Vec<usize>,
}

impl Outliers {
    /// Targets all numeric columns of the schema.
    pub fn all_numeric(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.numeric_columns(),
        }
    }

    /// Targets an explicit set of column indices.
    pub fn for_columns(columns: Vec<usize>) -> Self {
        Self {
            candidate_columns: columns,
        }
    }
}

fn column_std(values: &[Option<f64>]) -> f64 {
    let present: Vec<f64> = values
        .iter()
        .flatten()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if present.len() < 2 {
        return 1.0;
    }
    let mean = present.iter().sum::<f64>() / present.len() as f64;
    let var = present.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / present.len() as f64;
    if var > 0.0 {
        var.sqrt()
    } else {
        1.0
    }
}

impl ErrorGen for Outliers {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "outliers"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let scale: f64 = rng.gen_range(2.0..5.0);
            let std = column_std(out.column(col).as_numeric().expect("numeric candidate"));
            let noise = Normal::new(0.0, scale * std).expect("finite parameters");
            let values = out
                .column_mut(col)
                .as_numeric_mut()
                .expect("numeric candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(x) = v {
                        *x += noise.sample(rng);
                    }
                }
            }
        }
        out
    }
}

/// Swaps a proportion of values between pairs of categorical and numeric
/// columns (the paper's swapped-columns error; e.g. buggy input forms).
#[derive(Debug, Clone)]
pub struct SwappedColumns {
    numeric_columns: Vec<usize>,
    categorical_columns: Vec<usize>,
}

impl SwappedColumns {
    /// Considers all (categorical, numeric) pairs of the schema.
    pub fn all_pairs(schema: &Schema) -> Self {
        Self {
            numeric_columns: schema.numeric_columns(),
            categorical_columns: schema.categorical_columns(),
        }
    }
}

impl ErrorGen for SwappedColumns {
    fn touched_columns(&self, df: &DataFrame) -> Vec<usize> {
        if self.numeric_columns.is_empty() || self.categorical_columns.is_empty() {
            // The degenerate fallback swaps between any pair of columns.
            return (0..df.n_cols()).collect();
        }
        let mut cols: Vec<usize> = self
            .numeric_columns
            .iter()
            .chain(&self.categorical_columns)
            .copied()
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn name(&self) -> &str {
        "swapped_columns"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        if self.numeric_columns.is_empty() || self.categorical_columns.is_empty() {
            // Degenerate schema: swap within the same type family instead.
            let all: Vec<usize> = (0..df.n_cols()).collect();
            if all.len() < 2 {
                return out;
            }
            let a = all[rng.gen_range(0..all.len())];
            let mut b = all[rng.gen_range(0..all.len())];
            while b == a {
                b = all[rng.gen_range(0..all.len())];
            }
            let p = sample_fraction(rng);
            for row in 0..out.n_rows() {
                if rng.gen::<f64>() < p {
                    out.swap_cells(a, b, row);
                }
            }
            return out;
        }
        let n_pairs = rng.gen_range(
            1..=self
                .numeric_columns
                .len()
                .min(self.categorical_columns.len()),
        );
        for _ in 0..n_pairs {
            let num = self.numeric_columns[rng.gen_range(0..self.numeric_columns.len())];
            let cat = self.categorical_columns[rng.gen_range(0..self.categorical_columns.len())];
            let p = sample_fraction(rng);
            for row in 0..out.n_rows() {
                if rng.gen::<f64>() < p {
                    out.swap_cells(num, cat, row);
                }
            }
        }
        out
    }
}

/// Scales a subset of numeric values by 10, 100 or 1000 (the paper's
/// unit-change bug, e.g. seconds accidentally recorded as milliseconds).
#[derive(Debug, Clone)]
pub struct Scaling {
    candidate_columns: Vec<usize>,
}

impl Scaling {
    /// Targets all numeric columns of the schema.
    pub fn all_numeric(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.numeric_columns(),
        }
    }

    /// Targets an explicit set of column indices.
    pub fn for_columns(columns: Vec<usize>) -> Self {
        Self {
            candidate_columns: columns,
        }
    }
}

impl ErrorGen for Scaling {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "scaling"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let factor = [10.0, 100.0, 1000.0][rng.gen_range(0..3)];
            let values = out
                .column_mut(col)
                .as_numeric_mut()
                .expect("numeric candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(x) = v {
                        *x *= factor;
                    }
                }
            }
        }
        out
    }
}

/// Introduces typos into categorical values (§6.2.2 "unknown" error).
///
/// A typo turns a category into a string the one-hot encoder has never
/// seen, which encodes to a zero vector — the same mechanism as a missing
/// value, which is exactly why the predictor generalizes to it.
#[derive(Debug, Clone)]
pub struct Typos {
    candidate_columns: Vec<usize>,
}

impl Typos {
    /// Targets all categorical columns of the schema.
    pub fn all_categorical(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.categorical_columns(),
        }
    }
}

fn introduce_typo(value: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = value.chars().collect();
    if chars.is_empty() {
        return "x".to_string();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = String::with_capacity(value.len() + 1);
    match rng.gen_range(0..3) {
        0 => {
            // Duplicate a character.
            for (i, c) in chars.iter().enumerate() {
                out.push(*c);
                if i == pos {
                    out.push(*c);
                }
            }
        }
        1 => {
            // Drop a character (keep at least one).
            if chars.len() == 1 {
                out.push('x');
            } else {
                for (i, c) in chars.iter().enumerate() {
                    if i != pos {
                        out.push(*c);
                    }
                }
            }
        }
        _ => {
            // Substitute with a neighbouring letter.
            for (i, c) in chars.iter().enumerate() {
                if i == pos {
                    out.push(((*c as u8).wrapping_add(1)) as char);
                } else {
                    out.push(*c);
                }
            }
        }
    }
    out
}

impl ErrorGen for Typos {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "typos"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let values = out
                .column_mut(col)
                .as_categorical_mut()
                .expect("categorical candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(s) = v.take() {
                        *v = Some(introduce_typo(&s, rng));
                    }
                }
            }
        }
        out
    }
}

/// "Smears" numeric values by a random ±10% (§6.2.2 "unknown" error).
#[derive(Debug, Clone)]
pub struct Smearing {
    candidate_columns: Vec<usize>,
}

impl Smearing {
    /// Targets all numeric columns of the schema.
    pub fn all_numeric(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.numeric_columns(),
        }
    }
}

impl ErrorGen for Smearing {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "smearing"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let values = out
                .column_mut(col)
                .as_numeric_mut()
                .expect("numeric candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(x) = v {
                        *x *= 1.0 + rng.gen_range(-0.10..0.10);
                    }
                }
            }
        }
        out
    }
}

/// Flips the sign of numeric values (§6.2.2 "unknown" error).
#[derive(Debug, Clone)]
pub struct FlippedSign {
    candidate_columns: Vec<usize>,
}

impl FlippedSign {
    /// Targets all numeric columns of the schema.
    pub fn all_numeric(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.numeric_columns(),
        }
    }
}

impl ErrorGen for FlippedSign {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "flipped_sign"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let values = out
                .column_mut(col)
                .as_numeric_mut()
                .expect("numeric candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(x) = v {
                        *x = -*x;
                    }
                }
            }
        }
        out
    }
}

/// Simulates encoding errors in categorical or text values by swapping
/// characters for look-alikes from a different encoding (the paper's §4
/// example: `E → É`, `ö/ü → œ`).
#[derive(Debug, Clone)]
pub struct EncodingErrors {
    candidate_columns: Vec<usize>,
}

impl EncodingErrors {
    /// Targets all text columns of the schema.
    pub fn all_text(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.text_columns(),
        }
    }

    /// Targets all categorical columns of the schema.
    pub fn all_categorical(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.categorical_columns(),
        }
    }
}

fn garble_encoding(value: &str) -> String {
    value
        .replace('E', "É")
        .replace('e', "é")
        .replace('o', "œ")
        .replace('u', "û")
}

impl ErrorGen for EncodingErrors {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "encoding_errors"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let column = out.column_mut(col);
            if let Ok(values) = column.as_text_mut() {
                for v in values.iter_mut() {
                    if rng.gen::<f64>() < p {
                        if let Some(s) = v.take() {
                            *v = Some(garble_encoding(&s));
                        }
                    }
                }
            } else if let Ok(values) = column.as_categorical_mut() {
                for v in values.iter_mut() {
                    if rng.gen::<f64>() < p {
                        if let Some(s) = v.take() {
                            *v = Some(garble_encoding(&s));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn missing_values_introduces_nulls_only_in_categorical() {
        let df = toy_frame(200);
        let gen = MissingValues::all_categorical(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        assert_eq!(out.n_rows(), df.n_rows());
        assert!(out.column(1).null_count() > 0);
        assert_eq!(out.column(0).null_count(), 0);
        // Original untouched.
        assert_eq!(df.total_null_count(), 0);
    }

    #[test]
    fn outliers_changes_numeric_values() {
        let df = toy_frame(200);
        let gen = Outliers::all_numeric(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        let orig = df.column(0).as_numeric().unwrap();
        let new = out.column(0).as_numeric().unwrap();
        let changed = orig.iter().zip(new).filter(|(a, b)| a != b).count();
        assert!(changed > 0);
        // Labels must never change.
        assert_eq!(df.labels(), out.labels());
    }

    #[test]
    fn swapped_columns_moves_values_across_types() {
        let df = toy_frame(300);
        let gen = SwappedColumns::all_pairs(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        // Numeric column should have nulls (unparseable categories swapped
        // in) and categorical should contain numeric strings.
        assert!(out.column(0).null_count() > 0);
        let cats = out.column(1).as_categorical().unwrap();
        assert!(cats.iter().flatten().any(|s| s.parse::<f64>().is_ok()));
    }

    #[test]
    fn scaling_multiplies_by_power_of_ten() {
        let df = toy_frame(100);
        let gen = Scaling::all_numeric(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        let orig = df.column(0).as_numeric().unwrap();
        let new = out.column(0).as_numeric().unwrap();
        for (o, n) in orig.iter().zip(new) {
            let (o, n) = (o.unwrap(), n.unwrap());
            if o != n && o != 0.0 {
                let ratio = n / o;
                assert!(
                    [10.0, 100.0, 1000.0]
                        .iter()
                        .any(|f| (ratio - f).abs() < 1e-9),
                    "unexpected ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn typos_produce_unseen_categories() {
        let df = toy_frame(300);
        let gen = Typos::all_categorical(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        let cats = out.column(1).as_categorical().unwrap();
        let garbled = cats
            .iter()
            .flatten()
            .filter(|s| *s != "even" && *s != "odd")
            .count();
        assert!(garbled > 0);
    }

    #[test]
    fn typo_never_yields_original() {
        let mut rng = rng();
        for _ in 0..100 {
            let t = introduce_typo("married", &mut rng);
            assert_ne!(t, "married");
        }
    }

    #[test]
    fn smearing_stays_within_ten_percent() {
        let df = toy_frame(200);
        let gen = Smearing::all_numeric(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        let orig = df.column(0).as_numeric().unwrap();
        let new = out.column(0).as_numeric().unwrap();
        for (o, n) in orig.iter().zip(new) {
            let (o, n) = (o.unwrap(), n.unwrap());
            if o != 0.0 {
                assert!((n / o - 1.0).abs() <= 0.1 + 1e-9);
            }
        }
    }

    #[test]
    fn flipped_sign_negates() {
        let df = toy_frame(200);
        let gen = FlippedSign::all_numeric(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        let orig = df.column(0).as_numeric().unwrap();
        let new = out.column(0).as_numeric().unwrap();
        let flipped = orig
            .iter()
            .zip(new)
            .filter(|(o, n)| o.unwrap() != 0.0 && n.unwrap() == -o.unwrap())
            .count();
        assert!(flipped > 0);
    }

    #[test]
    fn encoding_errors_replace_characters() {
        assert_eq!(garble_encoding("hello you"), "héllœ yœû");
    }

    #[test]
    fn generators_never_change_row_count_or_labels() {
        let df = toy_frame(97);
        let mut rng = rng();
        let gens: Vec<Box<dyn ErrorGen>> = vec![
            Box::new(MissingValues::all_categorical(df.schema())),
            Box::new(Outliers::all_numeric(df.schema())),
            Box::new(SwappedColumns::all_pairs(df.schema())),
            Box::new(Scaling::all_numeric(df.schema())),
            Box::new(Typos::all_categorical(df.schema())),
            Box::new(Smearing::all_numeric(df.schema())),
            Box::new(FlippedSign::all_numeric(df.schema())),
        ];
        for g in &gens {
            let out = g.corrupt(&df, &mut rng);
            assert_eq!(out.n_rows(), 97, "{}", g.name());
            assert_eq!(out.labels(), df.labels(), "{}", g.name());
            assert_eq!(out.schema(), df.schema(), "{}", g.name());
        }
    }
}
