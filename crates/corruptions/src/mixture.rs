//! Composite generators: random mixtures of error types and clean copies.

use crate::ErrorGen;
use lvp_dataframe::DataFrame;
use lvp_models::BlackBoxModel;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Applies a randomly chosen subset of its member generators in sequence
/// (§6.2: "randomly chosen mixtures of four different error types ... with
/// different probabilities").
///
/// Each member is included independently with probability `include_prob`;
/// if the sampled subset is empty, one random member is applied so the
/// mixture always corrupts something.
pub struct Mixture {
    members: Vec<Arc<dyn ErrorGen>>,
    include_prob: f64,
    name: String,
}

impl Mixture {
    /// Builds a mixture over the given members with the default inclusion
    /// probability of 0.5.
    pub fn new(members: Vec<Arc<dyn ErrorGen>>) -> Self {
        Self::with_include_prob(members, 0.5)
    }

    /// Builds a mixture with an explicit per-member inclusion probability.
    pub fn with_include_prob(members: Vec<Arc<dyn ErrorGen>>, include_prob: f64) -> Self {
        assert!(!members.is_empty(), "mixture needs at least one member");
        let name = format!(
            "mixture({})",
            members
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        Self {
            members,
            include_prob,
            name,
        }
    }

    /// Convenience: wraps boxed generators into a mixture.
    pub fn from_boxes(members: Vec<Box<dyn ErrorGen>>) -> Self {
        Self::new(members.into_iter().map(Arc::from).collect())
    }
}

impl ErrorGen for Mixture {
    fn touched_columns(&self, df: &DataFrame) -> Vec<usize> {
        // Any member might be selected, so the union of member declarations.
        let mut cols: Vec<usize> = self
            .members
            .iter()
            .flat_map(|m| m.touched_columns(df))
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        self.corrupt_with_model(df, None, rng)
    }

    fn corrupt_with_model(
        &self,
        df: &DataFrame,
        model: Option<&dyn BlackBoxModel>,
        rng: &mut StdRng,
    ) -> DataFrame {
        let mut selected: Vec<&Arc<dyn ErrorGen>> = self
            .members
            .iter()
            .filter(|_| rng.gen::<f64>() < self.include_prob)
            .collect();
        if selected.is_empty() {
            let i = rng.gen_range(0..self.members.len());
            selected.push(&self.members[i]);
        }
        let mut out = df.clone();
        for gen in selected {
            out = gen.corrupt_with_model(&out, model, rng);
        }
        out
    }
}

/// A "generator" that returns the frame unchanged. Mixed into predictor
/// training so the learned regressor also sees the error-free regime
/// (`p_err = 0` in the paper's problem statement).
#[derive(Debug, Clone, Default)]
pub struct CleanCopy;

impl ErrorGen for CleanCopy {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        Vec::new()
    }

    fn name(&self) -> &str {
        "clean"
    }

    fn corrupt(&self, df: &DataFrame, _rng: &mut StdRng) -> DataFrame {
        df.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tabular::{MissingValues, Outliers};
    use lvp_dataframe::toy_frame;
    use rand::SeedableRng;

    #[test]
    fn mixture_applies_at_least_one_member() {
        let df = toy_frame(100);
        let mix = Mixture::with_include_prob(
            vec![
                Arc::new(MissingValues::all_categorical(df.schema())),
                Arc::new(Outliers::all_numeric(df.schema())),
            ],
            0.0, // never include by chance → must force one member
        );
        let mut rng = StdRng::seed_from_u64(1);
        let out = mix.corrupt(&df, &mut rng);
        assert!(out != df, "mixture must corrupt something");
    }

    #[test]
    fn mixture_name_lists_members() {
        let df = toy_frame(4);
        let mix = Mixture::new(vec![Arc::new(MissingValues::all_categorical(df.schema()))]);
        assert_eq!(mix.name(), "mixture(missing_values)");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_mixture_panics() {
        let _ = Mixture::new(vec![]);
    }

    #[test]
    fn clean_copy_is_identity() {
        let df = toy_frame(10);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(CleanCopy.corrupt(&df, &mut rng), df);
    }

    #[test]
    fn mixture_preserves_shape() {
        let df = toy_frame(64);
        let mix = Mixture::from_boxes(vec![
            Box::new(MissingValues::all_categorical(df.schema())),
            Box::new(Outliers::all_numeric(df.schema())),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let out = mix.corrupt(&df, &mut rng);
        assert_eq!(out.n_rows(), 64);
        assert_eq!(out.labels(), df.labels());
    }
}
