//! Error generators for image attributes: additive noise and rotation.

use crate::{choose_columns, sample_fraction, ErrorGen};
use lvp_dataframe::{DataFrame, ImageData, Schema};
use rand::rngs::StdRng;
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Adds zero-mean Gaussian noise to a proportion of the input images, with
/// a randomly chosen noise standard deviation (§6 "Image noise").
#[derive(Debug, Clone)]
pub struct ImageNoise {
    candidate_columns: Vec<usize>,
}

impl ImageNoise {
    /// Targets all image columns of the schema.
    pub fn all_images(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.image_columns(),
        }
    }
}

impl ErrorGen for ImageNoise {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "image_noise"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            // The paper samples the noise variance from [-0.5, 0.5]; a
            // variance cannot be negative, so we read this as |v| ≤ 0.5.
            let std = rng.gen_range(0.01..0.5f64).sqrt();
            let noise = Normal::new(0.0, std).expect("finite parameters");
            let images = out.column_mut(col).as_image_mut().expect("image candidate");
            for img in images.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(img) = img {
                        for px in &mut img.pixels {
                            *px = (*px + noise.sample(rng)).clamp(0.0, 1.0);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Rotates a proportion of the input images by randomly chosen angles
/// (§6 "Image rotation").
#[derive(Debug, Clone)]
pub struct ImageRotation {
    candidate_columns: Vec<usize>,
}

impl ImageRotation {
    /// Targets all image columns of the schema.
    pub fn all_images(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.image_columns(),
        }
    }
}

/// Rotates an image by `angle` radians around its center using inverse
/// nearest-neighbour mapping; pixels rotated in from outside are black.
pub fn rotate_image(img: &ImageData, angle: f64) -> ImageData {
    let mut out = ImageData::zeros(img.width, img.height);
    let (cx, cy) = (img.width as f64 / 2.0, img.height as f64 / 2.0);
    let (sin, cos) = angle.sin_cos();
    for y in 0..img.height {
        for x in 0..img.width {
            // Inverse rotation: where did this output pixel come from?
            let dx = x as f64 + 0.5 - cx;
            let dy = y as f64 + 0.5 - cy;
            let sx = cx + cos * dx + sin * dy;
            let sy = cy - sin * dx + cos * dy;
            let (sx, sy) = (sx.floor(), sy.floor());
            if sx >= 0.0 && sy >= 0.0 {
                let (sx, sy) = (sx as usize, sy as usize);
                if sx < img.width && sy < img.height {
                    out.set(x, y, img.get(sx, sy));
                }
            }
        }
    }
    out
}

impl ErrorGen for ImageRotation {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "image_rotation"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            let images = out.column_mut(col).as_image_mut().expect("image candidate");
            for img in images.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(inner) = img {
                        let angle = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
                        *inner = rotate_image(inner, angle);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::{CellValue, ColumnType, DataFrameBuilder, Field, Schema};
    use rand::SeedableRng;

    fn image_frame(n: usize) -> DataFrame {
        let schema = Schema::new(vec![Field::new("img", ColumnType::Image)]).unwrap();
        let mut b = DataFrameBuilder::new(schema, vec!["a".into(), "b".into()]);
        for i in 0..n {
            let mut img = ImageData::zeros(8, 8);
            img.set(2, 2, 1.0);
            img.set(5, 5, 0.5);
            b.push_row(vec![CellValue::Image(img)], (i % 2) as u32)
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn noise_keeps_pixels_in_unit_range() {
        let df = image_frame(50);
        let gen = ImageNoise::all_images(df.schema());
        let mut rng = StdRng::seed_from_u64(1);
        let out = gen.corrupt(&df, &mut rng);
        for img in out.column(0).as_image().unwrap().iter().flatten() {
            assert!(img.pixels.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    #[test]
    fn noise_changes_some_pixels() {
        let df = image_frame(50);
        let gen = ImageNoise::all_images(df.schema());
        let mut rng = StdRng::seed_from_u64(2);
        let out = gen.corrupt(&df, &mut rng);
        let orig = df.column(0).as_image().unwrap();
        let new = out.column(0).as_image().unwrap();
        let changed = orig.iter().zip(new).filter(|(a, b)| a != b).count();
        assert!(changed > 0);
    }

    #[test]
    fn rotation_by_zero_is_identity() {
        let img = {
            let mut i = ImageData::zeros(6, 6);
            i.set(1, 2, 0.7);
            i.set(4, 4, 0.3);
            i
        };
        let rotated = rotate_image(&img, 0.0);
        assert_eq!(rotated, img);
    }

    #[test]
    fn rotation_preserves_total_mass_approximately() {
        let mut img = ImageData::zeros(16, 16);
        // A centered blob survives rotation almost fully.
        for y in 6..10 {
            for x in 6..10 {
                img.set(x, y, 1.0);
            }
        }
        let rotated = rotate_image(&img, std::f64::consts::FRAC_PI_4);
        let mass: f64 = rotated.pixels.iter().sum();
        assert!((mass - 16.0).abs() < 6.0, "mass {mass}");
    }

    #[test]
    fn rotation_moves_off_center_pixels() {
        let mut img = ImageData::zeros(8, 8);
        img.set(1, 1, 1.0);
        let rotated = rotate_image(&img, std::f64::consts::PI);
        assert_eq!(rotated.get(1, 1), 0.0);
    }

    #[test]
    fn rotation_generator_keeps_geometry() {
        let df = image_frame(30);
        let gen = ImageRotation::all_images(df.schema());
        let mut rng = StdRng::seed_from_u64(3);
        let out = gen.corrupt(&df, &mut rng);
        for img in out.column(0).as_image().unwrap().iter().flatten() {
            assert_eq!(img.width, 8);
            assert_eq!(img.height, 8);
        }
    }
}
