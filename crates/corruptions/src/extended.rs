//! Extended error generators beyond the paper's evaluated set.
//!
//! §7 names "investigating the effects of more error types" as future
//! work; these generators cover additional failure modes commonly seen in
//! production pipelines:
//!
//! * [`SelectionBias`] — the serving batch is not an i.i.d. sample but
//!   filtered towards one side of a numeric column (covariate shift from,
//!   e.g., a partial upstream outage),
//! * [`CategoryFlip`] — values of a categorical column are replaced by
//!   *other valid categories* (a broken join attaching the wrong
//!   dimension rows; invisible to null counting),
//! * [`ConstantFill`] — a column collapses to a single default value
//!   (a defaulting bug in input forms),
//! * [`DuplicateRows`] — a fraction of rows is duplicated (at-least-once
//!   delivery in the ingestion pipeline).

use crate::{choose_columns, sample_fraction, ErrorGen};
use lvp_dataframe::{DataFrame, Schema};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Serves a non-i.i.d. batch biased towards low or high values of a
/// randomly chosen numeric column.
#[derive(Debug, Clone)]
pub struct SelectionBias {
    candidate_columns: Vec<usize>,
}

impl SelectionBias {
    /// Targets all numeric columns of the schema.
    pub fn all_numeric(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.numeric_columns(),
        }
    }
}

impl ErrorGen for SelectionBias {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        // Pure row re-selection: no cell value is ever altered.
        Vec::new()
    }

    fn name(&self) -> &str {
        "selection_bias"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        if self.candidate_columns.is_empty() || df.n_rows() < 4 {
            return df.clone();
        }
        let col = self.candidate_columns[rng.gen_range(0..self.candidate_columns.len())];
        let values = df.column(col).as_numeric().expect("numeric candidate");
        let mut order: Vec<usize> = (0..df.n_rows()).collect();
        order.sort_by(|&a, &b| {
            let va = values[a].unwrap_or(f64::MAX);
            let vb = values[b].unwrap_or(f64::MAX);
            va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
        });
        if rng.gen_bool(0.5) {
            order.reverse();
        }
        // Keep between 30% and 90% of the rows from the biased end.
        let keep_frac = rng.gen_range(0.3..0.9);
        let keep = ((df.n_rows() as f64) * keep_frac).round().max(2.0) as usize;
        order.truncate(keep.min(df.n_rows()));
        order.shuffle(rng);
        df.select_rows(&order)
    }
}

/// Replaces categorical values with *other* categories observed in the
/// same column.
#[derive(Debug, Clone)]
pub struct CategoryFlip {
    candidate_columns: Vec<usize>,
}

impl CategoryFlip {
    /// Targets all categorical columns of the schema.
    pub fn all_categorical(schema: &Schema) -> Self {
        Self {
            candidate_columns: schema.categorical_columns(),
        }
    }
}

impl ErrorGen for CategoryFlip {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        self.candidate_columns.clone()
    }

    fn name(&self) -> &str {
        "category_flip"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        for col in choose_columns(&self.candidate_columns, rng) {
            let p = sample_fraction(rng);
            // Collect the distinct categories first.
            let distinct: Vec<String> = {
                let values = out.column(col).as_categorical().expect("categorical");
                let mut d: Vec<String> = values.iter().flatten().cloned().collect();
                d.sort();
                d.dedup();
                d
            };
            if distinct.len() < 2 {
                continue;
            }
            let values = out
                .column_mut(col)
                .as_categorical_mut()
                .expect("categorical candidate");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    if let Some(current) = v.clone() {
                        // Draw a replacement different from the current value.
                        loop {
                            let candidate = &distinct[rng.gen_range(0..distinct.len())];
                            if *candidate != current {
                                *v = Some(candidate.clone());
                                break;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Collapses a fraction of a column to a constant default value.
#[derive(Debug, Clone)]
pub struct ConstantFill {
    numeric_columns: Vec<usize>,
    categorical_columns: Vec<usize>,
}

impl ConstantFill {
    /// Targets all numeric and categorical columns of the schema.
    pub fn all_tabular(schema: &Schema) -> Self {
        Self {
            numeric_columns: schema.numeric_columns(),
            categorical_columns: schema.categorical_columns(),
        }
    }
}

impl ErrorGen for ConstantFill {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        let mut cols: Vec<usize> = self
            .numeric_columns
            .iter()
            .chain(&self.categorical_columns)
            .copied()
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    fn name(&self) -> &str {
        "constant_fill"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        let mut out = df.clone();
        let numeric_first = !self.numeric_columns.is_empty()
            && (self.categorical_columns.is_empty() || rng.gen_bool(0.5));
        let p = sample_fraction(rng);
        if numeric_first {
            let col = self.numeric_columns[rng.gen_range(0..self.numeric_columns.len())];
            let values = out.column_mut(col).as_numeric_mut().expect("numeric");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    *v = Some(0.0); // the classic uninitialized default
                }
            }
        } else if !self.categorical_columns.is_empty() {
            let col = self.categorical_columns[rng.gen_range(0..self.categorical_columns.len())];
            let values = out
                .column_mut(col)
                .as_categorical_mut()
                .expect("categorical");
            for v in values.iter_mut() {
                if rng.gen::<f64>() < p {
                    *v = Some("unknown".to_string());
                }
            }
        }
        out
    }
}

/// Duplicates a fraction of the rows (at-least-once ingestion).
#[derive(Debug, Clone, Default)]
pub struct DuplicateRows;

impl ErrorGen for DuplicateRows {
    fn touched_columns(&self, _df: &DataFrame) -> Vec<usize> {
        // Pure row re-selection: no cell value is ever altered.
        Vec::new()
    }

    fn name(&self) -> &str {
        "duplicate_rows"
    }

    fn corrupt(&self, df: &DataFrame, rng: &mut StdRng) -> DataFrame {
        if df.n_rows() == 0 {
            return df.clone();
        }
        let p = sample_fraction(rng);
        let mut indices: Vec<usize> = (0..df.n_rows()).collect();
        for row in 0..df.n_rows() {
            if rng.gen::<f64>() < p {
                indices.push(row);
            }
        }
        indices.shuffle(rng);
        df.select_rows(&indices)
    }
}

/// Suite of the extended (beyond-paper) error types applicable to tabular
/// data.
pub fn extended_tabular_suite(schema: &Schema) -> Vec<Box<dyn ErrorGen>> {
    vec![
        Box::new(SelectionBias::all_numeric(schema)),
        Box::new(CategoryFlip::all_categorical(schema)),
        Box::new(ConstantFill::all_tabular(schema)),
        Box::new(DuplicateRows),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_dataframe::toy_frame;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn selection_bias_shrinks_and_biases_the_batch() {
        let df = toy_frame(200);
        let gen = SelectionBias::all_numeric(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        assert!(out.n_rows() < df.n_rows());
        assert!(out.n_rows() >= 2);
        // The kept values must be a contiguous prefix/suffix of the sorted
        // value range, i.e. mean differs from the full mean.
        let full_mean: f64 = df
            .column(0)
            .as_numeric()
            .unwrap()
            .iter()
            .flatten()
            .sum::<f64>()
            / df.n_rows() as f64;
        let kept_mean: f64 = out
            .column(0)
            .as_numeric()
            .unwrap()
            .iter()
            .flatten()
            .sum::<f64>()
            / out.n_rows() as f64;
        assert!((kept_mean - full_mean).abs() > 1.0);
    }

    #[test]
    fn category_flip_replaces_with_other_valid_categories() {
        let df = toy_frame(300);
        let gen = CategoryFlip::all_categorical(df.schema());
        let mut rng = rng();
        let out = gen.corrupt(&df, &mut rng);
        let orig = df.column(1).as_categorical().unwrap();
        let new = out.column(1).as_categorical().unwrap();
        let mut flipped = 0;
        for (o, n) in orig.iter().zip(new) {
            assert!(n.is_some(), "flip never introduces nulls");
            let n = n.as_ref().unwrap();
            assert!(n == "even" || n == "odd", "only valid categories: {n}");
            if o.as_ref() != Some(n) {
                flipped += 1;
            }
        }
        assert!(flipped > 0);
    }

    #[test]
    fn constant_fill_collapses_values() {
        let df = toy_frame(300);
        let gen = ConstantFill::all_tabular(df.schema());
        let mut changed_any = false;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = gen.corrupt(&df, &mut rng);
            if out != df {
                changed_any = true;
            }
            assert_eq!(out.n_rows(), df.n_rows());
        }
        assert!(changed_any);
    }

    #[test]
    fn duplicate_rows_grows_the_batch() {
        let df = toy_frame(100);
        let mut rng = rng();
        let out = DuplicateRows.corrupt(&df, &mut rng);
        assert!(out.n_rows() > df.n_rows());
        assert!(out.n_rows() <= 2 * df.n_rows());
    }

    #[test]
    fn extended_suite_has_four_members() {
        let df = toy_frame(4);
        assert_eq!(extended_tabular_suite(df.schema()).len(), 4);
    }

    #[test]
    fn selection_bias_on_empty_frame_is_identity() {
        let df = toy_frame(2);
        let empty = df.select_rows(&[]);
        let gen = SelectionBias::all_numeric(df.schema());
        let mut rng = rng();
        assert_eq!(gen.corrupt(&empty, &mut rng).n_rows(), 0);
    }
}
