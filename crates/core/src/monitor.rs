//! Continuous monitoring of a deployed model's serving batches.
//!
//! The paper positions the performance predictor as a component that is
//! "deployed along with the original model" so that "end users and serving
//! systems can raise alarms" (§1, Figure 1b). This module supplies that
//! serving-system half: a [`BatchMonitor`] consumes one serving batch at a
//! time, tracks the history of estimated scores, smooths them with an
//! exponentially weighted moving average, and applies a debounced alarm
//! policy (alarm only after `k` consecutive violations) so a single noisy
//! batch does not page an on-call engineer.
//!
//! Batches need not be materialized: [`BatchMonitor::observe_chunk`] folds
//! row chunks into a fixed-memory [`BatchSketch`] window and
//! [`BatchMonitor::finish_window`] scores the accumulated state, so a
//! million-row batch (or an unbounded traffic window) streams through in
//! `O(bins)` memory. [`BatchMonitor::merge_shard_sketches`] folds the
//! windows of N independent shards into one fleet-level [`BatchReport`]
//! that is bit-identical to what a single stream over all rows would have
//! produced.

use crate::features::BatchSketch;
use crate::interval::ScoreInterval;
use crate::{CoreError, PerformancePredictor};
use lvp_dataframe::DataFrame;
use lvp_linalg::DenseMatrix;
use lvp_stats::{ks_two_sample, EcdfSketch};
use lvp_telemetry::{Counter, Gauge, Histogram, Registry};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which signal drives the monitor's violation and alarm decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlarmMode {
    /// Legacy point-estimate policy: a batch violates when the (smoothed)
    /// estimate drops below `(1 - threshold) · test_score`. Requires the
    /// operator to hand-tune `threshold` wide enough to absorb estimator
    /// noise.
    Threshold,
    /// Calibrated interval policy: a batch violates when the retained
    /// `test_score` falls outside the batch's serving [`ScoreInterval`].
    /// No tuned cutoff — the interval's conformal calibration absorbs
    /// estimator noise by construction.
    Interval,
}

/// Alarm policy for a [`BatchMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorPolicy {
    /// Acceptable relative score drop against the test score (e.g. 0.05).
    /// Only consulted under [`AlarmMode::Threshold`].
    pub threshold: f64,
    /// Consecutive violating batches required before an alarm fires.
    pub consecutive_violations: usize,
    /// Smoothing factor of the EWMA over estimates (interval midpoints
    /// under [`AlarmMode::Interval`]), in `(0, 1]`; 1.0 disables smoothing.
    pub ewma_alpha: f64,
    /// Alarm mode; `None` means [`AlarmMode::Threshold`] (see
    /// [`Self::alarm_mode`]). Kept optional so policies serialized before
    /// the interval refactor load unchanged into the legacy behavior.
    pub mode: Option<AlarmMode>,
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        Self {
            threshold: 0.05,
            consecutive_violations: 2,
            ewma_alpha: 0.5,
            mode: None,
        }
    }
}

impl MonitorPolicy {
    /// The effective alarm mode: [`AlarmMode::Threshold`] when [`Self::mode`]
    /// is unset, which is both the `Default` and what pre-interval
    /// artifacts deserialize to.
    pub fn alarm_mode(&self) -> AlarmMode {
        self.mode.unwrap_or(AlarmMode::Threshold)
    }

    /// This policy switched to the calibrated interval alarm: violations
    /// become "the retained test score escaped the serving interval", and
    /// [`Self::threshold`] is no longer consulted.
    pub fn with_interval_alarm(self) -> Self {
        Self {
            mode: Some(AlarmMode::Interval),
            ..self
        }
    }
}

/// Drift evidence for one class column: a two-sample KS test of the model's
/// serving-batch output distribution against its reference (held-out test)
/// output distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDrift {
    /// Class column index.
    pub class: usize,
    /// KS D statistic between serving and reference output distributions.
    pub statistic: f64,
    /// Asymptotic p-value under "no drift".
    pub p_value: f64,
}

/// Per-batch observability payload carried on every [`BatchReport`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BatchTelemetry {
    /// Consecutive-smoothed-violation streak *after* this batch.
    pub violation_streak: usize,
    /// Per-class output drift against the retained reference outputs;
    /// empty unless [`BatchMonitor::retain_reference_outputs`] was called
    /// and the batch went through [`BatchMonitor::observe`].
    pub per_class_ks: Vec<ClassDrift>,
}

/// The monitor's verdict on one batch.
///
/// Serializes losslessly except that the degraded-batch `NaN` estimate
/// travels as JSON `null` and comes back as `NaN` (the vendored serde maps
/// non-finite floats through `null`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Sequence number of the batch (starting at 0, monotonically
    /// increasing across restarts restored from a
    /// [`MonitorArtifact`](crate::MonitorArtifact)).
    pub batch_index: usize,
    /// Raw estimated score for this batch.
    pub estimate: f64,
    /// EWMA-smoothed estimate.
    pub smoothed: f64,
    /// Whether this batch's *raw* estimate individually violates the
    /// threshold (diagnostics; a single noisy batch can trip this while
    /// the smoothed signal stays healthy).
    pub raw_violation: bool,
    /// Whether the *EWMA-smoothed* estimate violates the threshold — the
    /// signal the debounce streak and the alarm are driven by.
    pub smoothed_violation: bool,
    /// Whether the debounced alarm is firing.
    pub alarm: bool,
    /// The calibrated serving interval, when the batch was scored through
    /// an interval-producing path (always under [`AlarmMode::Interval`]
    /// except for bare [`BatchMonitor::observe_estimate`] updates; also
    /// carried diagnostically when [`BatchMonitor::observe_interval`] is
    /// used under the threshold policy). Degraded interval-mode batches
    /// carry an all-NaN [`ScoreInterval`], which serializes through the
    /// same NaN↔null convention as [`Self::estimate`].
    pub interval: Option<ScoreInterval>,
    /// Whether this batch was *degraded*: the estimate is withheld (NaN)
    /// because scoring failed terminally (remote serving failure) or
    /// produced no information (non-finite estimate). Degraded batches
    /// leave the EWMA and the violation streak untouched — they are
    /// evidence of infrastructure trouble, not of model-quality trouble.
    pub degraded: bool,
    /// Why the batch was degraded, when [`Self::degraded`] is set.
    pub degrade_reason: Option<String>,
    /// Streak state and per-class drift statistics for this batch.
    pub telemetry: BatchTelemetry,
}

/// One shard's exported streaming window: the accumulated sketch state
/// plus the shard's degradation marker, so fleet-level merging can honor
/// a poisoned shard instead of silently scoring its partial sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWindow {
    /// The shard's accumulated window sketch.
    pub sketch: BatchSketch,
    /// Why the shard's window was degraded, if it was.
    pub degraded: Option<String>,
}

/// Tracks estimated scores across a stream of serving batches and raises
/// debounced alarms on sustained drops.
pub struct BatchMonitor {
    predictor: PerformancePredictor,
    policy: MonitorPolicy,
    history: Vec<BatchReport>,
    /// Oldest reports are dropped once `history` exceeds this bound;
    /// `None` keeps everything (library default — long-running daemons set
    /// a bound so an unbounded report stream cannot exhaust memory).
    history_limit: Option<usize>,
    smoothed: Option<f64>,
    violation_streak: usize,
    /// Total batches observed, including ones observed before a restart
    /// (restored from a [`MonitorArtifact`](crate::MonitorArtifact));
    /// `history` only holds this process's reports.
    batches_seen: usize,
    /// Model outputs on the reference (held-out test) frame, retained for
    /// per-class drift tests. `None` until
    /// [`Self::retain_reference_outputs`] is called (and after a restore —
    /// artifacts do not persist output matrices).
    reference_outputs: Option<DenseMatrix>,
    /// Compressed ECDFs of the reference outputs — the sketched-path drift
    /// reference. Unlike the raw matrix these *do* survive a restore (they
    /// travel in the [`MonitorArtifact`](crate::MonitorArtifact)).
    reference_ecdf: Option<Vec<EcdfSketch>>,
    /// The currently open streaming window, `None` between windows.
    window: Option<BatchSketch>,
    /// Set when a chunk of the open window failed to score terminally; the
    /// window then finishes as a degraded report instead of an estimate
    /// computed from a sketch with silently missing rows.
    window_degraded: Option<String>,
    metrics: Option<MonitorMetrics>,
}

/// Pre-resolved registry handles for [`BatchMonitor::observe`]. All values
/// derive from seeded estimates, so none are volatile.
struct MonitorMetrics {
    /// `monitor.raw_score` — the latest raw estimate.
    raw: Gauge,
    /// `monitor.smoothed_score` — the latest EWMA value.
    smoothed: Gauge,
    /// `monitor.violation_streak` — the current debounce streak.
    streak: Gauge,
    /// `monitor.alarm_batches` — batches reported with the alarm firing.
    alarms: Counter,
    /// `monitor.batches_observed` — total batches observed.
    batches: Counter,
    /// `monitor.degraded_batches` — batches quarantined without an estimate.
    degraded: Counter,
    /// `monitor.interval_width` — width of the latest finite serving
    /// interval: the system's self-reported uncertainty, which widens
    /// under drift before the alarm fires.
    interval_width: Gauge,
    /// `monitor.coverage_violations` — interval-mode batches whose serving
    /// interval failed to cover the retained test score.
    coverage_violations: Counter,
    /// `monitor.chunks_observed` — row chunks folded into streaming windows.
    chunks: Counter,
    /// `monitor.chunk_rows` — total rows folded via the streaming path.
    chunk_rows: Counter,
    /// `monitor.sketch_merges` — shard sketches folded into fleet reports.
    sketch_merges: Counter,
    /// `monitor.window_sketch_bytes` — footprint of the open window sketch.
    window_bytes: Gauge,
    /// `monitor.chunk_latency` — wall-clock time per observed chunk
    /// (volatile: excluded from deterministic snapshot views).
    chunk_latency: Histogram,
}

impl BatchMonitor {
    /// Wraps a fitted predictor with an alarm policy.
    pub fn new(predictor: PerformancePredictor, policy: MonitorPolicy) -> Result<Self, CoreError> {
        if !(0.0..1.0).contains(&policy.threshold) {
            return Err(CoreError::new("threshold must lie in [0, 1)"));
        }
        if policy.consecutive_violations == 0 {
            return Err(CoreError::new("need at least one violation to alarm"));
        }
        if !(0.0 < policy.ewma_alpha && policy.ewma_alpha <= 1.0) {
            return Err(CoreError::new("ewma_alpha must lie in (0, 1]"));
        }
        Ok(Self {
            predictor,
            policy,
            history: Vec::new(),
            history_limit: None,
            smoothed: None,
            violation_streak: 0,
            batches_seen: 0,
            reference_outputs: None,
            reference_ecdf: None,
            window: None,
            window_degraded: None,
            metrics: None,
        })
    }

    /// Registers the monitor's gauges and counters with `registry`
    /// (`monitor.raw_score`, `monitor.smoothed_score`,
    /// `monitor.violation_streak`, `monitor.alarm_batches`,
    /// `monitor.batches_observed`, plus the interval-policy pair
    /// `monitor.interval_width` / `monitor.coverage_violations`). All of
    /// them track seeded estimates, so they appear in deterministic
    /// snapshot views.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.attach_telemetry_prefixed(registry, "");
    }

    /// Like [`Self::attach_telemetry`], but every metric name is prefixed
    /// with `prefix` (e.g. prefix `"tenant.acme.fraud.v3."` yields
    /// `tenant.acme.fraud.v3.monitor.raw_score`), so one registry can host
    /// many monitors — one per deployment — without their gauges
    /// clobbering each other.
    pub fn attach_telemetry_prefixed(&mut self, registry: &Registry, prefix: &str) {
        self.metrics = Some(MonitorMetrics {
            raw: registry.gauge(&format!("{prefix}monitor.raw_score")),
            smoothed: registry.gauge(&format!("{prefix}monitor.smoothed_score")),
            streak: registry.gauge(&format!("{prefix}monitor.violation_streak")),
            alarms: registry.counter(&format!("{prefix}monitor.alarm_batches")),
            batches: registry.counter(&format!("{prefix}monitor.batches_observed")),
            degraded: registry.counter(&format!("{prefix}monitor.degraded_batches")),
            interval_width: registry.gauge(&format!("{prefix}monitor.interval_width")),
            coverage_violations: registry.counter(&format!("{prefix}monitor.coverage_violations")),
            chunks: registry.counter(&format!("{prefix}monitor.chunks_observed")),
            chunk_rows: registry.counter(&format!("{prefix}monitor.chunk_rows")),
            sketch_merges: registry.counter(&format!("{prefix}monitor.sketch_merges")),
            window_bytes: registry.gauge(&format!("{prefix}monitor.window_sketch_bytes")),
            chunk_latency: registry.histogram(&format!("{prefix}monitor.chunk_latency")),
        });
    }

    /// Bounds [`Self::history`] to the most recent `limit` reports (`None`
    /// keeps everything). [`BatchReport::batch_index`] stays absolute, so
    /// trimmed history still identifies batches unambiguously.
    pub fn set_history_limit(&mut self, limit: Option<usize>) {
        self.history_limit = limit;
        self.trim_history();
    }

    fn trim_history(&mut self) {
        if let Some(limit) = self.history_limit {
            if self.history.len() > limit {
                let excess = self.history.len() - limit;
                self.history.drain(..excess);
            }
        }
    }

    /// Computes and retains the model's outputs on `reference` (normally
    /// the held-out test frame the predictor was fitted on). Subsequent
    /// [`Self::observe`] calls run a per-class KS drift test of each
    /// batch's output distribution against these columns and attach the
    /// results to [`BatchReport::telemetry`].
    pub fn retain_reference_outputs(&mut self, reference: &DataFrame) -> Result<(), CoreError> {
        let outputs = self.predictor.model_outputs(reference)?;
        self.reference_ecdf = Some(BatchSketch::from_outputs(&outputs).ecdfs().to_vec());
        self.reference_outputs = Some(outputs);
        Ok(())
    }

    /// Scores one serving batch and updates the alarm state.
    ///
    /// A *terminal serving failure* (the predictor's model exhausted its
    /// retries against a remote endpoint — recognizable by the typed
    /// [`lvp_models::ModelError`] on the error's source chain) does not
    /// abort the monitoring run: the batch is quarantined and reported as a
    /// degraded [`BatchReport`] — estimate withheld, EWMA and violation
    /// streak untouched, reason recorded. Caller-side errors (empty batch,
    /// schema mismatch) stay hard errors: retrying or skipping cannot make
    /// an incompatible frame scoreable.
    pub fn observe(&mut self, batch: &DataFrame) -> Result<BatchReport, CoreError> {
        let scored = match self.policy.alarm_mode() {
            AlarmMode::Threshold => self
                .predictor
                .predict_with_outputs(batch)
                .map(|(estimate, proba)| (estimate, None, proba)),
            AlarmMode::Interval => self
                .predictor
                .predict_interval_with_outputs(batch)
                .map(|(interval, proba)| (interval.point, Some(interval), proba)),
        };
        let (estimate, interval, proba) = match scored {
            Ok(triple) => triple,
            Err(err) => {
                return match err.model_error() {
                    Some(cause) => Ok(self.record_degraded(format!(
                        "serving failure on batch {}: {}",
                        self.batches_seen, cause.message
                    ))),
                    None => Err(err),
                };
            }
        };
        let per_class_ks = self.drift_against_reference(&proba);
        Ok(self.record(estimate, interval, per_class_ks))
    }

    /// Scores a batch of already-computed model outputs (e.g. when the
    /// model serves in a different process and only its probability matrix
    /// reaches the monitor) and updates the alarm state, routing through
    /// the point or interval path per the policy's [`AlarmMode`]. Runs the
    /// per-class drift tests when reference outputs are retained.
    pub fn observe_outputs(&mut self, proba: &DenseMatrix) -> Result<BatchReport, CoreError> {
        let (estimate, interval) = match self.policy.alarm_mode() {
            AlarmMode::Threshold => (self.predictor.predict_from_outputs(proba)?, None),
            AlarmMode::Interval => {
                let interval = self.predictor.predict_interval_from_outputs(proba)?;
                (interval.point, Some(interval))
            }
        };
        let per_class_ks = self.drift_against_reference(proba);
        Ok(self.record(estimate, interval, per_class_ks))
    }

    fn drift_against_reference(&self, proba: &DenseMatrix) -> Vec<ClassDrift> {
        match &self.reference_outputs {
            Some(reference) => (0..proba.cols().min(reference.cols()))
                .map(|class| {
                    let outcome = ks_two_sample(&proba.column(class), &reference.column(class));
                    ClassDrift {
                        class,
                        statistic: outcome.statistic,
                        p_value: outcome.p_value,
                    }
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Records a batch that was lost before it could be scored — shed by
    /// an admission controller, dropped by an upstream queue — as a
    /// degraded [`BatchReport`]: estimate withheld (NaN), `reason`
    /// recorded, EWMA and violation streak untouched. The loss thereby
    /// shows up in the history and the degraded-batch counter instead of
    /// being silently dropped.
    pub fn observe_degraded(&mut self, reason: impl Into<String>) -> BatchReport {
        self.record_degraded(reason.into())
    }

    /// Updates the monitor from an externally computed estimate (e.g. when
    /// the predictor runs in a different process).
    ///
    /// The very first finite estimate seeds the EWMA directly (no zero-init
    /// bias: `smoothed == estimate` for batch 0, so a healthy first batch
    /// can never trip the smoothed signal). A non-finite estimate carries no
    /// information and is quarantined: it is reported verbatim but not folded
    /// into the EWMA — one NaN would otherwise poison every subsequent
    /// smoothed value — and it neither extends nor resets the streak.
    ///
    /// A bare estimate carries no interval, so under
    /// [`AlarmMode::Interval`] the violation check falls back to the
    /// threshold cutoff for these batches; callers with interval-producing
    /// remote predictors should use [`Self::observe_interval`] instead.
    pub fn observe_estimate(&mut self, estimate: f64) -> BatchReport {
        self.record(estimate, None, Vec::new())
    }

    /// Updates the monitor from an externally computed [`ScoreInterval`]
    /// (e.g. when the predictor runs in a different process — the interval
    /// counterpart of [`Self::observe_estimate`]).
    ///
    /// Being an external entry point, the interval is validated first:
    /// `lo ≤ point ≤ hi` with all bounds finite — or all NaN, which is
    /// recorded as a degraded batch — and `alpha` in `(0, 1)`; anything
    /// else is a typed [`CoreError`]. Valid intervals update the alarm
    /// state like any internally scored batch.
    pub fn observe_interval(&mut self, interval: ScoreInterval) -> Result<BatchReport, CoreError> {
        interval.validate()?;
        if interval.is_degraded() {
            return Ok(self.record_inner(
                f64::NAN,
                Some(interval),
                Vec::new(),
                Some("degraded interval quarantined".to_string()),
            ));
        }
        Ok(self.record(interval.point, Some(interval), Vec::new()))
    }

    /// Folds one chunk of serving rows into the open streaming window
    /// (opening one if none is open), in fixed memory: only the window's
    /// [`BatchSketch`] is retained, never the rows or outputs themselves.
    ///
    /// A terminal serving failure on a chunk poisons the *window*, not the
    /// run: remaining chunks are accepted (and counted) but
    /// [`Self::finish_window`] then yields a degraded report — an estimate
    /// computed from a sketch with silently missing rows would understate
    /// drift. Caller-side errors (schema mismatch) stay hard errors.
    pub fn observe_chunk(&mut self, chunk: &DataFrame) -> Result<(), CoreError> {
        let started = Instant::now();
        let proba = match self.predictor.model_outputs(chunk) {
            Ok(proba) => proba,
            Err(err) => {
                return match err.model_error() {
                    Some(cause) => {
                        self.poison_window(format!(
                            "serving failure on chunk of window {}: {}",
                            self.batches_seen, cause.message
                        ));
                        self.note_chunk(0, started);
                        Ok(())
                    }
                    None => Err(err),
                };
            }
        };
        self.fold_output_chunk(&proba)?;
        self.note_chunk(proba.rows(), started);
        Ok(())
    }

    /// Folds one chunk of already-computed model outputs into the open
    /// window (e.g. when the model serves in a different process and only
    /// its outputs reach the monitor).
    ///
    /// A zero-row chunk is a no-op: it neither opens nor extends a window.
    pub fn observe_output_chunk(&mut self, proba: &DenseMatrix) -> Result<(), CoreError> {
        let started = Instant::now();
        self.fold_output_chunk(proba)?;
        self.note_chunk(proba.rows(), started);
        Ok(())
    }

    fn fold_output_chunk(&mut self, proba: &DenseMatrix) -> Result<(), CoreError> {
        if proba.rows() == 0 {
            // A zero-row chunk carries no evidence. Folding it in would
            // open (or extend) a window whose every percentile feature is
            // the sketch's empty-state neutral value — `finish_window`
            // would then score that fabricated featurization as a real
            // (and terrible-looking) batch. No-op instead.
            return Ok(());
        }
        let window = self
            .window
            .get_or_insert_with(|| BatchSketch::new(self.predictor.n_classes()));
        window.observe_chunk(proba)
    }

    fn note_chunk(&mut self, rows: usize, started: Instant) {
        if let Some(m) = &self.metrics {
            m.chunks.inc();
            m.chunk_rows.add(rows as u64);
            if let Some(w) = &self.window {
                m.window_bytes.set(w.approx_bytes() as f64);
            }
            m.chunk_latency.record(started.elapsed());
        }
    }

    /// Marks the open window as unsalvageable (opening one if none is
    /// open, so the degradation is reported even when the first chunk
    /// failed); [`Self::finish_window`] will yield a degraded report.
    pub fn abandon_window(&mut self, reason: impl Into<String>) {
        self.poison_window(reason.into());
    }

    fn poison_window(&mut self, reason: String) {
        self.window
            .get_or_insert_with(|| BatchSketch::new(self.predictor.n_classes()));
        // First failure wins: the earliest reason is the root cause.
        self.window_degraded.get_or_insert(reason);
    }

    /// Closes the open streaming window: scores the accumulated sketch
    /// state, runs the per-class drift tests against the reference ECDFs
    /// (when retained), updates the alarm state, and resets the window.
    ///
    /// Errors when no window is open (no [`Self::observe_chunk`] since the
    /// last finish) — silently reporting on an empty window would look
    /// like a healthy batch.
    pub fn finish_window(&mut self) -> Result<BatchReport, CoreError> {
        let window = self
            .window
            .take()
            .ok_or_else(|| CoreError::new("no open streaming window to finish"))?;
        if let Some(reason) = self.window_degraded.take() {
            return Ok(self.record_degraded(reason));
        }
        self.report_sketch(&window)
    }

    /// Folds the window sketches of N independent shards into one
    /// fleet-level report, merging in slice order. Errors on an empty
    /// shard slice — there is no window state to report on.
    ///
    /// Because [`BatchSketch::merge`] is exactly associative and
    /// commutative, the merged state — and therefore the report — is
    /// bit-identical to what a single stream over every shard's rows would
    /// have produced, at any thread count and for any chunking.
    pub fn merge_shard_sketches(
        &mut self,
        shards: &[BatchSketch],
    ) -> Result<BatchReport, CoreError> {
        let Some((first, rest)) = shards.split_first() else {
            return Err(CoreError::new("no shard sketches to merge"));
        };
        let mut merged = first.clone();
        for shard in rest {
            merged.merge(shard)?;
        }
        if let Some(m) = &self.metrics {
            m.sketch_merges.add(shards.len() as u64);
        }
        self.report_sketch(&merged)
    }

    /// Exports (and closes) the open streaming window as a [`ShardWindow`]
    /// for fleet-level aggregation, carrying any degradation marker along
    /// with the sketch. Returns `None` when no window is open.
    pub fn take_window_shard(&mut self) -> Option<ShardWindow> {
        let sketch = self.window.take()?;
        Some(ShardWindow {
            sketch,
            degraded: self.window_degraded.take(),
        })
    }

    /// Like [`Self::merge_shard_sketches`], but honors each shard's
    /// degradation marker: if *any* shard's window was poisoned, the merged
    /// fleet report is degraded (first poisoned shard's reason recorded)
    /// instead of an estimate computed from sketches with silently missing
    /// rows — partial fleet evidence would understate drift exactly when a
    /// shard is in trouble.
    pub fn merge_shard_windows(
        &mut self,
        shards: &[ShardWindow],
    ) -> Result<BatchReport, CoreError> {
        if shards.is_empty() {
            return Err(CoreError::new("no shard windows to merge"));
        }
        if let Some(m) = &self.metrics {
            m.sketch_merges.add(shards.len() as u64);
        }
        let poisoned = shards
            .iter()
            .enumerate()
            .find_map(|(idx, shard)| shard.degraded.as_ref().map(|reason| (idx, reason)));
        if let Some((idx, reason)) = poisoned {
            return Ok(self.record_degraded(format!("shard {idx} window degraded: {reason}")));
        }
        let mut merged = shards[0].sketch.clone();
        for shard in &shards[1..] {
            merged.merge(&shard.sketch)?;
        }
        self.report_sketch(&merged)
    }

    /// Shared tail of the streaming paths: estimate from sketch state,
    /// sketched per-class drift tests, alarm-state update.
    fn report_sketch(&mut self, sketch: &BatchSketch) -> Result<BatchReport, CoreError> {
        if sketch.rows() == 0 {
            // Zero observed rows means every feature is the sketch's
            // empty-state neutral value; scoring it would fabricate a
            // batch out of nothing.
            return Err(CoreError::new(
                "cannot score a sketch with zero observed rows",
            ));
        }
        let (estimate, interval) = match self.policy.alarm_mode() {
            AlarmMode::Threshold => (self.predictor.predict_from_sketch(sketch)?, None),
            AlarmMode::Interval => {
                let interval = self.predictor.predict_interval_from_sketch(sketch)?;
                (interval.point, Some(interval))
            }
        };
        let per_class_ks = match &self.reference_ecdf {
            Some(reference) => sketch
                .ecdfs()
                .iter()
                .zip(reference)
                .enumerate()
                .map(|(class, (serving, reference))| {
                    let outcome = serving
                        .ks_test(reference)
                        .map_err(|e| CoreError::with_source("sketched drift test", e))?;
                    Ok(ClassDrift {
                        class,
                        statistic: outcome.statistic,
                        p_value: outcome.p_value,
                    })
                })
                .collect::<Result<Vec<_>, CoreError>>()?,
            None => Vec::new(),
        };
        Ok(self.record(estimate, interval, per_class_ks))
    }

    /// The currently open streaming window, if any.
    pub fn window(&self) -> Option<&BatchSketch> {
        self.window.as_ref()
    }

    /// Why the open window is poisoned, if it is.
    pub fn window_degraded(&self) -> Option<&str> {
        self.window_degraded.as_deref()
    }

    /// The compressed reference ECDFs, when retained.
    pub fn reference_ecdf(&self) -> Option<&[EcdfSketch]> {
        self.reference_ecdf.as_deref()
    }

    fn record(
        &mut self,
        estimate: f64,
        interval: Option<ScoreInterval>,
        per_class_ks: Vec<ClassDrift>,
    ) -> BatchReport {
        self.record_inner(estimate, interval, per_class_ks, None)
    }

    /// Records a batch whose scoring failed terminally: the estimate is
    /// withheld (NaN) and the report is marked degraded with `reason`.
    /// Under the interval policy the report carries an all-NaN interval —
    /// bounds withheld like the estimate.
    fn record_degraded(&mut self, reason: String) -> BatchReport {
        let interval = matches!(self.policy.alarm_mode(), AlarmMode::Interval)
            .then(|| ScoreInterval::degraded(self.predictor.interval_alpha()));
        self.record_inner(f64::NAN, interval, Vec::new(), Some(reason))
    }

    fn record_inner(
        &mut self,
        estimate: f64,
        interval: Option<ScoreInterval>,
        per_class_ks: Vec<ClassDrift>,
        degrade_reason: Option<String>,
    ) -> BatchReport {
        let alpha = self.policy.ewma_alpha;
        // A batch is degraded when scoring failed (explicit reason) or the
        // estimate carries no information (non-finite). Either way it is
        // quarantined: reported, but never folded into the EWMA or streak.
        let finite = estimate.is_finite() && degrade_reason.is_none();
        let degrade_reason = degrade_reason
            .or_else(|| (!finite).then(|| "non-finite estimate quarantined".to_string()));
        // Under the interval policy the EWMA tracks the interval midpoint
        // (the center of the system's stated uncertainty); the raw point
        // estimate drives it otherwise.
        let interval_mode = matches!(self.policy.alarm_mode(), AlarmMode::Interval);
        let signal = match &interval {
            Some(iv) if finite && interval_mode => iv.midpoint(),
            _ => estimate,
        };
        let smoothed = if finite {
            let next = match self.smoothed {
                Some(prev) => alpha * signal + (1.0 - alpha) * prev,
                None => signal,
            };
            self.smoothed = Some(next);
            next
        } else {
            // Report the last healthy EWMA (or the test score before any
            // observation) without mutating state.
            self.smoothed.unwrap_or_else(|| self.predictor.test_score())
        };

        let test_score = self.predictor.test_score();
        let (raw_violation, smoothed_violation) = match &interval {
            // Interval policy: a violation is the retained test score
            // escaping the serving interval — raw against the batch's own
            // interval, smoothed against that interval re-centered on the
            // EWMA midpoint. No tuned threshold involved.
            Some(iv) if finite && interval_mode => (
                !iv.contains(test_score),
                !iv.recentered(smoothed).contains(test_score),
            ),
            // Threshold policy (and interval-mode bare estimates, which
            // carry no interval): the legacy relative-drop cutoff.
            _ => {
                let cutoff = (1.0 - self.policy.threshold) * test_score;
                (finite && estimate < cutoff, finite && smoothed < cutoff)
            }
        };
        if finite {
            if smoothed_violation {
                self.violation_streak += 1;
            } else {
                self.violation_streak = 0;
            }
        }
        let report = BatchReport {
            batch_index: self.batches_seen,
            estimate,
            smoothed,
            raw_violation,
            smoothed_violation,
            alarm: self.violation_streak >= self.policy.consecutive_violations,
            interval,
            degraded: !finite,
            degrade_reason,
            telemetry: BatchTelemetry {
                violation_streak: self.violation_streak,
                per_class_ks,
            },
        };
        if let Some(m) = &self.metrics {
            if finite {
                m.raw.set(estimate);
                m.smoothed.set(smoothed);
                m.streak.set(self.violation_streak as f64);
                if let Some(iv) = &report.interval {
                    m.interval_width.set(iv.width());
                }
            } else {
                // Degraded batches leave the score gauges at their last
                // healthy values (a NaN gauge would also poison serialized
                // telemetry views).
                m.degraded.inc();
            }
            m.batches.inc();
            if report.alarm {
                m.alarms.inc();
            }
            if interval_mode && raw_violation {
                m.coverage_violations.inc();
            }
        }
        self.batches_seen += 1;
        self.history.push(report.clone());
        self.trim_history();
        report
    }

    /// All retained reports, in arrival order (bounded by
    /// [`Self::set_history_limit`]; everything by default).
    pub fn history(&self) -> &[BatchReport] {
        &self.history
    }

    /// Whether the alarm is currently firing.
    pub fn alarming(&self) -> bool {
        self.history.last().is_some_and(|r| r.alarm)
    }

    /// The underlying predictor.
    pub fn predictor(&self) -> &PerformancePredictor {
        &self.predictor
    }

    /// The configured policy.
    pub fn policy(&self) -> MonitorPolicy {
        self.policy
    }

    /// Total batches observed, including any observed before a restore.
    pub fn batches_seen(&self) -> usize {
        self.batches_seen
    }

    /// The current EWMA value, if any batch has been observed.
    pub fn smoothed(&self) -> Option<f64> {
        self.smoothed
    }

    /// The current consecutive-violation streak.
    pub fn violation_streak(&self) -> usize {
        self.violation_streak
    }

    /// Resets the alarm state, history and any open streaming window
    /// (e.g. after remediation).
    pub fn reset(&mut self) {
        self.history.clear();
        self.smoothed = None;
        self.violation_streak = 0;
        self.batches_seen = 0;
        self.window = None;
        self.window_degraded = None;
    }

    /// Reassembles a monitor from persisted state (persistence support).
    /// The open streaming window (if any) carries over bit-identically, so
    /// a window that started before a crash finishes with the exact report
    /// an uninterrupted monitor would have produced.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        predictor: PerformancePredictor,
        policy: MonitorPolicy,
        smoothed: Option<f64>,
        violation_streak: usize,
        batches_seen: usize,
        window: Option<BatchSketch>,
        window_degraded: Option<String>,
        reference_ecdf: Option<Vec<EcdfSketch>>,
    ) -> Result<Self, CoreError> {
        let mut monitor = Self::new(predictor, policy)?;
        monitor.smoothed = smoothed;
        monitor.violation_streak = violation_streak;
        monitor.batches_seen = batches_seen;
        monitor.window = window;
        monitor.window_degraded = window_degraded;
        monitor.reference_ecdf = reference_ecdf;
        Ok(monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::{train_logistic_regression, BlackBoxModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Relative-drop cutoff used by the *legacy threshold-policy* tests.
    /// The predictor's calibration contract (see
    /// `clean_serving_data_scores_near_test_score` in predictor.rs) only
    /// bounds clean estimates within 0.15 of the test score, so these
    /// tests must hand-tune at least that much slack into the cutoff —
    /// exactly the tuning the interval policy (the `interval_policy_*`
    /// tests below) makes unnecessary.
    const LEGACY_THRESHOLD: f64 = 0.2;

    fn monitor(policy: MonitorPolicy) -> (BatchMonitor, lvp_dataframe::DataFrame) {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(31);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor =
            PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng)
                .unwrap();
        (BatchMonitor::new(predictor, policy).unwrap(), serving)
    }

    #[test]
    fn clean_stream_never_alarms() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..5 {
            let report = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
            assert!(!report.alarm, "{report:?}");
        }
        assert!(!m.alarming());
        assert_eq!(m.history().len(), 5);
    }

    #[test]
    fn sustained_corruption_alarms_after_debounce() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
            ..MonitorPolicy::default()
        });
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let r1 = m.observe(&corrupted).unwrap();
        assert!(r1.raw_violation);
        assert!(r1.smoothed_violation);
        assert!(!r1.alarm, "first violation must not alarm yet");
        let r2 = m.observe(&corrupted).unwrap();
        assert!(r2.alarm, "second consecutive violation alarms");
        assert!(m.alarming());
    }

    #[test]
    fn recovery_clears_the_streak() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
            ..MonitorPolicy::default()
        });
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        m.observe(&corrupted).unwrap();
        m.observe(&serving).unwrap(); // recovery
        let r = m.observe(&corrupted).unwrap();
        assert!(!r.alarm, "streak was broken by the clean batch");
    }

    #[test]
    fn first_clean_batch_never_alarms_even_with_instant_debounce() {
        // Regression: with a zero-initialized EWMA the first smoothed value
        // would be α·estimate, far below the cutoff, and a policy with
        // consecutive_violations = 1 would page on a perfectly healthy first
        // batch. Seeding the EWMA with the raw estimate removes that bias.
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 1,
            ewma_alpha: 0.1, // small α maximizes the hypothetical init bias
            ..MonitorPolicy::default()
        });
        let mut rng = StdRng::seed_from_u64(35);
        let r = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
        assert_eq!(
            r.smoothed, r.estimate,
            "batch 0 must seed the EWMA with the raw estimate"
        );
        assert!(!r.alarm, "{r:?}");
        assert!(!m.alarming());
    }

    #[test]
    fn nan_estimate_does_not_poison_the_ewma() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        });
        m.observe_estimate(0.9);
        let r_nan = m.observe_estimate(f64::NAN);
        assert!(r_nan.estimate.is_nan(), "reported verbatim");
        assert_eq!(r_nan.smoothed, 0.9, "EWMA untouched by the NaN");
        assert!(!r_nan.raw_violation && !r_nan.smoothed_violation && !r_nan.alarm);
        // The stream keeps working afterwards with finite smoothed values.
        let r = m.observe_estimate(0.7);
        assert!((r.smoothed - 0.8).abs() < 1e-12, "{r:?}");
        assert!(r.smoothed.is_finite());
    }

    #[test]
    fn nan_estimate_neither_extends_nor_resets_the_streak() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
            ..MonitorPolicy::default()
        });
        m.observe_estimate(0.0); // violation, streak = 1
        assert_eq!(m.violation_streak(), 1);
        m.observe_estimate(f64::INFINITY); // no information
        assert_eq!(m.violation_streak(), 1, "streak held, not reset");
        let r = m.observe_estimate(0.0); // second real violation
        assert!(r.alarm, "{r:?}");
    }

    #[test]
    fn nan_before_any_finite_estimate_is_harmless() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 1,
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        });
        let r = m.observe_estimate(f64::NAN);
        assert!(!r.alarm && !r.smoothed_violation, "{r:?}");
        assert!(r.smoothed.is_finite());
        assert_eq!(m.smoothed(), None, "EWMA still unseeded");
        // The next finite estimate seeds the EWMA exactly.
        let r = m.observe_estimate(0.85);
        assert_eq!(r.smoothed, 0.85);
    }

    #[test]
    fn ewma_smooths_estimates() {
        let (mut m, _) = monitor(MonitorPolicy {
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        });
        let r1 = m.observe_estimate(1.0);
        assert_eq!(r1.smoothed, 1.0);
        let r2 = m.observe_estimate(0.0);
        assert!((r2.smoothed - 0.5).abs() < 1e-12);
        let r3 = m.observe_estimate(0.0);
        assert!((r3.smoothed - 0.25).abs() < 1e-12);
    }

    #[test]
    fn raw_and_smoothed_violations_can_diverge() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 0.2,
            ..MonitorPolicy::default()
        });
        // Warm the EWMA well above the cutoff, then inject one terrible
        // batch: the raw estimate violates, the smoothed signal holds
        // (with α = 0.2 the EWMA only drops to 0.8, above the cutoff
        // (1 − 0.2) · test_score ≤ 0.8).
        m.observe_estimate(1.0);
        let r = m.observe_estimate(0.0);
        assert!(r.raw_violation, "{r:?}");
        assert!(!r.smoothed_violation, "{r:?}");
        assert_eq!(
            m.violation_streak(),
            0,
            "streak follows the smoothed signal"
        );
    }

    #[test]
    fn attached_registry_tracks_scores_streak_and_alarms() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
            ..MonitorPolicy::default()
        });
        let registry = Registry::new();
        m.attach_telemetry(&registry);
        m.observe_estimate(0.9);
        m.observe_estimate(0.0);
        let r = m.observe_estimate(0.0);
        assert!(r.alarm);
        assert_eq!(r.telemetry.violation_streak, 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["monitor.batches_observed"], 3);
        assert_eq!(snap.counters["monitor.alarm_batches"], 1);
        assert_eq!(snap.gauges["monitor.raw_score"], 0.0);
        assert_eq!(snap.gauges["monitor.smoothed_score"], 0.0);
        assert_eq!(snap.gauges["monitor.violation_streak"], 2.0);
        // Monitor metrics derive from seeded estimates → none are volatile.
        assert!(snap.volatile.is_empty());
    }

    #[test]
    fn reference_outputs_enable_per_class_drift_tests() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let mut rng = StdRng::seed_from_u64(36);
        // Without retained reference outputs the drift list stays empty.
        let r = m.observe(&serving.sample_n(80, &mut rng)).unwrap();
        assert!(r.telemetry.per_class_ks.is_empty());

        m.retain_reference_outputs(&serving).unwrap();
        let clean = m.observe(&serving.sample_n(80, &mut rng)).unwrap();
        assert_eq!(clean.telemetry.per_class_ks.len(), 2, "one test per class");
        for drift in &clean.telemetry.per_class_ks {
            assert!(drift.statistic.is_finite() && drift.p_value.is_finite());
            assert!(
                drift.p_value > 0.01,
                "clean subsample must not look drifted: {drift:?}"
            );
        }

        // Wipe the label-revealing column: outputs shift, KS notices.
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let drifted = m.observe(&corrupted).unwrap();
        assert!(
            drifted
                .telemetry
                .per_class_ks
                .iter()
                .any(|d| d.p_value < 0.01),
            "{:?}",
            drifted.telemetry.per_class_ks
        );
    }

    #[test]
    fn single_row_batches_flow_through_the_monitor_without_nan() {
        // End-to-end exercise of the small-sample stats fixes: a one-row
        // serving batch produces one-element percentile inputs and
        // one-element KS samples (λ deep in the small-λ regime). Everything
        // must stay finite and alarm-free on clean data.
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            consecutive_violations: 1,
            ewma_alpha: 1.0,
            ..MonitorPolicy::default()
        });
        m.retain_reference_outputs(&serving).unwrap();
        let mut rng = StdRng::seed_from_u64(37);
        for _ in 0..3 {
            let r = m.observe(&serving.sample_n(1, &mut rng)).unwrap();
            assert!(r.estimate.is_finite() && r.smoothed.is_finite(), "{r:?}");
            for drift in &r.telemetry.per_class_ks {
                assert!(drift.p_value.is_finite(), "{drift:?}");
                assert!(
                    drift.p_value > 0.05,
                    "a single row cannot evidence drift: {drift:?}"
                );
            }
        }
    }

    /// A remote-endpoint stand-in that fails terminally whenever a batch
    /// has exactly `poison_rows` rows (content-dependent, like a poisoned
    /// key under a real fault plan).
    struct FailOnRows {
        inner: Arc<dyn BlackBoxModel>,
        poison_rows: usize,
    }

    impl BlackBoxModel for FailOnRows {
        fn predict_proba(&self, data: &lvp_dataframe::DataFrame) -> lvp_linalg::DenseMatrix {
            self.try_predict_proba(data).unwrap()
        }
        fn try_predict_proba(
            &self,
            data: &lvp_dataframe::DataFrame,
        ) -> Result<lvp_linalg::DenseMatrix, lvp_models::ModelError> {
            if data.n_rows() == self.poison_rows {
                return Err(lvp_models::ModelError::transient(
                    "endpoint down: retry budget exhausted",
                ));
            }
            Ok(self.inner.predict_proba(data))
        }
        fn n_classes(&self) -> usize {
            self.inner.n_classes()
        }
        fn name(&self) -> &str {
            "fail-on-rows"
        }
    }

    #[test]
    fn terminal_serving_failure_degrades_the_batch_not_the_run() {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(41);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> = Arc::new(FailOnRows {
            inner: Arc::from(train_logistic_regression(&train, &mut rng).unwrap()),
            // Fit-time batches of the 90-row test frame hold ≥ 30 rows, so
            // only the 13-row serving batches below ever hit the poison.
            poison_rows: 13,
        });
        let gens = standard_tabular_suite(test.schema());
        let predictor =
            PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng)
                .unwrap();
        let mut m = BatchMonitor::new(
            predictor,
            MonitorPolicy {
                threshold: LEGACY_THRESHOLD,
                consecutive_violations: 2,
                ewma_alpha: 0.5,
                ..MonitorPolicy::default()
            },
        )
        .unwrap();

        let healthy = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
        assert!(!healthy.degraded && healthy.degrade_reason.is_none());
        let ewma_before = m.smoothed();
        let streak_before = m.violation_streak();

        // The poisoned batch degrades instead of aborting the run.
        let r = m.observe(&serving.sample_n(13, &mut rng)).unwrap();
        assert!(r.degraded, "{r:?}");
        assert!(r.estimate.is_nan(), "estimate withheld");
        assert!(
            r.degrade_reason
                .as_deref()
                .unwrap()
                .contains("endpoint down"),
            "{r:?}"
        );
        assert_eq!(
            r.smoothed,
            ewma_before.unwrap(),
            "last healthy EWMA reported"
        );
        assert_eq!(m.smoothed(), ewma_before, "EWMA untouched");
        assert_eq!(m.violation_streak(), streak_before, "streak untouched");
        assert!(!r.alarm);
        assert_eq!(m.batches_seen(), 2, "degraded batches still count");

        // The stream recovers seamlessly afterwards.
        let r = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
        assert!(!r.degraded && r.estimate.is_finite());

        // Caller-side errors stay hard: an empty batch is not degradable.
        let err = m.observe(&serving.select_rows(&[])).unwrap_err();
        assert!(err.model_error().is_none());
        assert!(err.message.contains("empty"), "{err}");
    }

    #[test]
    fn degraded_batches_are_counted_and_leave_gauges_healthy() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let registry = Registry::new();
        m.attach_telemetry(&registry);
        m.observe_estimate(0.9);
        let r = m.observe_estimate(f64::NAN);
        assert!(r.degraded);
        assert_eq!(
            r.degrade_reason.as_deref(),
            Some("non-finite estimate quarantined")
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counters["monitor.degraded_batches"], 1);
        assert_eq!(snap.counters["monitor.batches_observed"], 2);
        // Score gauges keep their last healthy values (no NaN leaks into
        // serialized telemetry views).
        assert_eq!(snap.gauges["monitor.raw_score"], 0.9);
        assert!(snap.gauges["monitor.smoothed_score"].is_finite());
    }

    #[test]
    fn reset_clears_state() {
        let (mut m, serving) = monitor(MonitorPolicy::default());
        let mut rng = StdRng::seed_from_u64(33);
        m.observe(&serving.sample_n(50, &mut rng)).unwrap();
        m.observe_chunk(&serving).unwrap();
        m.reset();
        assert!(m.history().is_empty());
        assert!(!m.alarming());
        assert!(m.window().is_none());
    }

    #[test]
    fn streamed_window_matches_materialized_batch_estimate() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        // Stream the batch through in chunks...
        let rows: Vec<usize> = (0..serving.n_rows()).collect();
        for chunk in rows.chunks(17) {
            m.observe_chunk(&serving.select_rows(chunk)).unwrap();
        }
        assert_eq!(
            m.window().unwrap().rows(),
            serving.n_rows() as u64,
            "all rows folded in"
        );
        let streamed = m.finish_window().unwrap();
        assert!(m.window().is_none(), "window closed");
        assert!(streamed.estimate.is_finite());
        // ...and score the identical sketch state directly: the report's
        // estimate must match bit for bit (same sketch → same features).
        let proba = m.predictor().model_outputs(&serving).unwrap();
        let direct = m
            .predictor()
            .predict_from_sketch(&BatchSketch::from_outputs(&proba));
        assert_eq!(streamed.estimate.to_bits(), direct.unwrap().to_bits());
        // A healthy full serving frame stays alarm-free.
        assert!(!streamed.alarm, "{streamed:?}");
    }

    #[test]
    fn finishing_without_a_window_is_an_error() {
        let (mut m, _) = monitor(MonitorPolicy::default());
        assert!(m.finish_window().is_err());
    }

    #[test]
    fn zero_row_output_chunks_are_a_no_op() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let proba = m.predictor().model_outputs(&serving).unwrap();
        let empty = proba.select_rows(&[]);
        // Pre-fix this opened a window whose finish scored the sketch's
        // all-neutral empty featurization as a real (terrible) batch.
        m.observe_output_chunk(&empty).unwrap();
        assert!(m.window().is_none(), "empty chunk must not open a window");
        assert!(m.finish_window().is_err(), "nothing to finish");
        // Interleaved with real rows, empty chunks change nothing.
        m.observe_output_chunk(&empty).unwrap();
        m.observe_output_chunk(&proba).unwrap();
        m.observe_output_chunk(&empty).unwrap();
        assert_eq!(m.window().unwrap().rows(), proba.rows() as u64);
        let streamed = m.finish_window().unwrap();
        assert!(!streamed.degraded && streamed.estimate.is_finite());
        let direct = m
            .predictor()
            .predict_from_sketch(&BatchSketch::from_outputs(&proba))
            .unwrap();
        assert_eq!(streamed.estimate.to_bits(), direct.to_bits());
        // The frame-level chunk path keeps its typed caller error.
        let err = m.observe_chunk(&serving.select_rows(&[])).unwrap_err();
        assert!(err.message.contains("empty"), "{err}");
    }

    #[test]
    fn merging_zero_shards_is_a_typed_error() {
        let (mut m, _) = monitor(MonitorPolicy::default());
        let err = m.merge_shard_sketches(&[]).unwrap_err();
        assert!(err.message.contains("no shard sketches"), "{err}");
        let err = m.merge_shard_windows(&[]).unwrap_err();
        assert!(err.message.contains("no shard windows"), "{err}");
        assert_eq!(m.batches_seen(), 0, "failed merges consume no batch index");
        assert!(m.history().is_empty());
    }

    #[test]
    fn merging_only_empty_sketches_is_a_typed_error() {
        let (mut m, _) = monitor(MonitorPolicy::default());
        let n = m.predictor().n_classes();
        let err = m
            .merge_shard_sketches(&[BatchSketch::new(n), BatchSketch::new(n)])
            .unwrap_err();
        assert!(err.message.contains("zero observed rows"), "{err}");
        assert_eq!(m.batches_seen(), 0);
    }

    #[test]
    fn degraded_shard_window_poisons_the_merged_report() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let proba = m.predictor().model_outputs(&serving).unwrap();
        let healthy = ShardWindow {
            sketch: BatchSketch::from_outputs(&proba),
            degraded: None,
        };
        let poisoned = ShardWindow {
            sketch: BatchSketch::from_outputs(&proba.select_rows(&[0, 1, 2])),
            degraded: Some("endpoint down: retry budget exhausted".to_string()),
        };
        let r = m.merge_shard_windows(&[healthy.clone(), poisoned]).unwrap();
        assert!(r.degraded, "{r:?}");
        assert!(r.estimate.is_nan(), "estimate withheld");
        let reason = r.degrade_reason.as_deref().unwrap();
        assert!(
            reason.contains("shard 1") && reason.contains("endpoint down"),
            "{reason}"
        );
        // An all-healthy fleet still scores, bit-identical to the single
        // shard's own sketch.
        let r = m.merge_shard_windows(&[healthy]).unwrap();
        assert!(!r.degraded && r.estimate.is_finite());
        let direct = m
            .predictor()
            .predict_from_sketch(&BatchSketch::from_outputs(&proba))
            .unwrap();
        assert_eq!(r.estimate.to_bits(), direct.to_bits());
    }

    #[test]
    fn take_window_shard_exports_sketch_and_poison() {
        let (mut m, serving) = monitor(MonitorPolicy::default());
        assert!(m.take_window_shard().is_none(), "no window yet");
        m.observe_chunk(&serving).unwrap();
        m.abandon_window("upstream queue lost the tail of the window");
        let shard = m.take_window_shard().unwrap();
        assert_eq!(shard.sketch.rows(), serving.n_rows() as u64);
        assert_eq!(
            shard.degraded.as_deref(),
            Some("upstream queue lost the tail of the window")
        );
        assert!(m.window().is_none() && m.window_degraded().is_none());
    }

    #[test]
    fn history_limit_bounds_retention_with_absolute_indices() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        m.set_history_limit(Some(3));
        for i in 0..7 {
            m.observe_estimate(0.8 + 0.01 * i as f64);
        }
        assert_eq!(m.history().len(), 3, "history bounded");
        assert_eq!(m.batches_seen(), 7, "absolute count unaffected");
        let indices: Vec<usize> = m.history().iter().map(|r| r.batch_index).collect();
        assert_eq!(indices, vec![4, 5, 6], "most recent reports retained");
        // Tightening the limit trims immediately; lifting it stops trimming.
        m.set_history_limit(Some(1));
        assert_eq!(m.history().len(), 1);
        m.set_history_limit(None);
        m.observe_estimate(0.9);
        assert_eq!(m.history().len(), 2);
    }

    #[test]
    fn batch_report_serde_round_trips_including_nan_estimate() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        m.observe_estimate(0.9);
        let degraded = m.observe_estimate(f64::NAN);
        for report in m.history() {
            let json = serde_json::to_string(report).unwrap();
            let back: BatchReport = serde_json::from_str(&json).unwrap();
            // NaN != NaN, so compare degraded reports field by field.
            assert_eq!(back.batch_index, report.batch_index);
            assert_eq!(back.estimate.is_nan(), report.estimate.is_nan());
            if !report.estimate.is_nan() {
                assert_eq!(back, *report);
            }
            assert_eq!(back.degrade_reason, report.degrade_reason);
            assert_eq!(back.telemetry, report.telemetry);
        }
        assert!(degraded.degraded);
    }

    #[test]
    fn merged_shards_report_bit_identically_to_a_single_stream() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        m.retain_reference_outputs(&serving).unwrap();
        let rows: Vec<usize> = (0..serving.n_rows()).collect();

        // One monitor-level stream over everything...
        for chunk in rows.chunks(13) {
            m.observe_chunk(&serving.select_rows(chunk)).unwrap();
        }
        let single = m.finish_window().unwrap();

        // ...versus 4 shards, each sketching independently.
        let proba = m.predictor().model_outputs(&serving).unwrap();
        let shards: Vec<BatchSketch> = rows
            .chunks(rows.len().div_ceil(4))
            .map(|shard_rows| BatchSketch::from_outputs(&proba.select_rows(shard_rows)))
            .collect();
        assert_eq!(shards.len(), 4);
        let merged = m.merge_shard_sketches(&shards).unwrap();

        assert_eq!(single.estimate.to_bits(), merged.estimate.to_bits());
        assert_eq!(
            single.telemetry.per_class_ks, merged.telemetry.per_class_ks,
            "sketched drift tests agree exactly"
        );
    }

    #[test]
    fn chunk_serving_failure_degrades_the_window_not_the_run() {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(51);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> = Arc::new(FailOnRows {
            inner: Arc::from(train_logistic_regression(&train, &mut rng).unwrap()),
            poison_rows: 13,
        });
        let gens = standard_tabular_suite(test.schema());
        let predictor =
            PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng)
                .unwrap();
        let mut m = BatchMonitor::new(
            predictor,
            MonitorPolicy {
                threshold: LEGACY_THRESHOLD,
                ..MonitorPolicy::default()
            },
        )
        .unwrap();

        m.observe_chunk(&serving.sample_n(50, &mut rng)).unwrap();
        m.observe_chunk(&serving.sample_n(13, &mut rng)).unwrap(); // poisoned
        m.observe_chunk(&serving.sample_n(50, &mut rng)).unwrap();
        let r = m.finish_window().unwrap();
        assert!(r.degraded, "{r:?}");
        assert!(r.estimate.is_nan(), "estimate withheld");
        assert!(
            r.degrade_reason
                .as_deref()
                .unwrap()
                .contains("endpoint down"),
            "{r:?}"
        );

        // The next window is clean and recovers seamlessly.
        m.observe_chunk(&serving.sample_n(50, &mut rng)).unwrap();
        let r = m.finish_window().unwrap();
        assert!(!r.degraded && r.estimate.is_finite(), "{r:?}");
    }

    #[test]
    fn abandoned_window_reports_degraded() {
        let (mut m, serving) = monitor(MonitorPolicy::default());
        m.observe_chunk(&serving).unwrap();
        m.abandon_window("upstream queue lost the tail of the window");
        let r = m.finish_window().unwrap();
        assert!(r.degraded);
        assert_eq!(
            r.degrade_reason.as_deref(),
            Some("upstream queue lost the tail of the window")
        );
    }

    #[test]
    fn streaming_telemetry_tracks_chunks_rows_and_footprint() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let registry = Registry::new();
        m.attach_telemetry(&registry);
        let rows: Vec<usize> = (0..serving.n_rows()).collect();
        for chunk in rows.chunks(20) {
            m.observe_chunk(&serving.select_rows(chunk)).unwrap();
        }
        let expected_bytes = m.window().unwrap().approx_bytes();
        m.finish_window().unwrap();
        let shard = BatchSketch::from_outputs(&m.predictor().model_outputs(&serving).unwrap());
        m.merge_shard_sketches(&[shard]).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["monitor.chunks_observed"],
            rows.len().div_ceil(20) as u64
        );
        assert_eq!(snap.counters["monitor.chunk_rows"], rows.len() as u64);
        assert_eq!(snap.counters["monitor.sketch_merges"], 1);
        assert_eq!(
            snap.gauges["monitor.window_sketch_bytes"],
            expected_bytes as f64
        );
        // Chunk latency records wall-clock per chunk; the deterministic
        // view keeps its call count but strips the durations.
        let latency = &snap.histograms["monitor.chunk_latency"];
        assert_eq!(latency.count, rows.len().div_ceil(20) as u64);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let (m, _) = monitor(MonitorPolicy::default());
        let predictor_policy_pairs = [
            MonitorPolicy {
                threshold: 1.0,
                ..MonitorPolicy::default()
            },
            MonitorPolicy {
                consecutive_violations: 0,
                ..MonitorPolicy::default()
            },
            MonitorPolicy {
                ewma_alpha: 0.0,
                ..MonitorPolicy::default()
            },
        ];
        // Rebuild monitors from the same predictor is not possible (moved),
        // so validate policies via a fresh fit each time.
        drop(m);
        for policy in predictor_policy_pairs {
            let df = toy_frame(120);
            let mut rng = StdRng::seed_from_u64(34);
            let model: Arc<dyn BlackBoxModel> =
                Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
            let gens = standard_tabular_suite(df.schema());
            let predictor =
                PerformancePredictor::fit(model, &df, &gens, &PredictorConfig::fast(), &mut rng)
                    .unwrap();
            assert!(BatchMonitor::new(predictor, policy).is_err(), "{policy:?}");
        }
    }

    #[test]
    fn interval_policy_covers_clean_batches_without_a_tuned_threshold() {
        // The honest version of the old LEGACY_THRESHOLD contract: at seed
        // 31 the calibrated interval must itself cover the retained test
        // score on clean serving data — no hand-tuned slack anywhere.
        let (mut m, serving) = monitor(MonitorPolicy::default().with_interval_alarm());
        assert_eq!(m.policy().alarm_mode(), AlarmMode::Interval);
        let test_score = m.predictor().test_score();
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..5 {
            let r = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
            let iv = r
                .interval
                .expect("interval-policy reports carry the interval");
            iv.validate().unwrap();
            assert_eq!(r.estimate.to_bits(), iv.point.to_bits());
            assert!(
                iv.contains(test_score),
                "clean interval [{}, {}] must cover test score {test_score}",
                iv.lo,
                iv.hi
            );
            assert!(
                !r.raw_violation && !r.smoothed_violation && !r.alarm,
                "{r:?}"
            );
        }
        assert!(!m.alarming());
    }

    #[test]
    fn interval_policy_flags_sustained_drift_after_debounce() {
        // The PR 1 drift scenario, without any hand-tuned threshold:
        // wiping the label-revealing column must push the serving interval
        // entirely below the retained test score.
        let (mut m, serving) = monitor(
            MonitorPolicy {
                consecutive_violations: 2,
                ewma_alpha: 1.0,
                ..MonitorPolicy::default()
            }
            .with_interval_alarm(),
        );
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let r1 = m.observe(&corrupted).unwrap();
        let iv = r1.interval.unwrap();
        assert!(
            !iv.contains(m.predictor().test_score()),
            "corrupted interval [{}, {}] still covers test score {}",
            iv.lo,
            iv.hi,
            m.predictor().test_score()
        );
        assert!(r1.raw_violation && r1.smoothed_violation);
        assert!(!r1.alarm, "first violation must not alarm yet");
        let r2 = m.observe(&corrupted).unwrap();
        assert!(r2.alarm, "second consecutive violation alarms");
        assert!(m.alarming());
        // Recovery on clean data clears the streak, as under the old policy.
        let clean = m.observe(&serving).unwrap();
        assert!(!clean.smoothed_violation && !clean.alarm, "{clean:?}");
    }

    #[test]
    fn interval_policy_ewma_smooths_the_midpoint() {
        let (mut m, serving) = monitor(
            MonitorPolicy {
                ewma_alpha: 0.5,
                ..MonitorPolicy::default()
            }
            .with_interval_alarm(),
        );
        let mut rng = StdRng::seed_from_u64(38);
        let r1 = m.observe(&serving.sample_n(80, &mut rng)).unwrap();
        let m1 = r1.interval.unwrap().midpoint();
        assert_eq!(
            r1.smoothed.to_bits(),
            m1.to_bits(),
            "batch 0 seeds the EWMA with the interval midpoint"
        );
        let r2 = m.observe(&serving.sample_n(80, &mut rng)).unwrap();
        let m2 = r2.interval.unwrap().midpoint();
        assert!(
            (r2.smoothed - (0.5 * m2 + 0.5 * m1)).abs() < 1e-15,
            "{r2:?}"
        );
    }

    #[test]
    fn interval_policy_telemetry_tracks_width_and_coverage() {
        let (mut m, serving) = monitor(
            MonitorPolicy {
                consecutive_violations: 2,
                ewma_alpha: 1.0,
                ..MonitorPolicy::default()
            }
            .with_interval_alarm(),
        );
        let registry = Registry::new();
        m.attach_telemetry(&registry);
        let mut rng = StdRng::seed_from_u64(39);
        let clean = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["monitor.coverage_violations"], 0);
        assert_eq!(
            snap.gauges["monitor.interval_width"],
            clean.interval.unwrap().width()
        );
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        m.observe(&corrupted).unwrap();
        m.observe(&corrupted).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["monitor.coverage_violations"], 2);
        assert_eq!(snap.counters["monitor.alarm_batches"], 1);
        // Interval metrics derive from seeded estimates → not volatile.
        assert!(snap.volatile.is_empty());
    }

    #[test]
    fn observe_interval_validates_external_intervals() {
        let (mut m, _) = monitor(MonitorPolicy::default().with_interval_alarm());
        let test_score = m.predictor().test_score();
        // A healthy external interval around the test score is recorded.
        let good = ScoreInterval {
            point: test_score,
            lo: test_score - 0.05,
            hi: test_score + 0.05,
            alpha: 0.1,
        };
        let r = m.observe_interval(good).unwrap();
        assert!(!r.raw_violation && !r.degraded, "{r:?}");
        assert_eq!(r.interval, Some(good));
        // Inconsistent intervals are typed errors and consume no batch index.
        let bad = ScoreInterval {
            point: 0.9,
            lo: 0.5,
            hi: 0.8,
            alpha: 0.1,
        };
        let err = m.observe_interval(bad).unwrap_err();
        assert!(err.message.contains("lo ≤ point ≤ hi"), "{err}");
        let mixed = ScoreInterval {
            point: f64::NAN,
            lo: 0.5,
            hi: 0.8,
            alpha: 0.1,
        };
        let err = m.observe_interval(mixed).unwrap_err();
        assert!(err.message.contains("all finite or all NaN"), "{err}");
        let bad_alpha = ScoreInterval {
            point: 0.7,
            lo: 0.6,
            hi: 0.8,
            alpha: 1.5,
        };
        assert!(m.observe_interval(bad_alpha).is_err());
        assert_eq!(
            m.batches_seen(),
            1,
            "rejected intervals consume no batch index"
        );
        // An all-NaN interval is a degraded batch, like a NaN estimate.
        let r = m.observe_interval(ScoreInterval::degraded(0.1)).unwrap();
        assert!(r.degraded && r.estimate.is_nan(), "{r:?}");
        assert_eq!(
            r.degrade_reason.as_deref(),
            Some("degraded interval quarantined")
        );
        assert!(r.interval.unwrap().is_degraded());
        assert_eq!(m.batches_seen(), 2);
    }

    #[test]
    fn interval_policy_streams_and_shard_merges_carry_the_interval() {
        let (mut m, serving) = monitor(MonitorPolicy::default().with_interval_alarm());
        let rows: Vec<usize> = (0..serving.n_rows()).collect();
        for chunk in rows.chunks(17) {
            m.observe_chunk(&serving.select_rows(chunk)).unwrap();
        }
        let streamed = m.finish_window().unwrap();
        let iv = streamed.interval.unwrap();
        iv.validate().unwrap();
        assert_eq!(streamed.estimate.to_bits(), iv.point.to_bits());
        // The direct sketch path produces the identical interval.
        let proba = m.predictor().model_outputs(&serving).unwrap();
        let direct = m
            .predictor()
            .predict_interval_from_sketch(&BatchSketch::from_outputs(&proba))
            .unwrap();
        assert_eq!(iv, direct);
        // Shard merges route through the same interval path.
        let merged = m
            .merge_shard_sketches(&[BatchSketch::from_outputs(&proba)])
            .unwrap();
        assert_eq!(merged.interval, Some(direct));
    }

    #[test]
    fn threshold_policy_reports_carry_no_interval() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: LEGACY_THRESHOLD,
            ..MonitorPolicy::default()
        });
        assert_eq!(m.policy().alarm_mode(), AlarmMode::Threshold);
        let mut rng = StdRng::seed_from_u64(42);
        let r = m.observe(&serving.sample_n(80, &mut rng)).unwrap();
        assert_eq!(r.interval, None, "legacy policy is unchanged: {r:?}");
    }

    #[test]
    fn degraded_interval_batches_report_nan_bounds() {
        let (mut m, _) = monitor(MonitorPolicy::default().with_interval_alarm());
        let r = m.observe_degraded("shed by admission control");
        assert!(r.degraded);
        let iv = r.interval.unwrap();
        assert!(iv.is_degraded(), "{iv:?}");
        assert_eq!(iv.alpha, m.predictor().interval_alpha());
        // And the report serde round-trips through the NaN↔null convention.
        let json = serde_json::to_string(&r).unwrap();
        let back: BatchReport = serde_json::from_str(&json).unwrap();
        assert!(back.interval.unwrap().is_degraded());
        assert_eq!(back.interval.unwrap().alpha, iv.alpha);
    }
}
