//! Continuous monitoring of a deployed model's serving batches.
//!
//! The paper positions the performance predictor as a component that is
//! "deployed along with the original model" so that "end users and serving
//! systems can raise alarms" (§1, Figure 1b). This module supplies that
//! serving-system half: a [`BatchMonitor`] consumes one serving batch at a
//! time, tracks the history of estimated scores, smooths them with an
//! exponentially weighted moving average, and applies a debounced alarm
//! policy (alarm only after `k` consecutive violations) so a single noisy
//! batch does not page an on-call engineer.

use crate::{CoreError, PerformancePredictor};
use lvp_dataframe::DataFrame;
use serde::{Deserialize, Serialize};

/// Alarm policy for a [`BatchMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorPolicy {
    /// Acceptable relative score drop against the test score (e.g. 0.05).
    pub threshold: f64,
    /// Consecutive violating batches required before an alarm fires.
    pub consecutive_violations: usize,
    /// Smoothing factor of the EWMA over estimates, in `(0, 1]`;
    /// 1.0 disables smoothing.
    pub ewma_alpha: f64,
}

impl Default for MonitorPolicy {
    fn default() -> Self {
        Self {
            threshold: 0.05,
            consecutive_violations: 2,
            ewma_alpha: 0.5,
        }
    }
}

/// The monitor's verdict on one batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// Sequence number of the batch (starting at 0, monotonically
    /// increasing across restarts restored from a
    /// [`MonitorArtifact`](crate::MonitorArtifact)).
    pub batch_index: usize,
    /// Raw estimated score for this batch.
    pub estimate: f64,
    /// EWMA-smoothed estimate.
    pub smoothed: f64,
    /// Whether this batch's *raw* estimate individually violates the
    /// threshold (diagnostics; a single noisy batch can trip this while
    /// the smoothed signal stays healthy).
    pub raw_violation: bool,
    /// Whether the *EWMA-smoothed* estimate violates the threshold — the
    /// signal the debounce streak and the alarm are driven by.
    pub smoothed_violation: bool,
    /// Whether the debounced alarm is firing.
    pub alarm: bool,
}

/// Tracks estimated scores across a stream of serving batches and raises
/// debounced alarms on sustained drops.
pub struct BatchMonitor {
    predictor: PerformancePredictor,
    policy: MonitorPolicy,
    history: Vec<BatchReport>,
    smoothed: Option<f64>,
    violation_streak: usize,
    /// Total batches observed, including ones observed before a restart
    /// (restored from a [`MonitorArtifact`](crate::MonitorArtifact));
    /// `history` only holds this process's reports.
    batches_seen: usize,
}

impl BatchMonitor {
    /// Wraps a fitted predictor with an alarm policy.
    pub fn new(predictor: PerformancePredictor, policy: MonitorPolicy) -> Result<Self, CoreError> {
        if !(0.0..1.0).contains(&policy.threshold) {
            return Err(CoreError::new("threshold must lie in [0, 1)"));
        }
        if policy.consecutive_violations == 0 {
            return Err(CoreError::new("need at least one violation to alarm"));
        }
        if !(0.0 < policy.ewma_alpha && policy.ewma_alpha <= 1.0) {
            return Err(CoreError::new("ewma_alpha must lie in (0, 1]"));
        }
        Ok(Self {
            predictor,
            policy,
            history: Vec::new(),
            smoothed: None,
            violation_streak: 0,
            batches_seen: 0,
        })
    }

    /// Scores one serving batch and updates the alarm state.
    pub fn observe(&mut self, batch: &DataFrame) -> Result<BatchReport, CoreError> {
        let estimate = self.predictor.predict(batch)?;
        Ok(self.observe_estimate(estimate))
    }

    /// Updates the monitor from an externally computed estimate (e.g. when
    /// the predictor runs in a different process).
    pub fn observe_estimate(&mut self, estimate: f64) -> BatchReport {
        let alpha = self.policy.ewma_alpha;
        let smoothed = match self.smoothed {
            Some(prev) => alpha * estimate + (1.0 - alpha) * prev,
            None => estimate,
        };
        self.smoothed = Some(smoothed);

        let cutoff = (1.0 - self.policy.threshold) * self.predictor.test_score();
        let raw_violation = estimate < cutoff;
        let smoothed_violation = smoothed < cutoff;
        if smoothed_violation {
            self.violation_streak += 1;
        } else {
            self.violation_streak = 0;
        }
        let report = BatchReport {
            batch_index: self.batches_seen,
            estimate,
            smoothed,
            raw_violation,
            smoothed_violation,
            alarm: self.violation_streak >= self.policy.consecutive_violations,
        };
        self.batches_seen += 1;
        self.history.push(report);
        report
    }

    /// All reports so far, in arrival order.
    pub fn history(&self) -> &[BatchReport] {
        &self.history
    }

    /// Whether the alarm is currently firing.
    pub fn alarming(&self) -> bool {
        self.history.last().is_some_and(|r| r.alarm)
    }

    /// The underlying predictor.
    pub fn predictor(&self) -> &PerformancePredictor {
        &self.predictor
    }

    /// The configured policy.
    pub fn policy(&self) -> MonitorPolicy {
        self.policy
    }

    /// Total batches observed, including any observed before a restore.
    pub fn batches_seen(&self) -> usize {
        self.batches_seen
    }

    /// The current EWMA value, if any batch has been observed.
    pub fn smoothed(&self) -> Option<f64> {
        self.smoothed
    }

    /// The current consecutive-violation streak.
    pub fn violation_streak(&self) -> usize {
        self.violation_streak
    }

    /// Resets the alarm state and history (e.g. after remediation).
    pub fn reset(&mut self) {
        self.history.clear();
        self.smoothed = None;
        self.violation_streak = 0;
        self.batches_seen = 0;
    }

    /// Reassembles a monitor from persisted state (persistence support).
    pub(crate) fn from_parts(
        predictor: PerformancePredictor,
        policy: MonitorPolicy,
        smoothed: Option<f64>,
        violation_streak: usize,
        batches_seen: usize,
    ) -> Result<Self, CoreError> {
        let mut monitor = Self::new(predictor, policy)?;
        monitor.smoothed = smoothed;
        monitor.violation_streak = violation_streak;
        monitor.batches_seen = batches_seen;
        Ok(monitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::{train_logistic_regression, BlackBoxModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    /// Alarm threshold used by the monitor tests. The predictor's
    /// calibration contract (see `clean_serving_data_scores_near_test_score`
    /// in predictor.rs) only bounds clean estimates within 0.15 of the test
    /// score, so the tests must tolerate at least that much slack; heavy
    /// corruption drops estimates to ~0.5, far below this cutoff.
    const TEST_THRESHOLD: f64 = 0.2;

    fn monitor(policy: MonitorPolicy) -> (BatchMonitor, lvp_dataframe::DataFrame) {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(31);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let predictor =
            PerformancePredictor::fit(model, &test, &gens, &PredictorConfig::fast(), &mut rng)
                .unwrap();
        (BatchMonitor::new(predictor, policy).unwrap(), serving)
    }

    #[test]
    fn clean_stream_never_alarms() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: TEST_THRESHOLD,
            ..MonitorPolicy::default()
        });
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..5 {
            let report = m.observe(&serving.sample_n(100, &mut rng)).unwrap();
            assert!(!report.alarm, "{report:?}");
        }
        assert!(!m.alarming());
        assert_eq!(m.history().len(), 5);
    }

    #[test]
    fn sustained_corruption_alarms_after_debounce() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: TEST_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
        });
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let r1 = m.observe(&corrupted).unwrap();
        assert!(r1.raw_violation);
        assert!(r1.smoothed_violation);
        assert!(!r1.alarm, "first violation must not alarm yet");
        let r2 = m.observe(&corrupted).unwrap();
        assert!(r2.alarm, "second consecutive violation alarms");
        assert!(m.alarming());
    }

    #[test]
    fn recovery_clears_the_streak() {
        let (mut m, serving) = monitor(MonitorPolicy {
            threshold: TEST_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 1.0,
        });
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        m.observe(&corrupted).unwrap();
        m.observe(&serving).unwrap(); // recovery
        let r = m.observe(&corrupted).unwrap();
        assert!(!r.alarm, "streak was broken by the clean batch");
    }

    #[test]
    fn ewma_smooths_estimates() {
        let (mut m, _) = monitor(MonitorPolicy {
            ewma_alpha: 0.5,
            ..MonitorPolicy::default()
        });
        let r1 = m.observe_estimate(1.0);
        assert_eq!(r1.smoothed, 1.0);
        let r2 = m.observe_estimate(0.0);
        assert!((r2.smoothed - 0.5).abs() < 1e-12);
        let r3 = m.observe_estimate(0.0);
        assert!((r3.smoothed - 0.25).abs() < 1e-12);
    }

    #[test]
    fn raw_and_smoothed_violations_can_diverge() {
        let (mut m, _) = monitor(MonitorPolicy {
            threshold: TEST_THRESHOLD,
            consecutive_violations: 2,
            ewma_alpha: 0.2,
        });
        // Warm the EWMA well above the cutoff, then inject one terrible
        // batch: the raw estimate violates, the smoothed signal holds
        // (with α = 0.2 the EWMA only drops to 0.8, above the cutoff
        // (1 − 0.2) · test_score ≤ 0.8).
        m.observe_estimate(1.0);
        let r = m.observe_estimate(0.0);
        assert!(r.raw_violation, "{r:?}");
        assert!(!r.smoothed_violation, "{r:?}");
        assert_eq!(
            m.violation_streak(),
            0,
            "streak follows the smoothed signal"
        );
    }

    #[test]
    fn reset_clears_state() {
        let (mut m, serving) = monitor(MonitorPolicy::default());
        let mut rng = StdRng::seed_from_u64(33);
        m.observe(&serving.sample_n(50, &mut rng)).unwrap();
        m.reset();
        assert!(m.history().is_empty());
        assert!(!m.alarming());
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let (m, _) = monitor(MonitorPolicy::default());
        let predictor_policy_pairs = [
            MonitorPolicy {
                threshold: 1.0,
                ..MonitorPolicy::default()
            },
            MonitorPolicy {
                consecutive_violations: 0,
                ..MonitorPolicy::default()
            },
            MonitorPolicy {
                ewma_alpha: 0.0,
                ..MonitorPolicy::default()
            },
        ];
        // Rebuild monitors from the same predictor is not possible (moved),
        // so validate policies via a fresh fit each time.
        drop(m);
        for policy in predictor_policy_pairs {
            let df = toy_frame(120);
            let mut rng = StdRng::seed_from_u64(34);
            let model: Arc<dyn BlackBoxModel> =
                Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
            let gens = standard_tabular_suite(df.schema());
            let predictor =
                PerformancePredictor::fit(model, &df, &gens, &PredictorConfig::fast(), &mut rng)
                    .unwrap();
            assert!(BatchMonitor::new(predictor, policy).is_err(), "{policy:?}");
        }
    }
}
