//! Learning to validate the predictions of black box classifiers — the
//! paper's core contribution.
//!
//! Given a pretrained black box model `f∘φ`, a held-out labeled test set and
//! a set of user-specified error generators, this crate learns:
//!
//! * a **performance predictor** ([`PerformancePredictor`], Algorithms 1 &
//!   2): a random-forest regressor that estimates the model's score on an
//!   unseen, *unlabeled* serving batch from class-wise percentiles of the
//!   model's output distribution;
//! * a **performance validator** ([`PerformanceValidator`], §2/§4): a
//!   gradient-boosted classifier that decides whether the score on the
//!   serving batch is within a user-chosen threshold `t` of the test score,
//!   using the percentile features plus Kolmogorov–Smirnov statistics
//!   between the serving-time and (retained) test-time model outputs;
//! * the three task-independent **baselines** it is evaluated against
//!   (§6.2): [`RelationalShiftDetector`] (univariate tests on raw inputs),
//!   [`BbseDetector`] (KS on softmax outputs, Lipton et al.) and
//!   [`BbseHardDetector`] (χ² on predicted-class counts, Rabanser et al.).

mod baselines;
pub mod engine;
mod features;
mod interval;
mod monitor;
mod persistence;
mod predictor;
mod validator;

pub use baselines::{Baseline, BbseDetector, BbseHardDetector, RelationalShiftDetector};
pub use engine::{
    derive_run_seed, generate_batches_instrumented, generate_batches_resilient,
    generate_batches_seeded, generate_training_examples_instrumented,
    generate_training_examples_resilient, generate_training_examples_seeded, subsample_lower_bound,
    GeneratedBatch, GenerationOutcome, SkippedBatch,
};
pub use features::{feature_dimensionality, prediction_statistics, BatchSketch, FeatureSource};
pub use interval::{conformal_halfwidth, ScoreInterval, DEFAULT_INTERVAL_ALPHA};
pub use monitor::{
    AlarmMode, BatchMonitor, BatchReport, BatchTelemetry, ClassDrift, MonitorPolicy, ShardWindow,
};
pub use persistence::{
    atomic_write_durable, checksum64, from_json, is_enveloped, load_json, save_json, to_json,
    unwrap_envelope, verdicts_identical, wrap_envelope, MetricTag, MonitorArtifact,
    PredictorArtifact, ServingArtifact, ValidatorArtifact, ARTIFACT_VERSION, ENVELOPE_MAGIC,
};
pub use predictor::{
    generate_training_examples, PerformancePredictor, PredictorConfig, TrainingExample,
};
pub use validator::{PerformanceValidator, ValidationOutcome, ValidatorConfig};

use lvp_dataframe::DataFrame;
use lvp_linalg::DenseMatrix;

/// The scoring function `L` the black box model is known to optimize (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Classification accuracy.
    #[default]
    Accuracy,
    /// Area under the ROC curve (binary tasks).
    Auc,
}

impl Metric {
    /// Computes the metric from a probability matrix and true labels.
    ///
    /// [`Metric::Auc`] requires exactly two probability columns: scoring a
    /// degenerate single-column or multiclass matrix is rejected rather
    /// than silently ranking an arbitrary column.
    pub fn score(self, proba: &DenseMatrix, labels: &[u32]) -> Result<f64, CoreError> {
        match self {
            Metric::Accuracy => {
                let truth: Vec<usize> = labels.iter().map(|&l| l as usize).collect();
                Ok(lvp_stats::accuracy(&proba.argmax_rows(), &truth))
            }
            Metric::Auc => {
                if proba.cols() != 2 {
                    return Err(CoreError::new(format!(
                        "AUC requires a binary model with 2 probability columns, got {}",
                        proba.cols()
                    )));
                }
                let scores = proba.column(1);
                let truth: Vec<bool> = labels.iter().map(|&l| l == 1).collect();
                Ok(lvp_stats::auc_binary(&scores, &truth))
            }
        }
    }

    /// Scores a model against a labeled frame.
    pub fn score_model(
        self,
        model: &dyn lvp_models::BlackBoxModel,
        df: &DataFrame,
    ) -> Result<f64, CoreError> {
        self.score(&model.predict_proba(df), df.labels())
    }

    /// Checks up front that this metric can score a model with `n_classes`
    /// output columns, so batch-generation loops fail fast instead of on
    /// the first scored batch.
    pub(crate) fn validate_n_classes(self, n_classes: usize) -> Result<(), CoreError> {
        match self {
            Metric::Accuracy => Ok(()),
            Metric::Auc if n_classes == 2 => Ok(()),
            Metric::Auc => Err(CoreError::new(format!(
                "AUC requires a binary model with 2 probability columns, got {n_classes}"
            ))),
        }
    }
}

/// Machine-readable classification of a [`CoreError`], so callers can
/// drive policy without parsing messages. Today the non-`Other` kinds all
/// come from the persistence layer: a monitoring daemon recovering its
/// state needs to distinguish "the artifact file is damaged" (truncation,
/// bit rot — restore from a replica, alarm loudly) from a plain I/O
/// failure or a semantic version mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreErrorKind {
    /// Anything without a more specific classification.
    Other,
    /// A filesystem operation failed.
    Io,
    /// A persisted artifact ends before its declared payload length —
    /// the signature of a crash mid-write.
    Truncated,
    /// A persisted artifact's payload does not match its recorded
    /// checksum — bit rot, or an overwrite by something else.
    ChecksumMismatch,
    /// A persisted artifact's envelope header is malformed.
    CorruptHeader,
}

/// Errors produced while fitting or applying predictors and validators.
///
/// Wrapped failures (notably [`lvp_models::ModelError`]s from a remote
/// serving path) are kept as a proper `source` chain rather than being
/// stringified, so callers can walk [`std::error::Error::source`] — or use
/// [`CoreError::model_error`] — to recover the typed cause and decide, for
/// instance, whether a failed batch is retryable/degradable. Persistence
/// failures additionally carry a [`CoreErrorKind`] so integrity damage
/// (truncation, checksum mismatch) is distinguishable from ordinary I/O.
#[derive(Debug)]
pub struct CoreError {
    /// Human-readable description.
    pub message: String,
    /// Machine-readable classification.
    kind: CoreErrorKind,
    /// The underlying cause, when this error wraps a lower-level failure.
    source: Option<Box<dyn std::error::Error + Send + Sync>>,
}

impl CoreError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            kind: CoreErrorKind::Other,
            source: None,
        }
    }

    pub(crate) fn with_kind(kind: CoreErrorKind, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            kind,
            source: None,
        }
    }

    pub(crate) fn with_source(
        message: impl Into<String>,
        source: impl std::error::Error + Send + Sync + 'static,
    ) -> Self {
        Self {
            message: message.into(),
            kind: CoreErrorKind::Other,
            source: Some(Box::new(source)),
        }
    }

    /// Machine-readable classification of this error (persistence
    /// integrity failures are the typed ones; everything else is
    /// [`CoreErrorKind::Other`]).
    pub fn kind(&self) -> CoreErrorKind {
        self.kind
    }

    /// The wrapped [`lvp_models::ModelError`], if this error originated in
    /// the model-serving layer. Drives the monitor's degradation decision:
    /// a serving failure degrades the batch, anything else stays fatal.
    pub fn model_error(&self) -> Option<&lvp_models::ModelError> {
        self.source
            .as_deref()
            .and_then(|s| s.downcast_ref::<lvp_models::ModelError>())
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "core error: {}", self.message)
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.source
            .as_deref()
            .map(|s| s as &(dyn std::error::Error + 'static))
    }
}

impl From<lvp_models::ModelError> for CoreError {
    fn from(e: lvp_models::ModelError) -> Self {
        CoreError::with_source(e.message.clone(), e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_accuracy_from_proba() {
        let proba = DenseMatrix::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8]]).unwrap();
        assert_eq!(Metric::Accuracy.score(&proba, &[0, 1]).unwrap(), 1.0);
        assert_eq!(Metric::Accuracy.score(&proba, &[1, 0]).unwrap(), 0.0);
    }

    #[test]
    fn metric_auc_from_proba() {
        let proba =
            DenseMatrix::from_rows(&[vec![0.9, 0.1], vec![0.1, 0.9], vec![0.6, 0.4]]).unwrap();
        // class-1 scores: 0.1, 0.9, 0.4; labels 0, 1, 0 → perfect ranking.
        assert_eq!(Metric::Auc.score(&proba, &[0, 1, 0]).unwrap(), 1.0);
    }

    #[test]
    fn metric_auc_rejects_non_binary_probability_matrices() {
        // A degenerate single-column matrix used to be scored silently
        // against column 0; it must now be an error.
        let one_col = DenseMatrix::from_rows(&[vec![1.0], vec![1.0]]).unwrap();
        let err = Metric::Auc.score(&one_col, &[0, 1]).unwrap_err();
        assert!(err.message.contains("2 probability columns"), "{err}");
        // Multiclass output is equally unscoreable with binary AUC.
        let three_col =
            DenseMatrix::from_rows(&[vec![0.2, 0.3, 0.5], vec![0.1, 0.8, 0.1]]).unwrap();
        assert!(Metric::Auc.score(&three_col, &[0, 1]).is_err());
        // Accuracy is class-count agnostic.
        assert!(Metric::Accuracy.score(&three_col, &[2, 1]).is_ok());
    }
}
