//! The performance validator: the binary-classification variant of the
//! performance prediction problem (§2, §4).
//!
//! Given a user-chosen acceptable relative quality loss `t` (e.g. 5%), the
//! validator predicts whether the score on a serving batch satisfies
//! `ℓ_serving ≥ (1 − t) · ℓ_test`. Unlike the plain predictor it retains
//! the black box model's outputs on the test set and augments the
//! percentile features with per-class two-sample Kolmogorov–Smirnov
//! statistics between serving-time and test-time outputs (§4 mentions
//! exactly this construction, reusing the hypothesis-test signal of
//! Lipton et al.).

use crate::engine::generate_batches_seeded;
use crate::features::{featurize_source, BatchSketch, FeatureSource, KsReference};
use crate::{CoreError, Metric};
use lvp_corruptions::ErrorGen;
use lvp_dataframe::DataFrame;
use lvp_linalg::{CsrMatrix, DenseMatrix};
use lvp_models::gbdt::{GbdtClassifier, GbdtConfig};
use lvp_models::{BlackBoxModel, Classifier};
use lvp_stats::{EcdfSketch, DEFAULT_SKETCH_BINS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Featurizes one batch of materialized model outputs: percentile
/// statistics plus, when `test_columns` is given, per-class KS statistic
/// and p-value against the retained test-time outputs (the exact path of
/// [`featurize_source`]).
///
/// Free function (rather than a method) so the fitting loop can featurize
/// before the validator exists, and so the per-class test columns are
/// materialized once instead of on every call.
fn featurize_outputs(
    proba: &DenseMatrix,
    test_columns: Option<&[Vec<f64>]>,
) -> Result<Vec<f64>, CoreError> {
    let reference = match test_columns {
        Some(cols) => KsReference::Exact(cols),
        None => KsReference::None,
    };
    featurize_source(&FeatureSource::Exact(proba), &reference)
}

/// Compresses the retained per-class test-time output columns into unit
/// range ECDF sketches — the sketched-path counterpart of `test_columns`.
///
/// A pure deterministic function of the columns, so it can be recomputed
/// when loading artifacts that predate the sketch field and yield the
/// exact same state a fresh fit would have produced.
pub(crate) fn sketch_test_columns(test_columns: &[Vec<f64>]) -> Vec<EcdfSketch> {
    test_columns
        .iter()
        .map(|col| EcdfSketch::from_values(col, 0.0, 1.0, DEFAULT_SKETCH_BINS))
        .collect()
}

/// Configuration for fitting a [`PerformanceValidator`].
#[derive(Debug, Clone)]
pub struct ValidatorConfig {
    /// Acceptable relative quality loss `t` (e.g. 0.05 for 5%).
    pub threshold: f64,
    /// Corrupted copies generated per error generator.
    pub runs_per_generator: usize,
    /// Additional uncorrupted copies.
    pub clean_copies: usize,
    /// The scoring function of the black box model.
    pub metric: Metric,
    /// Configuration of the gradient-boosted decision-tree classifier.
    pub gbdt: GbdtConfig,
    /// Include the KS-test features (disable for the ablation bench).
    pub use_ks_features: bool,
    /// Fan the generation loop out across threads. The output is
    /// bit-identical to the sequential loop (see [`crate::engine`]), so
    /// this only trades wall-clock time for CPU.
    pub parallel: bool,
}

impl Default for ValidatorConfig {
    fn default() -> Self {
        Self {
            threshold: 0.05,
            runs_per_generator: 100,
            clean_copies: 20,
            metric: Metric::Accuracy,
            gbdt: GbdtConfig {
                n_rounds: 40,
                max_depth: 3,
                ..GbdtConfig::default()
            },
            use_ks_features: true,
            parallel: true,
        }
    }
}

impl ValidatorConfig {
    /// A cheaper configuration for tests and smoke runs.
    pub fn fast(threshold: f64) -> Self {
        Self {
            threshold,
            runs_per_generator: 25,
            clean_copies: 10,
            gbdt: GbdtConfig {
                n_rounds: 15,
                max_depth: 3,
                ..GbdtConfig::default()
            },
            ..Self::default()
        }
    }
}

/// The validator's verdict on one serving batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationOutcome {
    /// `true` when the predictions can be trusted (score within threshold).
    pub within_threshold: bool,
    /// The classifier's confidence that the score is within the threshold.
    pub confidence: f64,
}

/// A learned performance validator for a fixed black box model and quality
/// threshold.
pub struct PerformanceValidator {
    model: Arc<dyn BlackBoxModel>,
    classifier: GbdtClassifier,
    /// Per-class test-time output columns, materialized once at fit time —
    /// the exact-path KS features compare every serving batch against
    /// these.
    test_columns: Vec<Vec<f64>>,
    /// Compressed ECDF sketches of the same test-time outputs — the
    /// sketched-path KS reference, so validating a streamed batch never
    /// touches the materialized columns.
    test_ecdf: Vec<EcdfSketch>,
    test_score: f64,
    threshold: f64,
    metric: Metric,
    use_ks_features: bool,
    /// Fingerprint of the held-out test frame's schema; serving frames are
    /// checked against it before featurization.
    schema_fingerprint: Option<u64>,
}

impl PerformanceValidator {
    /// Learns the validator from synthetically corrupted copies of the
    /// held-out test data, as in Algorithm 1 but with binary labels
    /// `ℓ_corrupt ≥ (1 − t) · ℓ_test`.
    pub fn fit(
        model: Arc<dyn BlackBoxModel>,
        test: &DataFrame,
        generators: &[Box<dyn ErrorGen>],
        config: &ValidatorConfig,
        rng: &mut StdRng,
    ) -> Result<Self, CoreError> {
        if test.n_rows() == 0 {
            return Err(CoreError::new("held-out test data is empty"));
        }
        if generators.is_empty() {
            return Err(CoreError::new("need at least one error generator"));
        }
        if !(0.0..1.0).contains(&config.threshold) {
            return Err(CoreError::new("threshold must lie in [0, 1)"));
        }
        // Retain the test-time outputs: the KS features compare serving
        // batches against them (the "major difference" §3 points out).
        let test_outputs = model.predict_proba(test);
        let test_score = config.metric.score(&test_outputs, test.labels())?;
        let test_columns: Vec<Vec<f64>> = (0..test_outputs.cols())
            .map(|c| test_outputs.column(c))
            .collect();
        let ks_columns = config.use_ks_features.then_some(test_columns.as_slice());

        // Algorithm 1's generation loop with binary labels, fanned out by
        // the deterministic batch engine.
        let generated: Vec<(Vec<f64>, u32)> = generate_batches_seeded(
            model.as_ref(),
            test,
            generators,
            config.runs_per_generator,
            config.clean_copies,
            config.metric,
            rng.gen(),
            config.parallel,
            |batch| {
                let f = featurize_outputs(&batch.proba, ks_columns)
                    .expect("fit-time outputs match the fitted model's class count");
                (
                    f,
                    u32::from(batch.score >= (1.0 - config.threshold) * test_score),
                )
            },
        )?;
        let (mut features, mut labels): (Vec<Vec<f64>>, Vec<u32>) = generated.into_iter().unzip();

        if labels.iter().all(|&l| l == 0) || labels.iter().all(|&l| l == 1) {
            // Degenerate training set: corruption always (or never) broke
            // the threshold. Inject the clean full-batch case to keep two
            // classes, mirroring p_err = 0.
            features.push(featurize_outputs(&test_outputs, ks_columns)?);
            labels.push(1);
            if labels.iter().all(|&l| l == 1) {
                // Still degenerate — synthesize a catastrophic case from
                // uniform-random outputs.
                let m = model.n_classes();
                let uniform =
                    DenseMatrix::from_vec(4, m, vec![1.0 / m as f64; 4 * m]).expect("sized");
                features.push(featurize_outputs(&uniform, ks_columns)?);
                labels.push(0);
            }
        }

        let x = CsrMatrix::from_dense(
            &DenseMatrix::from_rows(&features)
                .map_err(|e| CoreError::new(format!("feature matrix: {e}")))?,
        );
        let mut gbdt_rng = StdRng::seed_from_u64(rng.gen());
        let classifier = GbdtClassifier::fit(&x, &labels, 2, &config.gbdt, &mut gbdt_rng)?;
        let test_ecdf = sketch_test_columns(&test_columns);
        Ok(Self {
            model,
            classifier,
            test_columns,
            test_ecdf,
            test_score,
            threshold: config.threshold,
            metric: config.metric,
            use_ks_features: config.use_ks_features,
            schema_fingerprint: Some(test.schema().fingerprint()),
        })
    }

    /// Featurizes one batch of model outputs: percentile statistics plus
    /// (optionally) per-class KS statistic and p-value against the retained
    /// test-time outputs. Errors when the output matrix's class count
    /// disagrees with the retained test columns.
    pub fn featurize(&self, proba: &DenseMatrix) -> Result<Vec<f64>, CoreError> {
        featurize_outputs(
            proba,
            self.use_ks_features.then_some(self.test_columns.as_slice()),
        )
    }

    /// Featurizes streamed sketch state: percentile statistics queried
    /// from the quantile sketches plus (optionally) per-class KS features
    /// computed on compressed ECDFs against the retained test-output
    /// sketches. Same feature layout as [`Self::featurize`], each
    /// dimension within the sketches' proven error bound of the exact
    /// path.
    pub fn featurize_sketch(&self, sketch: &BatchSketch) -> Result<Vec<f64>, CoreError> {
        let reference = if self.use_ks_features {
            KsReference::Sketched(&self.test_ecdf)
        } else {
            KsReference::None
        };
        featurize_source(&FeatureSource::Sketched(sketch), &reference)
    }

    /// Decides from streamed sketch state directly — the fixed-memory
    /// counterpart of [`Self::validate_outputs`] for batches too large (or
    /// too distributed) to materialize.
    pub fn validate_sketch(&self, sketch: &BatchSketch) -> Result<ValidationOutcome, CoreError> {
        if sketch.n_classes() != self.model.n_classes() {
            return Err(CoreError::new(format!(
                "batch sketch tracks {} class columns but the validator was \
                 fitted for {} classes",
                sketch.n_classes(),
                self.model.n_classes()
            )));
        }
        let features = self.featurize_sketch(sketch)?;
        self.classify(features)
    }

    /// Decides whether the model's predictions on the serving batch can be
    /// trusted.
    pub fn validate(&self, serving: &DataFrame) -> Result<ValidationOutcome, CoreError> {
        if serving.n_rows() == 0 {
            return Err(CoreError::new("serving batch is empty"));
        }
        crate::predictor::check_schema_fingerprint(self.schema_fingerprint, serving)?;
        let proba = self.model.predict_proba(serving);
        self.validate_outputs(&proba)
    }

    /// Decides from a batch of model outputs directly.
    pub fn validate_outputs(&self, proba: &DenseMatrix) -> Result<ValidationOutcome, CoreError> {
        if proba.cols() != self.model.n_classes() {
            return Err(CoreError::new(format!(
                "output matrix has {} class columns but the validator was \
                 fitted for {} classes",
                proba.cols(),
                self.model.n_classes()
            )));
        }
        let features = self.featurize(proba)?;
        self.classify(features)
    }

    /// Runs the fitted GBDT over one feature row (shared tail of the exact
    /// and sketched validation paths).
    fn classify(&self, features: Vec<f64>) -> Result<ValidationOutcome, CoreError> {
        let x = CsrMatrix::from_dense(
            &DenseMatrix::from_rows(&[features]).expect("single feature row"),
        );
        let p = self.classifier.predict_proba(&x);
        let confidence = p.get(0, 1);
        Ok(ValidationOutcome {
            within_threshold: confidence >= 0.5,
            confidence,
        })
    }

    /// The model's reference score on the held-out test data.
    pub fn test_score(&self) -> f64 {
        self.test_score
    }

    /// The configured acceptable relative loss `t`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The scoring function used.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Whether the KS features against retained test outputs are in use.
    pub fn use_ks_features(&self) -> bool {
        self.use_ks_features
    }

    /// Fingerprint of the fit-time test schema, when known.
    pub fn schema_fingerprint(&self) -> Option<u64> {
        self.schema_fingerprint
    }

    /// The retained per-class test-time output columns (persistence
    /// support; these are part of the fitted state — see §4).
    pub(crate) fn test_columns(&self) -> &[Vec<f64>] {
        &self.test_columns
    }

    /// The compressed ECDF sketches of the test-time outputs.
    pub fn test_ecdf(&self) -> &[EcdfSketch] {
        &self.test_ecdf
    }

    /// Clones the fitted GBDT classifier (persistence support).
    pub(crate) fn classifier_clone(&self) -> GbdtClassifier {
        self.classifier.clone()
    }

    /// Reassembles a validator from its parts (persistence support).
    ///
    /// `test_ecdf` is `None` for artifacts written before the sketch era;
    /// the sketches are then recomputed from the retained columns — a pure
    /// function of them, so the rebuilt state is identical to what a fresh
    /// fit would have persisted.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        model: Arc<dyn BlackBoxModel>,
        classifier: GbdtClassifier,
        test_columns: Vec<Vec<f64>>,
        test_ecdf: Option<Vec<EcdfSketch>>,
        test_score: f64,
        threshold: f64,
        metric: Metric,
        use_ks_features: bool,
        schema_fingerprint: Option<u64>,
    ) -> Self {
        let test_ecdf = test_ecdf.unwrap_or_else(|| sketch_test_columns(&test_columns));
        Self {
            model,
            classifier,
            test_columns,
            test_ecdf,
            test_score,
            threshold,
            metric,
            use_ks_features,
            schema_fingerprint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lvp_corruptions::standard_tabular_suite;
    use lvp_dataframe::toy_frame;
    use lvp_models::train_logistic_regression;

    fn fitted_validator(threshold: f64) -> (PerformanceValidator, DataFrame) {
        let df = toy_frame(300);
        let mut rng = StdRng::seed_from_u64(11);
        let (train, rest) = df.split_frac(0.4, &mut rng);
        let (test, serving) = rest.split_frac(0.5, &mut rng);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&train, &mut rng).unwrap());
        let gens = standard_tabular_suite(test.schema());
        let validator = PerformanceValidator::fit(
            model,
            &test,
            &gens,
            &ValidatorConfig::fast(threshold),
            &mut rng,
        )
        .unwrap();
        (validator, serving)
    }

    #[test]
    fn clean_data_passes_validation() {
        let (validator, serving) = fitted_validator(0.10);
        let outcome = validator.validate(&serving).unwrap();
        assert!(
            outcome.within_threshold,
            "confidence {}",
            outcome.confidence
        );
    }

    #[test]
    fn catastrophic_corruption_fails_validation() {
        let (validator, serving) = fitted_validator(0.10);
        let mut corrupted = serving.clone();
        for row in 0..corrupted.n_rows() {
            corrupted.column_mut(1).set_null(row);
        }
        let outcome = validator.validate(&corrupted).unwrap();
        assert!(
            !outcome.within_threshold,
            "confidence {}",
            outcome.confidence
        );
    }

    #[test]
    fn threshold_accessors() {
        let (validator, _) = fitted_validator(0.05);
        assert_eq!(validator.threshold(), 0.05);
        assert!(validator.test_score() > 0.8);
    }

    #[test]
    fn ks_features_extend_dimensionality() {
        let (validator, serving) = fitted_validator(0.05);
        let proba = validator.model.predict_proba(&serving);
        let f = validator.featurize(&proba).unwrap();
        // 42 percentile dims + 2 KS dims per class.
        assert_eq!(f.len(), 42 + 4);
    }

    #[test]
    fn mismatched_class_count_is_rejected_not_truncated() {
        let (validator, _) = fitted_validator(0.05);
        // Three class columns against a validator fitted on two.
        let wide = DenseMatrix::from_vec(5, 3, vec![1.0 / 3.0; 15]).unwrap();
        assert!(validator.featurize(&wide).is_err());
        assert!(validator.validate_outputs(&wide).is_err());
        let narrow = DenseMatrix::from_vec(5, 1, vec![1.0; 5]).unwrap();
        assert!(validator.featurize(&narrow).is_err());
        assert!(validator.validate_outputs(&narrow).is_err());
    }

    #[test]
    fn rejects_invalid_threshold() {
        let df = toy_frame(60);
        let mut rng = StdRng::seed_from_u64(12);
        let model: Arc<dyn BlackBoxModel> =
            Arc::from(train_logistic_regression(&df, &mut rng).unwrap());
        let gens = standard_tabular_suite(df.schema());
        let bad = ValidatorConfig {
            threshold: 1.5,
            ..ValidatorConfig::fast(0.05)
        };
        assert!(PerformanceValidator::fit(model, &df, &gens, &bad, &mut rng).is_err());
    }

    #[test]
    fn confidence_is_probability() {
        let (validator, serving) = fitted_validator(0.05);
        let outcome = validator.validate(&serving).unwrap();
        assert!((0.0..=1.0).contains(&outcome.confidence));
    }

    #[test]
    fn sketched_validation_agrees_with_exact_on_clean_data() {
        let (validator, serving) = fitted_validator(0.10);
        let proba = validator.model.predict_proba(&serving);
        let exact = validator.validate_outputs(&proba).unwrap();
        let sketch = BatchSketch::from_outputs(&proba);
        let sketched = validator.validate_sketch(&sketch).unwrap();
        assert_eq!(exact.within_threshold, sketched.within_threshold);
    }

    #[test]
    fn sketched_features_share_layout_and_stay_near_exact() {
        let (validator, serving) = fitted_validator(0.05);
        let proba = validator.model.predict_proba(&serving);
        let exact = validator.featurize(&proba).unwrap();
        let sketch = BatchSketch::from_outputs(&proba);
        let sketched = validator.featurize_sketch(&sketch).unwrap();
        assert_eq!(exact.len(), sketched.len());
        // Percentile block: bounded by the quantile sketches' proven
        // value-error bound. KS block: p-values are smooth in D, so just
        // check the statistics stay close.
        let bound = sketch.value_error_bound() + 1e-12;
        for (a, b) in exact[..42].iter().zip(&sketched[..42]) {
            assert!((a - b).abs() <= bound, "exact {a} sketched {b}");
        }
        for pair in sketched[42..].chunks(2) {
            assert!((0.0..=1.0).contains(&pair[0]));
            assert!((0.0..=1.0).contains(&pair[1]));
        }
    }

    #[test]
    fn sketched_validation_rejects_mismatched_class_count() {
        let (validator, _) = fitted_validator(0.05);
        let sketch = BatchSketch::new(3);
        assert!(validator.validate_sketch(&sketch).is_err());
    }

    #[test]
    fn test_ecdf_is_a_pure_function_of_the_columns() {
        let (validator, _) = fitted_validator(0.05);
        let rebuilt = sketch_test_columns(validator.test_columns());
        assert_eq!(validator.test_ecdf(), rebuilt.as_slice());
    }
}
